"""De-clutter a parallel-coordinates view of clustered data.

Reproduces the Chapter 5 workflow: normalise a moderate-dimensional dataset,
choose a dimension order that minimises line crossings (MST 2-approximation
versus exact search), run the energy-reduction model between adjacent axes,
and report the de-cluttering statistics.  The resulting polyline geometry is
what a front end would draw; here it is summarised textually.

Run with:  python examples/parallel_coordinates_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import make_uci_like
from repro.parcoords import EnergyModel, ParallelCoordinatesModel


def main() -> None:
    dataset = make_uci_like("wine", seed=5, noise_fraction=0.0)
    labels = dataset.labels % 4  # the paper visualises wine with 4 clusters
    data = dataset.to_dense()
    print(f"Dataset: {dataset.characteristics()} with "
          f"{len(np.unique(labels))} clusters\n")

    model = ParallelCoordinatesModel(ordering_method="mst",
                                     energy_model=EnergyModel(1 / 3, 1 / 3, 1 / 3))

    comparison = model.compare_orderings(data[:, :9], labels)
    print("Dimension-ordering comparison (first 9 dimensions):")
    for method, stats in comparison.items():
        print(f"  {method:7s} crossings {stats['crossings']:10.0f}  "
              f"time {stats['seconds'] * 1000:7.2f} ms")

    layout = model.layout(data, labels)
    print(f"\nFull layout over {data.shape[1]} dimensions:")
    print(f"  dimension order            : {layout.dimension_order}")
    print(f"  crossings (natural order)  : {layout.crossings_before}")
    print(f"  crossings (chosen order)   : {layout.crossings_after_ordering}")
    print(f"  energy iterations (max)    : {layout.max_energy_iterations}")
    print(f"  ordering / energy time     : {layout.ordering_seconds:.3f}s / "
          f"{layout.energy_seconds:.3f}s")

    assistant = layout.assistant_positions()
    spread_by_cluster = {
        int(cluster): float(np.mean(np.std(assistant[labels == cluster], axis=0)))
        for cluster in np.unique(labels)}
    print(f"  within-cluster spread on assistant axes: {spread_by_cluster}")

    polyline = layout.polyline(0, curved=True, n_points=8)
    print(f"\nFirst item's curved polyline has {polyline.shape[0]} geometry points "
          f"spanning x ∈ [{polyline[0, 0]:.0f}, {polyline[-1, 0]:.0f}]")


if __name__ == "__main__":
    main()
