"""Quickstart: probe a dataset interactively with PLASMA-HD.

Generates a wine-like dataset, probes it at two similarity thresholds,
prints the cumulative all-pairs estimate across the whole threshold spectrum,
and shows the triangle-based visual cues — the core PLASMA-HD loop.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import PlasmaSession
from repro.datasets import load_dataset
from repro.similarity import exact_pair_count


def main() -> None:
    dataset = load_dataset("wine", seed=7).l2_normalized()
    print(f"Dataset: {dataset.characteristics()}")

    session = PlasmaSession(dataset, measure="cosine", n_hashes=192, seed=1)

    # --- Probe 1: a high threshold chosen blind ---------------------------
    first = session.probe(0.8)
    print(f"\nProbe at t=0.80: {first.pair_count} similar pairs "
          f"in {first.total_seconds:.2f}s "
          f"(sketching {first.sketch_fraction:.0%} of that)")

    grid = [round(t, 2) for t in np.arange(0.1, 1.0, 0.1)]
    curve = session.cumulative_graph(grid)
    print("\nCumulative APSS estimate after one probe:")
    for estimate in curve.curve():
        print(f"  t={estimate.threshold:.2f}  pairs≈{estimate.expected_pairs:9.1f} "
              f"(± {2 * estimate.std:.1f})")

    # --- The system suggests where to look next ---------------------------
    suggestion = session.suggest_threshold(grid)
    print(f"\nSuggested next threshold (knee of the curve): {suggestion:.2f}")

    second = session.probe(round(suggestion, 2))
    print(f"Probe at t={suggestion:.2f}: {second.pair_count} pairs, "
          f"reused {second.cached_hash_reuse} cached hash comparisons")

    # --- Visual cues from the knowledge cache only ------------------------
    histogram = session.triangle_histogram(0.9)
    plot = session.density_plot(0.9)
    print(f"\nTriangle cue at t=0.90: ≈{histogram.total_triangles} triangles, "
          f"max {histogram.max_per_vertex} per vertex")
    if plot.plateaus:
        start, stop, density = max(plot.plateaus, key=lambda p: p[2])
        print(f"Density plot: cohesive subgraph of ~{stop - start + 1} vertices "
              f"at density {density:.2f}")

    # --- Sanity check against the exact (quadratic) computation -----------
    exact = exact_pair_count(dataset, [0.9, 0.8, 0.5])
    print(f"\nExact pair counts for reference: {exact}")


if __name__ == "__main__":
    main()
