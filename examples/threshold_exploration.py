"""Interactive threshold exploration on a sparse text corpus.

Reproduces the Section 2.2.2 scenario on a Twitter-like corpus: compare the
two-probe interactive workflow (with knowledge caching) against the
brute-force sweep over every threshold, and report the time saved and the
accuracy of the cumulative estimate.

Run with:  python examples/threshold_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro.core import PlasmaSession
from repro.datasets import load_dataset
from repro.lsh.bayeslsh import BayesLSHConfig
from repro.similarity import exact_pair_count


def main() -> None:
    corpus = load_dataset("twitter", max_rows=250, seed=7)
    print(f"Corpus: {corpus.characteristics()}")

    grid = [round(t, 2) for t in np.arange(0.1, 1.0, 0.1)]
    ground_truth = exact_pair_count(corpus, grid)

    session = PlasmaSession(corpus, n_hashes=160, seed=3,
                            config=BayesLSHConfig(max_hashes=160))

    # Interactive workflow: two probes guided by the cumulative curve.
    first = session.probe(0.9, incremental_thresholds=[0.75, 0.95],
                          incremental_checkpoints=10)
    print(f"\nFirst probe (t=0.90) took {first.total_seconds:.2f}s")
    print("Incremental estimates while probing (fraction of data -> #pairs):")
    for fraction, estimates in first.incremental_estimates[:5]:
        rendered = {t: round(v) for t, v in estimates.items()}
        print(f"  {fraction:5.0%}  {rendered}")

    suggestion = session.suggest_threshold(grid)
    second = session.probe(round(suggestion, 2))
    interactive_seconds = first.total_seconds + second.total_seconds

    curve = session.cumulative_graph(grid).expected_counts()
    print(f"\nSecond probe at suggested t={suggestion:.2f} "
          f"({second.pair_count} pairs)")
    print("\nThreshold   estimate     exact")
    for threshold in grid:
        print(f"   {threshold:.2f}   {curve[threshold]:10.1f}  "
              f"{ground_truth[threshold]:8d}")

    # Brute-force baseline: probe every threshold independently.
    _, sweep_seconds = session.brute_force_sweep(grid)
    saving = 1.0 - interactive_seconds / sweep_seconds
    print(f"\nInteractive workflow: {interactive_seconds:.2f}s; "
          f"brute-force sweep: {sweep_seconds:.2f}s; saving {saving:.0%}")


if __name__ == "__main__":
    main()
