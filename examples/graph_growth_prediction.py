"""Predict expensive measures of dense graphs from sparse samples.

Reproduces the Chapter 3 workflow: build a densifying graph series from a
dataset, train the translation-scaling and regression predictors on the
sparse half (plus a small node sample), and compare the predicted triangle
counts of the dense half against the exact values, reporting the error and
the speedup.

Run with:  python examples/graph_growth_prediction.py
"""

from __future__ import annotations

from repro.datasets import make_clustered_vectors
from repro.growth import GraphGrowthEstimator


def main() -> None:
    dataset = make_clustered_vectors(250, 12, 6, separation=4.5, cluster_std=0.9,
                                     seed=21, name="image-segmentation-like")
    print(f"Dataset: {dataset.characteristics()}\n")

    for prediction in ("translation_scaling", "regression"):
        for sampling in ("random", "concentrated", "stratified"):
            estimator = GraphGrowthEstimator(
                measure="triangle_count", sampling_method=sampling,
                prediction_method=prediction, sample_size=80, seed=5)
            estimate = estimator.run(dataset)
            mean_error, std_error = estimate.error()
            print(f"{prediction:20s} {sampling:12s} "
                  f"log-error {mean_error:6.3f} ± {std_error:5.3f}   "
                  f"speedup {estimate.speedup():5.1f}x")

    # Show one prediction curve in detail.
    estimator = GraphGrowthEstimator(measure="triangle_count",
                                     prediction_method="regression",
                                     sample_size=80, seed=5)
    estimate = estimator.run(dataset)
    print("\nDense-half triangle counts (regression, random sampling):")
    print("  threshold   predicted        exact")
    for threshold, predicted, actual in zip(estimate.parameters,
                                            estimate.predicted_values,
                                            estimate.actual_values):
        print(f"    {threshold:6.3f}  {predicted:12.0f} {actual:12.0f}")


if __name__ == "__main__":
    main()
