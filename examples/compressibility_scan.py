"""Scan graph compressibility across similarity thresholds with LAM.

Reproduces the Section 4.6 use case: build similarity graphs of a dataset at
several thresholds, compress each with the Localized Approximate Miner, and
report the compression-ratio curve together with the "interesting"
(inflection) thresholds PLASMA-HD would suggest for further exploration.
Also compares LAM's runtime and compression against the Krimp-style and
CDB-style baselines on the graph at one threshold.

Run with:  python examples/compressibility_scan.py
"""

from __future__ import annotations

import time

from repro.datasets import TransactionDatabase, make_clustered_vectors
from repro.graphs import similarity_graph
from repro.lam import LAM, cdb_compress, compressibility_scan, krimp_compress


def main() -> None:
    dataset = make_clustered_vectors(150, 10, 5, separation=5.0, cluster_std=0.8,
                                     seed=11, name="wiki-like")
    thresholds = [0.3, 0.45, 0.6, 0.75, 0.9]

    print("Scanning compressibility across similarity thresholds ...")
    points, interesting = compressibility_scan(
        dataset, thresholds, lam=LAM(n_passes=3, max_partition_size=150))
    print("\nThreshold   edges   compression ratio   patterns")
    for point in points:
        print(f"   {point.threshold:.2f}   {point.n_edges:6d}   "
              f"{point.compression_ratio:17.2f}   {point.n_patterns:8d}")
    print(f"\nInflection (interesting) thresholds: "
          f"{[round(t, 2) for t in interesting] or 'none detected'}")

    # Compare compressors on the graph at one mid-range threshold.
    threshold = 0.6
    graph = similarity_graph(dataset, threshold)
    transactions = TransactionDatabase.from_graph_adjacency(
        graph.adjacency_dict(), n_nodes=graph.n_nodes, name="similarity-graph")
    print(f"\nCompressor comparison at t={threshold} "
          f"({transactions.n_transactions} adjacency transactions, "
          f"{transactions.size} items):")

    start = time.perf_counter()
    lam_result = LAM(n_passes=5, max_partition_size=100, seed=0).run(transactions)
    lam_seconds = time.perf_counter() - start
    print(f"  LAM5 : ratio {lam_result.compression_ratio:5.2f}  "
          f"time {lam_seconds:6.2f}s  patterns {lam_result.n_patterns}")

    krimp = krimp_compress(transactions, min_support=8, max_length=10)
    print(f"  Krimp: ratio {krimp.compression_ratio:5.2f}  "
          f"time {krimp.seconds:6.2f}s  patterns {krimp.n_patterns}")

    cdb = cdb_compress(transactions, min_support=8, max_length=10)
    print(f"  CDB  : ratio {cdb.compression_ratio:5.2f}  "
          f"time {cdb.seconds:6.2f}s  patterns {cdb.n_patterns}")

    decoded = lam_result.compressed.decode()
    lossless = [set(t) for t in decoded] == [set(t) for t in transactions]
    print(f"\nLAM decoding is lossless: {lossless}")


if __name__ == "__main__":
    main()
