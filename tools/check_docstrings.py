#!/usr/bin/env python
"""pydocstyle-lite: enforce missing-docstring (D1xx) rules on public seams.

A dependency-free subset of pydocstyle's D1xx family, run by CI (and by
``tests/test_docstrings.py``) over ``src/repro/similarity``,
``src/repro/store``, ``src/repro/lsh``, ``src/repro/core`` and
``src/repro/service``:

* **D100** — public module missing a docstring;
* **D101** — public class missing a docstring;
* **D102** — public method missing a docstring;
* **D103** — public function missing a docstring.

"Public" means the name (and every enclosing class) does not start with an
underscore; dunder methods are exempt (their contracts are the language's),
as are ``@overload`` stubs and nested (function-local) definitions.  The
goal is the documentation floor the docs site builds on: every symbol a
user can import has at least a one-line summary.

Usage::

    python tools/check_docstrings.py src/repro/similarity src/repro/store
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Default roots checked when no arguments are given (repo-relative).
DEFAULT_ROOTS = ("src/repro/similarity", "src/repro/store",
                 "src/repro/lsh", "src/repro/core", "src/repro/service")


def _is_overload(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        name = decorator
        if isinstance(name, ast.Attribute):
            name = name.attr
        elif isinstance(name, ast.Name):
            name = name.id
        else:
            continue
        if name == "overload":
            return True
    return False


def _public(name: str) -> bool:
    return not name.startswith("_")


def check_source(path: Path, source: str) -> list[tuple[int, str, str]]:
    """Return ``(line, code, message)`` findings for one module's source."""
    tree = ast.parse(source, filename=str(path))
    findings: list[tuple[int, str, str]] = []
    if not ast.get_docstring(tree):
        findings.append((1, "D100", "missing module docstring"))

    def visit(node: ast.AST, class_name: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if _public(child.name):
                    if not ast.get_docstring(child):
                        findings.append(
                            (child.lineno, "D101",
                             f"missing docstring in public class "
                             f"{child.name!r}"))
                    visit(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if (_public(child.name) and not _is_overload(child)
                        and not ast.get_docstring(child)):
                    if class_name is None:
                        findings.append(
                            (child.lineno, "D103",
                             f"missing docstring in public function "
                             f"{child.name!r}"))
                    else:
                        findings.append(
                            (child.lineno, "D102",
                             f"missing docstring in public method "
                             f"{class_name}.{child.name!r}"))
                # Function-local definitions are not public API: no recursion.

    visit(tree, None)
    return findings


def check_tree(roots: list[Path]) -> list[str]:
    """Check every ``.py`` file under *roots*; return formatted findings."""
    lines: list[str] = []
    for root in roots:
        if not root.exists():
            lines.append(f"{root}: path does not exist")
            continue
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            try:
                findings = check_source(path, path.read_text())
            except SyntaxError as exc:  # pragma: no cover - broken source
                lines.append(f"{path}:{exc.lineno}: unparsable: {exc.msg}")
                continue
            lines.extend(f"{path}:{line}: {code} {message}"
                         for line, code, message in findings)
    return lines


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: exit 1 when any public symbol lacks a docstring."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    roots = [Path(a) for a in arguments] or [Path(r) for r in DEFAULT_ROOTS]
    findings = check_tree(roots)
    for line in findings:
        print(line)
    if findings:
        print(f"\n{len(findings)} docstring finding(s); every public "
              f"module/class/function/method needs at least a one-line "
              f"summary.")
        return 1
    checked = ", ".join(str(r) for r in roots)
    print(f"docstring check ok: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
