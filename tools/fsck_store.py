#!/usr/bin/env python
"""Invariant checker for a SimilarityStore directory (the lineage fsck).

A thin CLI over :func:`repro.store.gc.fsck`, the on-disk leak oracle the
crash-test battery asserts with.  Audits the manifest/entry graph of a
store directory:

* ``CURRENT`` resolves to a manifest file that exists and parses;
* every entry referenced by any on-disk manifest exists and validates
  (magic, schema, checksum, recorded key);
* every delta floor in the current manifest resolves through its parent
  chain to a full floor;
* every factorised pair-set entry (``pairs-factorized`` floors and
  ``encoding: factorized`` lineage entries) passes the structural decode
  that :meth:`FactorizedPairSet.from_arrays` enforces — offset tables
  tile, members sort, value lengths match — so a corrupt compressed
  floor surfaces here as well as at read time (where it is evicted and
  recomputed, never served wrong).

Collectable debris — orphaned lineage entries, stray temp files — is
reported as warnings by default and promoted to errors with
``--strict-orphans`` (the contract immediately after a garbage-collection
pass, when nothing unreferenced may remain).

Usage::

    python tools/fsck_store.py /path/to/store [--strict-orphans] [--json]

Exit status: 0 when every invariant holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.store.gc import fsck  # noqa: E402


def main(argv=None) -> int:
    """Run the audit and print a human (or ``--json``) report."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("root", help="store directory to audit")
    parser.add_argument("--strict-orphans", action="store_true",
                        help="treat orphaned entries and stray temp files "
                             "as errors (the post-GC contract)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the report as JSON")
    args = parser.parse_args(argv)

    report = fsck(args.root, strict_orphans=args.strict_orphans)
    if args.as_json:
        print(json.dumps({"root": report.root, "ok": report.ok,
                          "errors": report.errors,
                          "warnings": report.warnings,
                          "stats": report.stats}, indent=2, default=str))
    else:
        print(f"fsck {report.root}: {'ok' if report.ok else 'BROKEN'}")
        for line in report.errors:
            print(f"  error: {line}")
        for line in report.warnings:
            print(f"  warning: {line}")
        for name, value in sorted(report.stats.items()):
            print(f"  {name}: {value}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
