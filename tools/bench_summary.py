#!/usr/bin/env python
"""Render an APSS benchmark run as a markdown trend table for CI summaries.

Takes the machine-readable payload ``bench_apss_backends.py --json`` writes
(or a raw ``benchmarks/results/*.json`` row list) and emits a GitHub-flavored
markdown table comparing the run against a checked-in baseline, so per-PR
perf regressions in the sharded/delta paths are visible in the job summary
instead of buried in an artifact.

Usage (what CI appends to ``$GITHUB_STEP_SUMMARY``)::

    python tools/bench_summary.py apss-backend-matrix.json \
        --baseline benchmarks/results

A ``--baseline`` directory resolves to ``apss_backend_matrix_smoke.json`` or
``apss_backend_matrix.json`` depending on the run's ``smoke`` flag; a file
path is used as-is; no baseline (or a missing file) still prints the run
table, just without delta columns.  Exit code is 0 unless ``--fail-above``
is given and some backend regressed by more than that percentage.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Baseline deltas smaller than this (percent) are shown without a marker;
#: larger slowdowns get a warning glyph so they stand out in the summary.
#: Deltas compare the machine-normalised ``speedup_vs_loop`` column (not raw
#: seconds), so a slower CI runner does not read as a regression.
HIGHLIGHT_PCT = 25.0


def load_rows(path: Path) -> tuple[list[dict], bool]:
    """Load benchmark rows from a payload dict or a raw row list."""
    payload = json.loads(path.read_text())
    if isinstance(payload, dict):
        return list(payload.get("rows", [])), bool(payload.get("smoke", False))
    return list(payload), False


def resolve_baseline(baseline: Path | None, smoke: bool) -> Path | None:
    """Resolve a --baseline argument (file or results directory) to a file."""
    if baseline is None:
        return None
    if baseline.is_dir():
        name = "apss_backend_matrix_smoke.json" if smoke \
            else "apss_backend_matrix.json"
        candidate = baseline / name
        return candidate if candidate.exists() else None
    return baseline if baseline.exists() else None


def _fmt_seconds(value) -> str:
    return f"{value:.4f}" if isinstance(value, (int, float)) else "—"


def _fmt_speedup(value) -> str:
    return f"{value:.2f}x" if isinstance(value, (int, float)) else "—"


def render_table(rows: list[dict], baseline_rows: list[dict] | None
                 ) -> tuple[str, list[tuple[str, str, float]]]:
    """Render the markdown table; return it plus (workload, backend, Δ%)
    tuples for every backend that slowed past :data:`HIGHLIGHT_PCT`."""
    by_key = {}
    for row in baseline_rows or []:
        by_key[(row.get("workload"), row.get("backend"))] = row
    header = ["workload", "backend", "pairs", "seconds", "vs loop"]
    if by_key:
        header += ["baseline vs loop", "Δ speedup"]
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    regressions: list[tuple[str, str, float]] = []
    for row in rows:
        cells = [str(row.get("workload", "—")),
                 f"`{row.get('backend', '—')}`",
                 str(row.get("pairs", "—")),
                 _fmt_seconds(row.get("seconds")),
                 _fmt_speedup(row.get("speedup_vs_loop"))]
        if by_key:
            base = by_key.get((row.get("workload"), row.get("backend")))
            base_speedup = (base or {}).get("speedup_vs_loop")
            speedup = row.get("speedup_vs_loop")
            if isinstance(base_speedup, (int, float)) and base_speedup > 0 \
                    and isinstance(speedup, (int, float)):
                # Negative = this run is slower relative to exact-loop than
                # the baseline was: the machine-speed-free regression signal.
                delta_pct = 100.0 * (speedup - base_speedup) / base_speedup
                marker = " ⚠️" if delta_pct < -HIGHLIGHT_PCT else ""
                cells += [_fmt_speedup(base_speedup),
                          f"{delta_pct:+.1f}%{marker}"]
                if delta_pct < -HIGHLIGHT_PCT:
                    regressions.append((str(row["workload"]),
                                        str(row["backend"]), -delta_pct))
            else:
                cells += ["—", "new"]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines), regressions


#: Store-MVCC maintenance metrics surfaced in the trend table, as
#: ``(json key, display label, unit, lower_is_better)``.
STORE_MVCC_METRICS = (
    ("resolve_seconds_chained", "resolve latency (chained)", "s", True),
    ("resolve_seconds_consolidated", "resolve latency (consolidated)", "s",
     True),
    ("lineage_bytes_before", "lineage bytes before compaction", "B", True),
    ("lineage_bytes_after_gc", "lineage bytes after GC", "B", True),
    ("bytes_reclaimed", "bytes reclaimed by compaction+GC", "B", False),
    ("manifests_removed", "manifests removed", "", False),
    ("entries_removed", "entries removed", "", False),
)


def render_store_mvcc(run: dict, baseline: dict | None) -> str:
    """Markdown table for the ``bench_store_mvcc.py`` maintenance metrics.

    Resolve-latency and compaction rows from one maintenance run, compared
    against the checked-in ``store_mvcc_maintenance.json`` baseline when
    available.  Latency/byte metrics mark growth, reclamation metrics mark
    shrinkage — either direction only as trend, never a hard failure
    (maintenance timings are even noisier than kernel timings).
    """
    header = ["metric", "value"]
    if baseline:
        header += ["baseline", "Δ"]
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for key, label, unit, lower_is_better in STORE_MVCC_METRICS:
        value = run.get(key)
        shown = (f"{value:.4f}{unit}" if isinstance(value, float)
                 else f"{value}{unit}" if value is not None else "—")
        cells = [label, shown]
        if baseline:
            base = baseline.get(key)
            if isinstance(base, (int, float)) and base and \
                    isinstance(value, (int, float)):
                delta_pct = 100.0 * (value - base) / base
                worse = delta_pct > 0 if lower_is_better else delta_pct < 0
                marker = " ⚠️" if worse and abs(delta_pct) > HIGHLIGHT_PCT \
                    else ""
                base_shown = (f"{base:.4f}{unit}" if isinstance(base, float)
                              else f"{base}{unit}")
                cells += [base_shown, f"{delta_pct:+.1f}%{marker}"]
            else:
                cells += ["—", "new"]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


#: Two-tier serving metrics surfaced per workload, as
#: ``(json key, display label, lower_is_better)``.  All are seconds except
#: the dimensionless speedup/recall columns handled inline.
TIERED_TIME_KEYS = (
    ("first_answer_seconds", "first answer", True),
    ("refine_seconds", "refined", True),
    ("exact_seconds", "exact sweep", True),
)


def render_tiered(rows: list[dict], baseline_rows: list[dict] | None
                  ) -> str:
    """Markdown table for the ``bench_tiered_serving.py`` serving metrics.

    One row per workload: time-to-first-answer from the sketch tier,
    time-to-refined, the deferred exact-sweep cost, the first-vs-exact
    speedup, and measured recall against its advertised bound.  The
    speedup column is compared against the checked-in baseline (it is the
    machine-speed-free signal, like ``speedup_vs_loop`` above); recall
    below its bound is marked regardless of baseline.
    """
    by_workload = {row.get("workload"): row for row in baseline_rows or []}
    header = ["workload", "first answer", "refined", "exact", "speedup",
              "recall", "bound"]
    if by_workload:
        header += ["baseline speedup", "Δ speedup"]
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        speedup = row.get("speedup_first_vs_exact")
        recall = row.get("recall")
        bound = row.get("recall_bound")
        recall_marker = " ⚠️" if isinstance(recall, (int, float)) \
            and isinstance(bound, (int, float)) and recall < bound else ""
        cells = [str(row.get("workload", "—"))]
        cells += [_fmt_seconds(row.get(key)) for key, _, _ in
                  TIERED_TIME_KEYS]
        cells += [_fmt_speedup(speedup),
                  (f"{recall:.4f}{recall_marker}"
                   if isinstance(recall, (int, float)) else "—"),
                  f"{bound:.3f}" if isinstance(bound, (int, float)) else "—"]
        if by_workload:
            base = by_workload.get(row.get("workload")) or {}
            base_speedup = base.get("speedup_first_vs_exact")
            if isinstance(base_speedup, (int, float)) and base_speedup > 0 \
                    and isinstance(speedup, (int, float)):
                delta_pct = 100.0 * (speedup - base_speedup) / base_speedup
                marker = " ⚠️" if delta_pct < -HIGHLIGHT_PCT else ""
                cells += [_fmt_speedup(base_speedup),
                          f"{delta_pct:+.1f}%{marker}"]
            else:
                cells += ["—", "new"]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


#: Service-trace metrics surfaced per workload, as
#: ``(json key, display label, format)``.
SERVICE_TIME_KEYS = (
    ("p50_ms", "p50", "ms"),
    ("p99_ms", "p99", "ms"),
    ("throughput_rps", "rps", ""),
)


def render_service(rows: list[dict], baseline_rows: list[dict] | None
                   ) -> str:
    """Markdown table for the ``bench_service.py`` multi-tenant trace.

    One row per workload: p50/p99 serving latency and throughput (trend
    only — timings are runner-noise), plus the machine-speed-free signals:
    ``search_calls`` (kernel passes the whole trace cost; growth against
    the checked-in baseline is the regression marker) and ``coalesced``
    (concurrent duplicates that shared a pass).
    """
    by_workload = {row.get("workload"): row for row in baseline_rows or []}
    header = ["workload", "requests", "p50", "p99", "rps", "searches",
              "coalesced"]
    if by_workload:
        header += ["baseline p99", "baseline searches", "Δ searches"]
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        searches = row.get("search_calls")
        cells = [str(row.get("workload", "—")),
                 str(row.get("requests", "—"))]
        for key, _, unit in SERVICE_TIME_KEYS:
            value = row.get(key)
            cells.append(f"{value:.1f}{unit}"
                         if isinstance(value, (int, float)) else "—")
        cells += [str(searches if searches is not None else "—"),
                  str(row.get("coalesced", "—"))]
        if by_workload:
            base = by_workload.get(row.get("workload")) or {}
            base_p99 = base.get("p99_ms")
            base_searches = base.get("search_calls")
            if isinstance(base_searches, (int, float)) and base_searches \
                    and isinstance(searches, (int, float)):
                delta_pct = (100.0 * (searches - base_searches)
                             / base_searches)
                marker = " ⚠️" if delta_pct > HIGHLIGHT_PCT else ""
                cells += [(f"{base_p99:.1f}ms"
                           if isinstance(base_p99, (int, float)) else "—"),
                          str(base_searches),
                          f"{delta_pct:+.1f}%{marker}"]
            else:
                cells += ["—", "—", "new"]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


#: Factorised pair-set metrics surfaced per workload, as
#: ``(json key, display label, unit)``.
PAIRSETS_TIME_KEYS = (
    ("factorize_ms", "factorize", "ms"),
    ("decompress_ms", "decompress", "ms"),
    ("topk_ms", "top-k", "ms"),
    ("topk_raw_ms", "top-k raw", "ms"),
)


def render_pairsets(rows: list[dict], baseline_rows: list[dict] | None
                    ) -> str:
    """Markdown table for the ``bench_pairsets.py`` compression metrics.

    One row per workload: the compression ratio (the machine-speed-free
    signal — growth against the checked-in baseline is the regression
    marker), the chosen encoding, and encode/decompress/top-k timings
    (trend only).  A workload whose decompression stopped being
    bit-identical is marked regardless of baseline.
    """
    by_workload = {row.get("workload"): row for row in baseline_rows or []}
    header = ["workload", "pairs", "encoding", "ratio", "factorize",
              "decompress", "top-k", "top-k raw"]
    if by_workload:
        header += ["baseline ratio", "Δ ratio"]
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        ratio = row.get("ratio")
        broken = not (row.get("identical", True)
                      and row.get("topk_identical", True))
        marker = " ⚠️ not bit-identical" if broken else ""
        cells = [str(row.get("workload", "—")),
                 str(row.get("n_pairs", "—")),
                 f"`{row.get('encoding', '—')}`",
                 (f"{ratio:.2f}{marker}"
                  if isinstance(ratio, (int, float)) else "—")]
        for key, _, unit in PAIRSETS_TIME_KEYS:
            value = row.get(key)
            cells.append(f"{value:.1f}{unit}"
                         if isinstance(value, (int, float)) else "—")
        if by_workload:
            base = by_workload.get(row.get("workload")) or {}
            base_ratio = base.get("ratio")
            if isinstance(base_ratio, (int, float)) and base_ratio > 0 \
                    and isinstance(ratio, (int, float)):
                delta_pct = 100.0 * (ratio - base_ratio) / base_ratio
                worse = " ⚠️" if delta_pct > HIGHLIGHT_PCT else ""
                cells += [f"{base_ratio:.2f}", f"{delta_pct:+.1f}%{worse}"]
            else:
                cells += ["—", "new"]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def render_stealing(rows: list[dict], baseline_rows: list[dict] | None
                    ) -> str:
    """Markdown table for the ``bench_apss_backends.py --straggler`` run.

    One row per scheduling mode (static-bound vs stealing) with one worker
    slowed 10x.  The machine-speed-free signal is ``speedup_vs_static``
    (static seconds / stealing seconds on the *same* machine in the *same*
    run): a drop against the checked-in baseline means stealing stopped
    rescuing the straggler, and is marked past :data:`HIGHLIGHT_PCT`.
    """
    by_mode = {row.get("mode"): row for row in baseline_rows or []}
    header = ["mode", "shards", "claims", "seconds", "vs static"]
    if by_mode:
        header += ["baseline vs static", "Δ speedup"]
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        claims = row.get("claims") or {}
        spread = "/".join(str(claims[slot]) for slot in sorted(claims)) \
            if claims else "—"
        speedup = row.get("speedup_vs_static")
        cells = [f"`{row.get('mode', '—')}`",
                 str(row.get("n_shards", "—")), spread,
                 _fmt_seconds(row.get("seconds")), _fmt_speedup(speedup)]
        if by_mode:
            base_speedup = (by_mode.get(row.get("mode")) or {}) \
                .get("speedup_vs_static")
            if isinstance(base_speedup, (int, float)) and base_speedup > 0 \
                    and isinstance(speedup, (int, float)):
                delta_pct = 100.0 * (speedup - base_speedup) / base_speedup
                marker = " ⚠️" if delta_pct < -HIGHLIGHT_PCT else ""
                cells += [_fmt_speedup(base_speedup),
                          f"{delta_pct:+.1f}%{marker}"]
            else:
                cells += ["—", "—" if speedup is None else "new"]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; prints markdown suitable for $GITHUB_STEP_SUMMARY."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("run", type=Path, nargs="?", default=None,
                        help="JSON written by bench_apss_backends.py --json "
                             "(omit to render only the --store-mvcc/"
                             "--tiered/--service sections)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline JSON file, or a results directory "
                             "(e.g. benchmarks/results)")
    parser.add_argument("--store-mvcc", type=Path, default=None,
                        metavar="PATH",
                        help="also append the bench_store_mvcc.py "
                             "resolve-latency/compaction trend table from "
                             "this maintenance-run JSON")
    parser.add_argument("--tiered", type=Path, default=None, metavar="PATH",
                        help="also append the bench_tiered_serving.py "
                             "two-tier serving trend table from this "
                             "run JSON")
    parser.add_argument("--service", type=Path, default=None, metavar="PATH",
                        help="also append the bench_service.py multi-tenant "
                             "trace trend table (p50/p99/coalescing) from "
                             "this run JSON")
    parser.add_argument("--pairsets", type=Path, default=None,
                        metavar="PATH",
                        help="also append the bench_pairsets.py factorised "
                             "pair-set trend table (compression ratio, "
                             "decompression/top-k timings) from this run "
                             "JSON")
    parser.add_argument("--stealing", type=Path, default=None,
                        metavar="PATH",
                        help="also append the bench_apss_backends.py "
                             "--straggler trend table (work stealing vs "
                             "static binding with a slowed worker) from "
                             "this run JSON")
    parser.add_argument("--title", default="APSS backend matrix — trend vs "
                                           "checked-in baseline")
    parser.add_argument("--fail-above", type=float, default=None,
                        metavar="PCT",
                        help="exit 1 when any backend slowed down by more "
                             "than PCT%% vs the baseline")
    args = parser.parse_args(argv)

    regressions = []
    if args.run is not None:
        rows, smoke = load_rows(args.run)
        baseline_path = resolve_baseline(args.baseline, smoke)
        baseline_rows = load_rows(baseline_path)[0] if baseline_path else None

        print(f"### {args.title}\n")
        scope = "smoke" if smoke else "full"
        against = (f"`{baseline_path}`" if baseline_path
                   else "*(no baseline found)*")
        print(f"_{scope} matrix, compared against {against}. Timings are "
              f"noisy across runners; treat deltas as trend, not truth._\n")
        table, regressions = render_table(rows, baseline_rows)
        print(table)
        if regressions:
            print("\n**Possible regressions (speedup-vs-loop down >"
                  + f"{HIGHLIGHT_PCT:.0f}%):**")
            for workload, backend, drop_pct in regressions:
                print(f"- {workload} / `{backend}`: -{drop_pct:.1f}% vs "
                      "baseline")
    if args.store_mvcc is not None and args.store_mvcc.exists():
        mvcc_run = json.loads(args.store_mvcc.read_text())
        mvcc_baseline = None
        if args.baseline is not None:
            base_path = (args.baseline / "store_mvcc_maintenance.json"
                         if args.baseline.is_dir() else args.baseline)
            if base_path.exists():
                mvcc_baseline = json.loads(base_path.read_text())
        print("\n### MVCC store maintenance — resolve latency & "
              "compaction\n")
        print(render_store_mvcc(mvcc_run, mvcc_baseline))
    if args.tiered is not None and args.tiered.exists():
        tiered_rows, tiered_smoke = load_rows(args.tiered)
        tiered_baseline = None
        if args.baseline is not None and args.baseline.is_dir():
            name = ("tiered_serving_smoke.json" if tiered_smoke
                    else "tiered_serving.json")
            base_path = args.baseline / name
            if base_path.exists():
                tiered_baseline = load_rows(base_path)[0]
        elif args.baseline is not None and args.baseline.exists():
            tiered_baseline = load_rows(args.baseline)[0]
        print("\n### Two-tier serving — time-to-first-answer vs "
              "exact sweep\n")
        print(render_tiered(tiered_rows, tiered_baseline))
    if args.service is not None and args.service.exists():
        service_rows, service_smoke = load_rows(args.service)
        service_baseline = None
        if args.baseline is not None and args.baseline.is_dir():
            name = ("service_trace_smoke.json" if service_smoke
                    else "service_trace.json")
            base_path = args.baseline / name
            if base_path.exists():
                service_baseline = load_rows(base_path)[0]
        elif args.baseline is not None and args.baseline.exists():
            service_baseline = load_rows(args.baseline)[0]
        print("\n### Session server — multi-tenant trace p50/p99 & "
              "coalescing\n")
        print(render_service(service_rows, service_baseline))
    if args.pairsets is not None and args.pairsets.exists():
        pairsets_rows, pairsets_smoke = load_rows(args.pairsets)
        pairsets_baseline = None
        if args.baseline is not None and args.baseline.is_dir():
            name = ("pairsets_smoke.json" if pairsets_smoke
                    else "pairsets.json")
            base_path = args.baseline / name
            if base_path.exists():
                pairsets_baseline = load_rows(base_path)[0]
        elif args.baseline is not None and args.baseline.exists():
            pairsets_baseline = load_rows(args.baseline)[0]
        print("\n### Factorised pair-set store — compression & "
              "decompression\n")
        print(render_pairsets(pairsets_rows, pairsets_baseline))
    if args.stealing is not None and args.stealing.exists():
        stealing_rows, _ = load_rows(args.stealing)
        stealing_baseline = None
        if args.baseline is not None and args.baseline.is_dir():
            base_path = args.baseline / "straggler_smoke.json"
            if base_path.exists():
                stealing_baseline = load_rows(base_path)[0]
        elif args.baseline is not None and args.baseline.exists():
            stealing_baseline = load_rows(args.baseline)[0]
        print("\n### Work stealing — straggler rescue vs static "
              "shard binding\n")
        print(render_stealing(stealing_rows, stealing_baseline))
    if args.fail_above is not None:
        over = [r for r in regressions if r[2] > args.fail_above]
        if over:
            print(f"\nfailing: regression(s) above {args.fail_above}%",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
