#!/usr/bin/env python
"""Recall-regression gate for the approximate (BayesLSH) serving tier.

Sweeps seeded scenarios with the ``bayeslsh`` backend — including the
banded candidate strategy the sketch tier switches to at scale — against
an exact-kernel floor, and fails (exit 1) whenever measured recall drops
below the ``1 − ε`` bound the backend advertises in
``details["recall_bound"]``.  That bound is exactly what
``TieredApssEngine`` serves interactive probes under, so a regression
here means the two-tier contract is broken, not just a benchmark noise
blip.

Usage (what the CI recall lane runs)::

    PYTHONPATH=src python tools/check_recall.py [--markdown PATH]

``--markdown`` appends the per-scenario table to *PATH* (pass
``$GITHUB_STEP_SUMMARY`` in CI); the table always goes to stdout too.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.datasets import VectorDataset, make_clustered_vectors
from repro.similarity import ApssEngine

#: Sketch configuration mirroring the two-tier serving defaults at scale.
BANDED_OPTIONS = {"n_hashes": 256, "seed": 0, "candidate_strategy": "banded",
                  "band_size": 4}
ALL_OPTIONS = {"n_hashes": 256, "seed": 0, "candidate_strategy": "all"}


def near_duplicate_dataset(seed: int, n_base: int, vocab: int = 2000,
                           doc_length: int = 40) -> VectorDataset:
    """``2 * n_base`` binary doc rows: each base doc plus a near duplicate."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n_base):
        base = rng.choice(vocab, size=doc_length, replace=False)
        duplicate = base.copy()
        swap = rng.choice(doc_length, size=4, replace=False)
        duplicate[swap] = rng.choice(vocab, size=4, replace=False)
        rows.append({int(t): 1.0 for t in base})
        rows.append({int(t): 1.0 for t in duplicate})
    return VectorDataset.from_rows(rows, n_features=vocab,
                                   name=f"neardup-{2 * n_base}")


def clustered_dataset(seed: int, n_rows: int) -> VectorDataset:
    """Clustered unit vectors for the cosine scenarios."""
    return make_clustered_vectors(n_rows, 16, 5, separation=5.0,
                                  cluster_std=0.7, seed=seed).l2_normalized()


#: (name, dataset builder, measure, threshold, backend options).  The
#: banded scenarios run past ``BANDED_DEFAULT_MIN_ROWS`` so they exercise
#: the candidate generator the auto strategy actually picks at scale.
SCENARIOS = (
    ("neardup-1200/jaccard/banded",
     lambda: near_duplicate_dataset(7, 600), "jaccard", 0.5, BANDED_OPTIONS),
    ("neardup-1200/jaccard/all",
     lambda: near_duplicate_dataset(8, 600), "jaccard", 0.5, ALL_OPTIONS),
    ("clustered-300/cosine/all",
     lambda: clustered_dataset(9, 300), "cosine", 0.8, ALL_OPTIONS),
)


def run_scenario(name, build, measure, threshold, options) -> dict:
    """Measure one scenario's recall against an exact floor."""
    dataset = build()
    exact = ApssEngine().search(dataset, threshold, measure)
    approx = ApssEngine().search(dataset, threshold, measure,
                                 backend="bayeslsh", **options)
    reference = exact.pair_set()
    found = approx.pair_set()
    recall = len(found & reference) / max(1, len(reference))
    precision = len(found & reference) / max(1, len(found))
    return {
        "scenario": name,
        "n_rows": dataset.n_rows,
        "threshold": threshold,
        "exact_pairs": len(reference),
        "approx_pairs": len(found),
        "recall": recall,
        "precision": precision,
        "recall_bound": float(approx.details["recall_bound"]),
        "ok": recall >= float(approx.details["recall_bound"]),
    }


def render_markdown(rows: list[dict]) -> str:
    """The per-scenario recall table for the CI job summary."""
    lines = [
        "### BayesLSH recall gate — measured vs advertised 1 − ε",
        "",
        "| scenario | rows | threshold | exact pairs | recall | bound "
        "| precision | status |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for row in rows:
        status = "✅" if row["ok"] else "❌ below bound"
        lines.append(
            f"| {row['scenario']} | {row['n_rows']} | {row['threshold']} "
            f"| {row['exact_pairs']} | {row['recall']:.4f} "
            f"| {row['recall_bound']:.3f} | {row['precision']:.4f} "
            f"| {status} |")
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point; exit 1 when any scenario misses its bound."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--markdown", metavar="PATH", default=None,
                        help="append the markdown table to PATH "
                             "(e.g. $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(argv)

    rows = [run_scenario(*scenario) for scenario in SCENARIOS]
    table = render_markdown(rows)
    print(table)
    if args.markdown:
        with Path(args.markdown).open("a") as fh:
            fh.write(table + "\n")
    failures = [row for row in rows if not row["ok"]]
    if failures:
        for row in failures:
            print(f"FAIL {row['scenario']}: recall {row['recall']:.4f} < "
                  f"bound {row['recall_bound']:.3f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
