"""Node-sampling methods for the Graph Growth study (Section 3.3).

Three ways to pick ``p`` records from the original dataset:

* **random** — uniform without replacement;
* **concentrated** — one random seed record plus its ``p - 1`` most similar
  records (a snowball-like, locally dense sample);
* **stratified** — K-means the data into 10 strata and draw from each stratum
  proportionally to its size.
"""

from __future__ import annotations

import numpy as np
from scipy.cluster.vq import kmeans2

from repro.datasets.vectors import VectorDataset
from repro.similarity.measures import get_measure
from repro.utils.random_state import ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["random_sample", "concentrated_sample", "stratified_sample",
           "sample_dataset", "SAMPLING_METHODS"]


def _check_sample_size(dataset: VectorDataset, size: int) -> int:
    check_positive_int(size, "size")
    if size > dataset.n_rows:
        raise ValueError(f"sample size {size} exceeds dataset rows {dataset.n_rows}")
    return size


def random_sample(dataset: VectorDataset, size: int, seed=None) -> list[int]:
    """Uniform random sample of *size* row ids, without replacement."""
    _check_sample_size(dataset, size)
    rng = ensure_rng(seed)
    chosen = rng.choice(dataset.n_rows, size=size, replace=False)
    return sorted(int(i) for i in chosen)


def concentrated_sample(dataset: VectorDataset, size: int, seed=None,
                        measure: str = "cosine") -> list[int]:
    """A random seed record and its ``size - 1`` nearest neighbours."""
    _check_sample_size(dataset, size)
    rng = ensure_rng(seed)
    seed_row = int(rng.integers(dataset.n_rows))
    func = get_measure(measure)
    anchor = dataset.row(seed_row)
    similarities = np.array([
        func(anchor, dataset.row(i)) if i != seed_row else np.inf
        for i in range(dataset.n_rows)
    ])
    # The seed itself (given infinite similarity) plus the top size-1 others.
    order = np.argsort(-similarities)
    return sorted(int(i) for i in order[:size])


def stratified_sample(dataset: VectorDataset, size: int, seed=None,
                      n_strata: int = 10) -> list[int]:
    """K-means strata, sampled proportionally to stratum size."""
    _check_sample_size(dataset, size)
    check_positive_int(n_strata, "n_strata")
    rng = ensure_rng(seed)
    n_strata = min(n_strata, dataset.n_rows)

    dense = dataset.to_dense()
    _, assignments = kmeans2(dense, n_strata, minit="++",
                             seed=int(rng.integers(2**31 - 1)))

    chosen: list[int] = []
    strata = [np.where(assignments == s)[0] for s in range(n_strata)]
    strata = [s for s in strata if len(s)]
    # Proportional allocation, largest-remainder rounding.
    weights = np.array([len(s) for s in strata], dtype=float)
    quotas = weights / weights.sum() * size
    counts = np.floor(quotas).astype(int)
    remainder = size - counts.sum()
    if remainder > 0:
        order = np.argsort(-(quotas - counts))
        for index in order[:remainder]:
            counts[index] += 1
    for stratum, count in zip(strata, counts):
        count = min(count, len(stratum))
        if count > 0:
            picks = rng.choice(stratum, size=count, replace=False)
            chosen.extend(int(i) for i in picks)
    # Rounding plus small strata can leave a shortfall; top up at random.
    missing = size - len(chosen)
    if missing > 0:
        pool = np.setdiff1d(np.arange(dataset.n_rows), np.array(chosen))
        extra = rng.choice(pool, size=missing, replace=False)
        chosen.extend(int(i) for i in extra)
    return sorted(chosen)


SAMPLING_METHODS = {
    "random": random_sample,
    "concentrated": concentrated_sample,
    "stratified": stratified_sample,
}


def sample_dataset(dataset: VectorDataset, size: int, method: str = "random",
                   seed=None) -> VectorDataset:
    """Return the sampled sub-dataset produced by the named method."""
    try:
        sampler = SAMPLING_METHODS[method]
    except KeyError:
        raise KeyError(f"unknown sampling method {method!r}; "
                       f"known: {sorted(SAMPLING_METHODS)}") from None
    row_ids = sampler(dataset, size, seed=seed)
    return dataset.subset(row_ids, name=f"{dataset.name}-{method}-sample")
