"""The end-to-end Graph Growth estimation pipeline (Algorithm 1).

Given an input dataset:

1. take a node sample of ``p`` records using one of the three sampling
   methods;
2. build densifying graph series for the sample (all densities) and for the
   full data (sparse half only — the dense half is what we want to avoid
   computing);
3. compute the measure on both;
4. train a prediction model on the aligned sparse halves;
5. predict the measure of the full graph's dense half from the sample's dense
   half.

``GraphGrowthEstimator.run`` optionally also computes the dense-half ground
truth so the benchmark harness can report the Table 3.2 error statistics and
the speedup of prediction over direct computation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.vectors import VectorDataset
from repro.growth.densify import DensifyingSeries, build_densifying_series, edge_count_schedule
from repro.growth.evaluation import mean_relative_error
from repro.growth.predictors import (
    PiecewiseRegressionPredictor,
    TranslationScalingPredictor,
    analytic_complete_value,
)
from repro.growth.sampling import sample_dataset
from repro.utils.validation import check_positive_int

__all__ = ["GrowthEstimate", "GraphGrowthEstimator"]


@dataclass
class GrowthEstimate:
    """Result of one growth-prediction run."""

    measure: str
    sampling_method: str
    prediction_method: str
    parameters: list[float]
    sample_values: list[float]
    train_values: list[float]
    predicted_values: list[float]
    actual_values: list[float] | None = None
    train_seconds: float = 0.0
    dense_truth_seconds: float | None = None
    metadata: dict = field(default_factory=dict)

    def error(self) -> tuple[float, float] | None:
        """Mean/std relative error of log(measure), when ground truth exists."""
        if self.actual_values is None:
            return None
        return mean_relative_error(self.predicted_values, self.actual_values)

    def speedup(self) -> float | None:
        """Speedup of predicting the dense half versus computing it exactly."""
        if self.dense_truth_seconds is None or self.train_seconds == 0:
            return None
        return self.dense_truth_seconds / self.train_seconds


class GraphGrowthEstimator:
    """Estimates measures of dense graphs from sparse/sampled observations.

    Parameters
    ----------
    measure:
        Registered graph-measure name (triangle_count is the paper's focus).
    sampling_method:
        ``"random"``, ``"concentrated"`` or ``"stratified"``.
    prediction_method:
        ``"translation_scaling"`` or ``"regression"``.
    sample_size:
        Number of records in the node sample (the paper uses p = 1000).
    n_steps:
        Length of the densifying series (defaults to the natural doubling
        schedule length).
    """

    def __init__(self, measure: str = "triangle_count", *,
                 sampling_method: str = "random",
                 prediction_method: str = "regression",
                 sample_size: int = 100, n_steps: int | None = None,
                 similarity_measure: str = "cosine", seed: int = 0) -> None:
        if prediction_method not in ("translation_scaling", "regression"):
            raise ValueError("prediction_method must be 'translation_scaling' "
                             "or 'regression'")
        check_positive_int(sample_size, "sample_size")
        self.measure = measure
        self.sampling_method = sampling_method
        self.prediction_method = prediction_method
        self.sample_size = sample_size
        self.n_steps = n_steps
        self.similarity_measure = similarity_measure
        self.seed = seed

    # ------------------------------------------------------------------ #
    def run(self, dataset: VectorDataset, *,
            compute_ground_truth: bool = True) -> GrowthEstimate:
        """Run Algorithm 1 on *dataset* and return the growth estimate."""
        sample_size = min(self.sample_size, dataset.n_rows)
        sample = sample_dataset(dataset, sample_size,
                                method=self.sampling_method, seed=self.seed)

        n_steps = self.n_steps
        schedule_full = edge_count_schedule(dataset.n_rows, n_steps)
        # Use the same number of steps for the sample so curves align 1:1.
        schedule_sample = edge_count_schedule(sample.n_rows, len(schedule_full))
        if len(schedule_sample) < len(schedule_full):
            schedule_full = schedule_full[:len(schedule_sample)]

        train_start = time.perf_counter()
        sample_series = build_densifying_series(
            sample, schedule_sample, measure=self.similarity_measure)
        full_series = build_densifying_series(
            dataset, schedule_full, measure=self.similarity_measure)

        sparse_idx, dense_idx = full_series.split_sparse_dense()
        sample_values = np.array(sample_series.measures(self.measure))
        # Only the sparse half of the full series is measured during training;
        # the dense half is exactly what prediction avoids computing.
        full_sparse_values = np.array(
            [self._measure_single(full_series, i) for i in sparse_idx])

        parameters = list(full_series.parameters)
        # The density parameter used for learning is log2(edge count): the
        # problem statement predicts gamma from edge count, and a log scale
        # keeps the doubling schedule evenly spaced so the regression
        # extrapolates sensibly beyond the sparse training half.
        sample_params = np.log2(np.maximum(np.asarray(schedule_sample, dtype=float), 1.0))
        full_params = np.log2(np.maximum(np.asarray(schedule_full, dtype=float), 1.0))

        predicted = self._predict(
            sample_params=sample_params, sample_values=sample_values,
            full_params=full_params, full_sparse_values=full_sparse_values,
            sparse_idx=sparse_idx, dense_idx=dense_idx,
            n_nodes=dataset.n_rows)
        train_seconds = time.perf_counter() - train_start

        actual = None
        dense_truth_seconds = None
        if compute_ground_truth:
            truth_start = time.perf_counter()
            actual = [self._measure_single(full_series, i) for i in dense_idx]
            dense_truth_seconds = time.perf_counter() - truth_start

        return GrowthEstimate(
            measure=self.measure, sampling_method=self.sampling_method,
            prediction_method=self.prediction_method,
            parameters=[parameters[i] for i in dense_idx],
            sample_values=sample_values.tolist(),
            train_values=full_sparse_values.tolist(),
            predicted_values=[float(v) for v in predicted],
            actual_values=actual, train_seconds=train_seconds,
            dense_truth_seconds=dense_truth_seconds,
            metadata={
                "sample_size": sample.n_rows,
                "n_steps": len(schedule_full),
                "schedule_full": schedule_full,
                "schedule_sample": schedule_sample,
            })

    # ------------------------------------------------------------------ #
    def _measure_single(self, series: DensifyingSeries, index: int) -> float:
        from repro.graphs.measures import compute_measure

        return compute_measure(series.graphs[index], self.measure)

    def _predict(self, *, sample_params: np.ndarray, sample_values: np.ndarray,
                 full_params: np.ndarray, full_sparse_values: np.ndarray,
                 sparse_idx: list[int], dense_idx: list[int],
                 n_nodes: int) -> np.ndarray:
        if self.prediction_method == "translation_scaling":
            complete_value = analytic_complete_value(self.measure, n_nodes)
            first_value = full_sparse_values[0] if len(full_sparse_values) else 1.0
            predictor = TranslationScalingPredictor()
            predictor.fit(sample_params, sample_values,
                          real_first_y=first_value, real_last_y=complete_value,
                          real_x=full_params)
            dense_predictions = predictor.predict(
                sample_params[dense_idx], sample_values[dense_idx])
            return np.asarray(dense_predictions)

        predictor = PiecewiseRegressionPredictor()
        predictor.fit(sample_params[sparse_idx], sample_values[sparse_idx],
                      full_params[sparse_idx], full_sparse_values)
        return np.asarray(predictor.predict(
            sample_params[dense_idx], sample_values[dense_idx],
            full_params[dense_idx]))
