"""Densifying graph series construction (Section 3.5's experimental setup).

Chapter 3 controls density through edge count rather than threshold: the
series of graphs built from a dataset has edge counts ``2^0 N, 2^1 N, ...``
(doubling each step) because real-world graphs are sparse and most measures
are combinatoric, so a superlinear schedule is more representative than a
linear one.  ``DensifyingSeries`` carries the graphs together with the
threshold/parameter value of each step so measure curves can be plotted
against a density axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.vectors import VectorDataset
from repro.graphs.generators import generate_with_edge_count
from repro.graphs.graph import Graph
from repro.graphs.measures import compute_measure
from repro.graphs.similarity_graph import densifying_series
from repro.utils.validation import check_positive_int

__all__ = ["edge_count_schedule", "DensifyingSeries", "build_densifying_series"]


def edge_count_schedule(n_nodes: int, n_steps: int | None = None,
                        base_multiplier: int = 1) -> list[int]:
    """The doubling edge-count schedule |E_i| = 2^i * N of Section 3.5.

    The schedule stops at (or is capped by) the complete-graph edge count.
    """
    check_positive_int(n_nodes, "n_nodes")
    # A multiplier below one would keep every count under max_edges forever
    # (an unbounded loop when n_steps is None), so reject it outright.
    if base_multiplier < 1:
        raise ValueError("base_multiplier must be >= 1")
    max_edges = n_nodes * (n_nodes - 1) // 2
    counts: list[int] = []
    i = 0
    while True:
        count = (2 ** i) * n_nodes * base_multiplier
        if count >= max_edges:
            counts.append(max_edges)
            break
        counts.append(count)
        if n_steps is not None and len(counts) >= n_steps:
            break
        i += 1
    if n_steps is not None:
        counts = counts[:n_steps]
    return counts


@dataclass
class DensifyingSeries:
    """A series of graphs of increasing density over a fixed node set.

    Attributes
    ----------
    graphs:
        The graphs, ordered sparse to dense.
    edge_counts:
        Requested edge count of each step.
    parameters:
        The density parameter of each step — the similarity threshold for
        data-driven series, or the edge count itself for model-generated
        series (both are monotone in density).
    source:
        ``"data"`` or the generation-model name.
    """

    graphs: list[Graph]
    edge_counts: list[int]
    parameters: list[float]
    source: str = "data"
    measure_cache: dict[str, list[float]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.graphs)

    def measures(self, measure: str) -> list[float]:
        """gamma(G_i) for every graph in the series (memoised)."""
        if measure not in self.measure_cache:
            self.measure_cache[measure] = [
                compute_measure(graph, measure) for graph in self.graphs]
        return self.measure_cache[measure]

    def actual_edge_counts(self) -> list[int]:
        return [graph.n_edges for graph in self.graphs]

    def split_sparse_dense(self) -> tuple[list[int], list[int]]:
        """Indices of the sparser half and the denser half of the series."""
        half = len(self.graphs) // 2
        indices = list(range(len(self.graphs)))
        return indices[:half], indices[half:]


def build_densifying_series(source, edge_counts=None, *, n_steps: int | None = None,
                            measure: str = "cosine", model: str | None = None,
                            seed=None) -> DensifyingSeries:
    """Build a densifying series from a dataset or a generation model.

    Parameters
    ----------
    source:
        A :class:`VectorDataset` (data-driven series via decreasing similarity
        thresholds) or an ``int`` node count (model-generated series; *model*
        must then name a generator).
    edge_counts:
        Explicit edge-count schedule; defaults to ``edge_count_schedule``.
    model:
        Generation model name when *source* is a node count.
    """
    if isinstance(source, VectorDataset):
        n_nodes = source.n_rows
        if edge_counts is None:
            edge_counts = edge_count_schedule(n_nodes, n_steps)
        # Streams thresholds and pair sets from the blocked kernel — one
        # cached quadratic pass, never the dense n x n similarity matrix.
        pairs = densifying_series(source, edge_counts, measure=measure)
        thresholds = [threshold for threshold, _ in pairs]
        graphs = [graph for _, graph in pairs]
        return DensifyingSeries(graphs=graphs, edge_counts=list(edge_counts),
                                parameters=thresholds, source="data")

    n_nodes = int(source)
    if model is None:
        raise ValueError("model is required when source is a node count")
    if edge_counts is None:
        edge_counts = edge_count_schedule(n_nodes, n_steps)
    graphs = [generate_with_edge_count(model, n_nodes, count, seed=seed)
              for count in edge_counts]
    return DensifyingSeries(graphs=graphs, edge_counts=list(edge_counts),
                            parameters=[float(c) for c in edge_counts],
                            source=model)
