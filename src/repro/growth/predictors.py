"""Prediction models for measures of dense graphs (Section 3.4).

Both predictors view the problem in a two-dimensional space with a density
parameter on the X axis and the measure gamma on the Y axis.  A *synthetic*
curve comes from the p-node sample graph series; a *real* curve from the full
graph series (known on the sparse half, to be predicted on the dense half).

* **Translation–scaling** linearly maps the sample curve onto the real curve
  using only the endpoints; the dense-end anchor gamma(G_complete) is obtained
  analytically (e.g. C(n, 3) triangles for the complete graph).
* **Piecewise regression** discretises both curves into ``q`` linear pieces
  and fits ordinary least squares with predictors (synth_x, synth_y, real_x)
  for the response real_y, trained on the sparse half.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.measures import compute_measure

__all__ = ["analytic_complete_value", "TranslationScalingPredictor",
           "PiecewiseRegressionPredictor"]


def analytic_complete_value(measure: str, n_nodes: int) -> float:
    """gamma(K_n) in closed form for the measures where that is possible.

    Falls back to explicitly building the complete graph for other measures
    (acceptable because it is done once, and only for moderate ``n``).
    """
    closed_forms = {
        "edge_count": lambda n: n * (n - 1) / 2,
        "triangle_count": lambda n: math.comb(n, 3),
        "mean_degree": lambda n: float(n - 1),
        "mean_degree_centrality": lambda n: 1.0,
        "average_clustering": lambda n: 1.0 if n >= 3 else 0.0,
        "global_clustering": lambda n: 1.0 if n >= 3 else 0.0,
        "clique_number": lambda n: float(n),
        "number_of_cliques": lambda n: 1.0,
        "diameter": lambda n: 1.0 if n > 1 else 0.0,
        "number_connected_components": lambda n: 1.0,
        "largest_connected_component": lambda n: float(n),
        "mean_core_number": lambda n: float(n - 1),
        "top_eigenvalue": lambda n: float(n - 1),
        "mean_betweenness": lambda n: 0.0,
        "degree_variance": lambda n: 0.0,
        "mean_average_neighbor_degree": lambda n: float(n - 1),
    }
    if measure in closed_forms:
        return float(closed_forms[measure](n_nodes))
    complete = Graph(n_nodes, edges=[(i, j) for i in range(n_nodes)
                                     for j in range(i + 1, n_nodes)])
    return compute_measure(complete, measure)


class TranslationScalingPredictor:
    """Linearly translate and scale the sample curve onto the real curve.

    Parameters
    ----------
    log_space:
        Fit and predict the measure in ``log10`` space, which is how the
        triangle-count experiments are evaluated (errors at high densities
        would otherwise dominate).
    """

    def __init__(self, log_space: bool = True) -> None:
        self.log_space = log_space
        self._fitted = False

    def fit(self, synth_x, synth_y, real_first_y: float, real_last_y: float,
            real_x=None) -> "TranslationScalingPredictor":
        """Fit from the sample curve and the two known real-curve endpoints.

        Parameters
        ----------
        synth_x, synth_y:
            Density parameter and measure values of the sample series.
        real_first_y, real_last_y:
            gamma of the sparsest real graph (cheap to compute exactly) and of
            the complete real graph (known analytically).
        real_x:
            Density parameters of the real series (defaults to ``synth_x``).
        """
        synth_x = np.asarray(synth_x, dtype=float)
        synth_y = self._transform(np.asarray(synth_y, dtype=float))
        if real_x is None:
            real_x = synth_x
        real_x = np.asarray(real_x, dtype=float)
        if len(synth_x) < 2:
            raise ValueError("need at least two sample points")

        self._synth_min_x, self._synth_max_x = float(synth_x.min()), float(synth_x.max())
        self._synth_min_y, self._synth_max_y = float(synth_y.min()), float(synth_y.max())
        self._real_min_x, self._real_max_x = float(real_x.min()), float(real_x.max())
        self._real_min_y = float(self._transform(np.array([real_first_y]))[0])
        self._real_max_y = float(self._transform(np.array([real_last_y]))[0])
        self._fitted = True
        return self

    def predict(self, synth_x, synth_y) -> np.ndarray:
        """Predicted real-curve measure values for sample points."""
        if not self._fitted:
            raise RuntimeError("predictor must be fitted before predicting")
        synth_y = self._transform(np.asarray(synth_y, dtype=float))
        span_y = self._synth_max_y - self._synth_min_y
        if span_y == 0:
            scaled = np.full_like(synth_y, self._real_min_y)
        else:
            scaled = (self._real_min_y
                      + (synth_y - self._synth_min_y)
                      * (self._real_max_y - self._real_min_y) / span_y)
        return self._inverse(scaled)

    def _transform(self, values: np.ndarray) -> np.ndarray:
        if not self.log_space:
            return values
        return np.log10(np.maximum(values, 1.0))

    def _inverse(self, values: np.ndarray) -> np.ndarray:
        if not self.log_space:
            return values
        return 10.0 ** values


class PiecewiseRegressionPredictor:
    """Least-squares regression over piecewise-linearised curves.

    The model is ``real_y = b0 + b1*synth_x + b2*synth_y + b3*real_x`` fitted
    on the training (sparse) portion of the curves after resampling both onto
    ``q`` evenly spaced density positions.  Features are standardised and a
    small ridge penalty is applied so that the short, highly collinear
    training curves that arise at laptop scale do not produce wild
    extrapolations on the dense half.
    """

    def __init__(self, n_pieces: int = 100, log_space: bool = True,
                 ridge: float = 1e-2) -> None:
        if n_pieces < 2:
            raise ValueError("n_pieces must be at least 2")
        if ridge < 0:
            raise ValueError("ridge must be non-negative")
        self.n_pieces = n_pieces
        self.log_space = log_space
        self.ridge = ridge
        self.coefficients: np.ndarray | None = None
        self._feature_mean: np.ndarray | None = None
        self._feature_scale: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    def fit(self, synth_x, synth_y, real_x, real_y) -> "PiecewiseRegressionPredictor":
        """Fit the regression on aligned (sample, real) training curves."""
        synth_x = np.asarray(synth_x, dtype=float)
        synth_y = self._transform(np.asarray(synth_y, dtype=float))
        real_x = np.asarray(real_x, dtype=float)
        real_y = self._transform(np.asarray(real_y, dtype=float))
        if not (len(synth_x) == len(synth_y) == len(real_x) == len(real_y)):
            raise ValueError("training curves must have equal length")
        if len(synth_x) < 2:
            raise ValueError("need at least two training points")

        grid = np.linspace(0.0, 1.0, min(self.n_pieces, max(2, len(synth_x) * 4)))
        features = np.column_stack([
            _resample(synth_x, grid),
            _resample(synth_y, grid),
            _resample(real_x, grid),
        ])
        target = _resample(real_y, grid)

        self._feature_mean = features.mean(axis=0)
        scale = features.std(axis=0)
        scale[scale == 0] = 1.0
        self._feature_scale = scale
        standardized = (features - self._feature_mean) / self._feature_scale

        design = np.column_stack([np.ones(len(grid)), standardized])
        penalty = self.ridge * np.eye(design.shape[1])
        penalty[0, 0] = 0.0  # never penalise the intercept
        gram = design.T @ design + penalty
        self.coefficients = np.linalg.solve(gram, design.T @ target)
        return self

    def predict(self, synth_x, synth_y, real_x) -> np.ndarray:
        """Predict real-curve measure values at the given positions."""
        if self.coefficients is None:
            raise RuntimeError("predictor must be fitted before predicting")
        features = np.column_stack([
            np.asarray(synth_x, dtype=float),
            self._transform(np.asarray(synth_y, dtype=float)),
            np.asarray(real_x, dtype=float),
        ])
        standardized = (features - self._feature_mean) / self._feature_scale
        design = np.column_stack([np.ones(len(features)), standardized])
        return self._inverse(design @ self.coefficients)

    def _transform(self, values: np.ndarray) -> np.ndarray:
        if not self.log_space:
            return values
        return np.log10(np.maximum(values, 1.0))

    def _inverse(self, values: np.ndarray) -> np.ndarray:
        if not self.log_space:
            return values
        return 10.0 ** values


def _resample(values: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """Resample a curve (indexed by its position order) onto a unit grid."""
    positions = np.linspace(0.0, 1.0, len(values))
    return np.interp(grid, positions, values)
