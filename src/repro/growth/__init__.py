"""Graph Growth: predicting measures of densifying graphs (Chapter 3)."""

from repro.growth.sampling import (
    random_sample,
    concentrated_sample,
    stratified_sample,
    sample_dataset,
    SAMPLING_METHODS,
)
from repro.growth.densify import edge_count_schedule, DensifyingSeries, build_densifying_series
from repro.growth.predictors import (
    TranslationScalingPredictor,
    PiecewiseRegressionPredictor,
    analytic_complete_value,
)
from repro.growth.evaluation import mean_relative_error, log_measure_errors
from repro.growth.pipeline import GraphGrowthEstimator, GrowthEstimate

__all__ = [
    "random_sample",
    "concentrated_sample",
    "stratified_sample",
    "sample_dataset",
    "SAMPLING_METHODS",
    "edge_count_schedule",
    "DensifyingSeries",
    "build_densifying_series",
    "TranslationScalingPredictor",
    "PiecewiseRegressionPredictor",
    "analytic_complete_value",
    "mean_relative_error",
    "log_measure_errors",
    "GraphGrowthEstimator",
    "GrowthEstimate",
]
