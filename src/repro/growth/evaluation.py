"""Error metrics for growth-prediction experiments (Table 3.2).

The dissertation evaluates predictions with the mean relative error of
``log(measure)`` — measuring error in the same (log) space the curves are
plotted in, so that high-density errors do not drown out low-density ones.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mean_relative_error", "log_measure_errors"]


def log_measure_errors(predicted, actual, floor: float = 1.0) -> np.ndarray:
    """Per-point relative error of log10(measure).

    Values below *floor* are clipped before taking logs (a measure of 0 or 1
    has log 0, which would blow up a relative error).
    """
    predicted = np.maximum(np.asarray(predicted, dtype=float), floor)
    actual = np.maximum(np.asarray(actual, dtype=float), floor)
    if predicted.shape != actual.shape:
        raise ValueError("predicted and actual must have the same shape")
    log_predicted = np.log10(predicted)
    log_actual = np.log10(actual)
    denominator = np.where(log_actual == 0.0, 1.0, np.abs(log_actual))
    return np.abs(log_predicted - log_actual) / denominator


def mean_relative_error(predicted, actual, floor: float = 1.0
                        ) -> tuple[float, float]:
    """Mean and standard deviation of the log-space relative error."""
    errors = log_measure_errors(predicted, actual, floor=floor)
    if errors.size == 0:
        return 0.0, 0.0
    return float(errors.mean()), float(errors.std())
