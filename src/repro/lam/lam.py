"""The Localized Approximate Miner driver (Algorithm 2) and PLAM modelling.

``LAM.run`` iterates the two phases — min-hash localization and per-partition
mine/consume — for a configurable number of passes over the working database.
Later passes see the already-compressed transactions (items plus code
pointers), so new patterns can be built on top of earlier codes, which is how
multiple passes keep improving the compression ratio (Figure 4.12, right).

Parallelism.  The paper's PLAM distributes partitions across cores and
machines; partitions are mined independently, so the work decomposes cleanly.
Rather than spawning processes (pointless under the interpreter lock and
noisy to benchmark), :func:`parallel_speedup_estimate` models the multi-worker
makespan with longest-processing-time-first scheduling over the measured
per-partition mining times, which is exactly the quantity the scalability
figure reports (and the same static balancing the paper describes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.datasets.transactions import TransactionDatabase
from repro.lam.codetable import CodeTable, CompressedDatabase
from repro.lam.localize import localize_phase
from repro.lam.mining import ConsumedPattern, mine_consume_phase
from repro.utils.timers import PhaseTimer
from repro.utils.validation import check_positive_int

__all__ = ["PassStats", "LamResult", "LAM", "parallel_speedup_estimate"]


@dataclass
class PassStats:
    """Statistics for one LAM pass."""

    pass_number: int
    n_partitions: int
    n_patterns: int
    compression_ratio: float
    partition_seconds: list[float] = field(default_factory=list)


@dataclass
class LamResult:
    """Outcome of a LAM run."""

    compressed: CompressedDatabase
    patterns: list[ConsumedPattern]
    passes: list[PassStats]
    timers: PhaseTimer

    @property
    def compression_ratio(self) -> float:
        return self.compressed.compression_ratio()

    @property
    def n_patterns(self) -> int:
        return len(self.patterns)

    @property
    def code_table(self) -> CodeTable:
        return self.compressed.code_table

    def pattern_length_histogram(self) -> dict[int, int]:
        """Count of consumed patterns per fully-expanded length (Figure 4.11/4.13)."""
        histogram: dict[int, int] = {}
        for length in self.code_table.pattern_lengths():
            histogram[length] = histogram.get(length, 0) + 1
        return dict(sorted(histogram.items()))

    def cumulative_compression_by_length(self) -> list[tuple[int, float]]:
        """Compression ratio achieved using only patterns up to each length.

        Reproduces Figure 4.13 (pattern length versus cumulative compression):
        longer patterns are progressively admitted and the ratio recomputed by
        charging un-admitted patterns back at their expanded length.
        """
        table = self.code_table
        expanded = table.expanded_patterns()
        lengths = sorted({len(p) for p in expanded})
        results = []
        # Symbol savings contributed by each pattern: (covered - 1 pointers
        # replaced by expansion size) approximated from consumption records.
        savings_by_length: dict[int, float] = {}
        for pattern, record in zip(expanded, self.patterns):
            saved = (len(record.items) - 1) * max(record.n_covered - 1, 0)
            key = len(pattern)
            savings_by_length[key] = savings_by_length.get(key, 0.0) + saved
        compressed_size = self.compressed.total_size()
        original = self.compressed.original_size
        total_savings = max(original - compressed_size, 0)
        scale = (total_savings / sum(savings_by_length.values())
                 if savings_by_length else 0.0)
        cumulative = 0.0
        for length in lengths:
            cumulative += savings_by_length.get(length, 0.0) * scale
            ratio = original / max(original - cumulative, 1.0)
            results.append((length, float(ratio)))
        return results


class LAM:
    """Localized Approximate Miner.

    Parameters
    ----------
    n_passes:
        Number of localize+mine iterations ("LAM5" in the paper is five).
    utility:
        Pattern utility function, ``"area"`` or ``"rc"``.
    n_hashes:
        Min-hash signature length used by the localization phase.
    max_partition_size:
        Partition (record chunk) size threshold.
    min_item_count:
        Minimum within-partition item frequency for trie insertion.
    seed:
        Seed for the localization min-hashes (varied per pass so repeated
        passes shuffle rows into different partitions).
    """

    def __init__(self, n_passes: int = 5, *, utility: str = "area",
                 n_hashes: int = 16, max_partition_size: int = 1000,
                 min_item_count: int = 2, seed: int = 0) -> None:
        check_positive_int(n_passes, "n_passes")
        check_positive_int(n_hashes, "n_hashes")
        self.n_passes = n_passes
        self.utility = utility
        self.n_hashes = n_hashes
        self.max_partition_size = max_partition_size
        self.min_item_count = min_item_count
        self.seed = seed

    # ------------------------------------------------------------------ #
    def run(self, database: TransactionDatabase) -> LamResult:
        """Compress *database* and return the mined patterns and statistics."""
        working_rows: list[set[int]] = [set(row) for row in database]
        code_table = CodeTable(n_labels=database.n_labels)
        original_size = database.size
        timers = PhaseTimer()
        all_patterns: list[ConsumedPattern] = []
        passes: list[PassStats] = []

        for pass_number in range(1, self.n_passes + 1):
            with timers.phase("localize"):
                partitions = localize_phase(
                    working_rows, n_hashes=self.n_hashes,
                    max_partition_size=self.max_partition_size,
                    seed=self.seed + pass_number)

            pass_patterns: list[ConsumedPattern] = []
            partition_seconds: list[float] = []
            with timers.phase("mine"):
                for partition in partitions:
                    start = time.perf_counter()
                    consumed = mine_consume_phase(
                        working_rows, partition, code_table,
                        utility=self.utility,
                        min_item_count=self.min_item_count)
                    partition_seconds.append(time.perf_counter() - start)
                    pass_patterns.extend(consumed)

            all_patterns.extend(pass_patterns)
            compressed = CompressedDatabase(rows=working_rows,
                                            code_table=code_table,
                                            original_size=original_size,
                                            name=database.name)
            passes.append(PassStats(pass_number=pass_number,
                                    n_partitions=len(partitions),
                                    n_patterns=len(pass_patterns),
                                    compression_ratio=compressed.compression_ratio(),
                                    partition_seconds=partition_seconds))

        compressed = CompressedDatabase(rows=working_rows, code_table=code_table,
                                        original_size=original_size,
                                        name=database.name)
        return LamResult(compressed=compressed, patterns=all_patterns,
                         passes=passes, timers=timers)


def parallel_speedup_estimate(partition_seconds, n_workers: int,
                              per_task_overhead: float = 0.0) -> float:
    """Speedup of distributing partition mining over *n_workers* (PLAM model).

    Uses longest-processing-time-first static scheduling: tasks are assigned,
    largest first, to the least-loaded worker; speedup is serial time divided
    by the resulting makespan.  ``per_task_overhead`` models scheduling/locking
    cost per partition.
    """
    check_positive_int(n_workers, "n_workers")
    times = sorted((float(t) for t in partition_seconds), reverse=True)
    if not times:
        return 1.0
    serial = sum(times)
    loads = [0.0] * n_workers
    for task in times:
        index = loads.index(min(loads))
        loads[index] += task + per_task_overhead
    makespan = max(loads)
    if makespan == 0:
        return float(n_workers)
    return serial / makespan
