"""Graph compressibility across similarity thresholds (Section 4.6).

For each similarity threshold, the thresholded similarity graph is viewed as a
transactional matrix (one adjacency-list transaction per node) and compressed
with LAM; the resulting compression ratio is a parameter-free clusterability
measure.  Scanning it across thresholds reveals the "phase shifts" and
"inflection points" PLASMA-HD surfaces to the user (Figure 4.14), which is
why this module also reports the interesting thresholds it finds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exploration import find_inflection_points
from repro.datasets.transactions import TransactionDatabase
from repro.datasets.vectors import VectorDataset
from repro.graphs.graph import Graph
from repro.graphs.similarity_graph import graph_from_pairs, similarity_graph
from repro.lam.lam import LAM
from repro.similarity.cache import CachedApssEngine

__all__ = ["CompressibilityPoint", "compressibility_scan"]


@dataclass(frozen=True)
class CompressibilityPoint:
    """Compression ratio of the similarity graph at one threshold."""

    threshold: float
    compression_ratio: float
    n_edges: int
    n_patterns: int


def _graph_to_transactions(graph: Graph) -> TransactionDatabase:
    return TransactionDatabase.from_graph_adjacency(graph.adjacency_dict(),
                                                    n_nodes=graph.n_nodes,
                                                    name="similarity-graph")


def compressibility_scan(source, thresholds, *, measure: str = "cosine",
                         lam: LAM | None = None,
                         similarities: np.ndarray | None = None
                         ) -> tuple[list[CompressibilityPoint], list[float]]:
    """Compression ratio of the thresholded similarity graph at each threshold.

    Parameters
    ----------
    source:
        A :class:`VectorDataset` (graphs are built per threshold) or a
        pre-built mapping ``{threshold: Graph}``.
    thresholds:
        Thresholds to scan (any order; results follow the given order).
    lam:
        Configured LAM instance (defaults to LAM with 5 passes as in the
        paper's compressibility experiments).
    similarities:
        Optional precomputed dense similarity matrix.  Without it the scan
        streams pair sets from the APSS engine: one quadratic search at the
        loosest threshold, memoised across the sweep by a
        :class:`~repro.similarity.cache.CachedApssEngine`, so the dense
        ``n x n`` matrix is never materialised.

    Returns
    -------
    ``(points, interesting_thresholds)`` where the second element lists the
    thresholds at which the compressibility curve changes slope materially.
    """
    if lam is None:
        lam = LAM(n_passes=5, max_partition_size=500)

    thresholds = list(thresholds)
    graphs: dict[float, Graph]
    if isinstance(source, VectorDataset):
        if similarities is None:
            graphs = {}
            if thresholds:
                engine = CachedApssEngine()
                # One quadratic pass at the loosest threshold; every other
                # threshold filters the memoised pair set.
                engine.search(source, min(float(t) for t in thresholds),
                              measure)
                graphs = {
                    float(t): graph_from_pairs(
                        source.n_rows,
                        engine.search(source, float(t), measure).pairs)
                    for t in thresholds}
        else:
            graphs = {float(t): similarity_graph(source, float(t),
                                                 measure=measure,
                                                 similarities=similarities)
                      for t in thresholds}
    elif isinstance(source, dict):
        graphs = {float(t): graph for t, graph in source.items()}
    else:
        raise TypeError("source must be a VectorDataset or a {threshold: Graph} dict")

    points: list[CompressibilityPoint] = []
    for threshold in thresholds:
        graph = graphs[float(threshold)]
        transactions = _graph_to_transactions(graph)
        if transactions.size == 0:
            points.append(CompressibilityPoint(float(threshold), 1.0, 0, 0))
            continue
        result = lam.run(transactions)
        points.append(CompressibilityPoint(
            threshold=float(threshold),
            compression_ratio=result.compression_ratio,
            n_edges=graph.n_edges,
            n_patterns=result.n_patterns))

    ordered = sorted(points, key=lambda p: p.threshold)
    xs = [p.threshold for p in ordered]
    ys = [p.compression_ratio for p in ordered]
    interesting = find_inflection_points(xs, ys) if len(ordered) >= 3 else []
    return points, interesting
