"""Pattern utility functions (Section 4.4.2).

Two easy-to-compute utilities rank the potential itemsets mined inside a
localized partition:

* **Area**: ``(L - 1) * (F - 1)`` where ``L`` is the itemset length and ``F``
  its frequency within the partition — the symbols saved by replacing each
  occurrence with a pointer and storing the itemset once.
* **Relative Closedness (RC)**: ``sum over covered transactions of |I| / |t|``
  — how much of each covered transaction the itemset explains.
"""

from __future__ import annotations

__all__ = ["area_utility", "relative_closedness", "UTILITY_FUNCTIONS", "get_utility"]


def area_utility(items, transaction_lengths) -> float:
    """Area utility (L - 1) * (F - 1) of an itemset.

    Parameters
    ----------
    items:
        The itemset (any sized collection).
    transaction_lengths:
        Lengths of the transactions the itemset covers (only their count is
        used here; the lengths themselves matter for RC).
    """
    length = len(items)
    frequency = len(transaction_lengths)
    return float(max(length - 1, 0) * max(frequency - 1, 0))


def relative_closedness(items, transaction_lengths) -> float:
    """Relative-closedness utility: sum of |I| / |t| over covered transactions."""
    length = len(items)
    total = 0.0
    for t_length in transaction_lengths:
        if t_length > 0:
            total += length / t_length
    return float(total)


UTILITY_FUNCTIONS = {
    "area": area_utility,
    "rc": relative_closedness,
}


def get_utility(name: str):
    """Look up a utility function by name ('area' or 'rc')."""
    try:
        return UTILITY_FUNCTIONS[name]
    except KeyError:
        raise KeyError(f"unknown utility {name!r}; known: {sorted(UTILITY_FUNCTIONS)}"
                       ) from None
