"""Baseline pattern-mining and compression algorithms (Section 4.5.2).

LAM is compared against the state of the art of its day:

* **closed frequent itemsets** — the classic support-thresholded pattern
  summary (and the preprocessing step of the tiling approaches);
* **Krimp** — greedy MDL code-table selection over frequent-itemset
  candidates in standard candidate order;
* **Slim** — Krimp-style code tables grown by iteratively joining
  co-occurring code-table entries instead of enumerating all candidates;
* **CDB-Hyper** — greedy (hyper-rectangle / tiling) covering that starts from
  closed itemsets and repeatedly picks the pattern covering the largest
  remaining area.

These are faithful-in-spirit reimplementations at the scale this repository
targets: they preserve each algorithm's candidate source, selection rule and
cost model, which is what determines the relative compression-ratio and
runtime ordering reported in Figures 4.6–4.8 and 4.10–4.11.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.datasets.transactions import TransactionDatabase
from repro.lam.codetable import CodeTable, CompressedDatabase
from repro.utils.validation import check_positive_int

__all__ = ["frequent_itemsets", "closed_itemsets", "BaselineResult",
           "krimp_compress", "slim_compress", "cdb_compress"]


# --------------------------------------------------------------------------- #
# Frequent / closed itemset mining (Eclat-style, vertical tid-sets)
# --------------------------------------------------------------------------- #
def frequent_itemsets(database: TransactionDatabase, min_support: int,
                      max_length: int | None = None,
                      max_itemsets: int = 200_000) -> dict[tuple[int, ...], int]:
    """All itemsets of length >= 1 with support >= *min_support*.

    A depth-first Eclat enumeration over vertical tid-sets.  ``max_itemsets``
    bounds the output as a safety valve against pathological (very low
    support) settings — exactly the regime the chapter argues traditional
    miners cannot handle.
    """
    check_positive_int(min_support, "min_support")
    tidsets: dict[int, set[int]] = {}
    for row_id, row in enumerate(database):
        for item in row:
            tidsets.setdefault(item, set()).add(row_id)
    # Enumerate in descending item-support order so that, if the itemset cap
    # is hit, the retained itemsets involve the most frequent items (the ones
    # any compressor would actually want as candidates).
    items = sorted([item for item, tids in tidsets.items()
                    if len(tids) >= min_support],
                   key=lambda item: (-len(tidsets[item]), item))

    results: dict[tuple[int, ...], int] = {}

    def recurse(prefix: tuple[int, ...], prefix_tids: set[int],
                candidates: list[int]) -> None:
        for position, item in enumerate(candidates):
            if len(results) >= max_itemsets:
                return
            tids = prefix_tids & tidsets[item] if prefix else tidsets[item]
            if len(tids) < min_support:
                continue
            itemset = prefix + (item,)
            results[itemset] = len(tids)
            if max_length is None or len(itemset) < max_length:
                recurse(itemset, tids, candidates[position + 1:])

    recurse((), set(range(database.n_transactions)), items)
    return results


def closed_itemsets(database: TransactionDatabase, min_support: int,
                    max_length: int | None = None,
                    max_itemsets: int = 200_000) -> dict[tuple[int, ...], int]:
    """Frequent itemsets with no superset of equal support.

    Closure is checked through single-item extensions: an itemset is closed
    iff no one-item extension has the same support.  Extensions with equal
    support are themselves frequent, so the check is a dictionary lookup per
    (itemset, frequent item) pair rather than a quadratic subset scan.
    """
    frequents = frequent_itemsets(database, min_support, max_length=max_length,
                                  max_itemsets=max_itemsets)
    frequent_items = sorted({items[0] for items in frequents if len(items) == 1}
                            | {item for items in frequents for item in items})

    closed: dict[tuple[int, ...], int] = {}
    for itemset, support in frequents.items():
        is_closed = True
        if max_length is None or len(itemset) < max_length:
            itemset_as_set = set(itemset)
            for item in frequent_items:
                if item in itemset_as_set:
                    continue
                extension = tuple(sorted(itemset + (item,)))
                if frequents.get(extension) == support:
                    is_closed = False
                    break
        if is_closed:
            closed[itemset] = support
    return closed


# --------------------------------------------------------------------------- #
# Shared greedy cover machinery
# --------------------------------------------------------------------------- #
@dataclass
class BaselineResult:
    """Outcome of a baseline compression run."""

    name: str
    compressed: CompressedDatabase
    n_patterns: int
    seconds: float
    candidate_seconds: float = 0.0
    metadata: dict = field(default_factory=dict)

    @property
    def compression_ratio(self) -> float:
        return self.compressed.compression_ratio()


def _greedy_cover(database: TransactionDatabase, candidates,
                  name: str) -> tuple[CompressedDatabase, int]:
    """Consume *candidates* (in the given order) wherever they still apply.

    This is the same LocalOptimal consumption step LAM uses, applied globally,
    so all compressors are scored under one cost model (symbol counts).
    """
    rows: list[set[int]] = [set(row) for row in database]
    code_table = CodeTable(n_labels=database.n_labels)
    n_used = 0
    for itemset in candidates:
        items = set(itemset)
        if len(items) < 2:
            continue
        covered = [row_id for row_id, row in enumerate(rows) if items.issubset(row)]
        if len(covered) < 2:
            continue
        symbol = code_table.add(sorted(items))
        n_used += 1
        for row_id in covered:
            rows[row_id] -= items
            rows[row_id].add(symbol)
    compressed = CompressedDatabase(rows=rows, code_table=code_table,
                                    original_size=database.size, name=name)
    return compressed, n_used


# --------------------------------------------------------------------------- #
# Krimp
# --------------------------------------------------------------------------- #
def krimp_compress(database: TransactionDatabase, min_support: int,
                   max_length: int | None = 12,
                   max_candidates: int = 20_000) -> BaselineResult:
    """Krimp-style MDL code-table compression.

    Candidates are the frequent itemsets at *min_support*.  Following Krimp's
    Standard Cover Order, longer itemsets get the chance to cover the data
    before their sub-itemsets (length descending, then support descending);
    each candidate is accepted only if adding it to the code table shrinks the
    total encoded size, evaluated with the same symbol-count cost model as
    LAM so the comparison is apples-to-apples.
    """
    start = time.perf_counter()
    frequents = frequent_itemsets(database, min_support, max_length=max_length,
                                  max_itemsets=max_candidates)
    candidate_seconds = time.perf_counter() - start

    ordered = sorted(frequents.items(),
                     key=lambda kv: (-len(kv[0]), -kv[1], kv[0]))
    candidates = [itemset for itemset, _ in ordered if len(itemset) >= 2]

    select_start = time.perf_counter()
    rows: list[set[int]] = [set(row) for row in database]
    code_table = CodeTable(n_labels=database.n_labels)
    current_size = database.size
    n_used = 0
    for itemset in candidates:
        items = set(itemset)
        covered = [row_id for row_id, row in enumerate(rows) if items.issubset(row)]
        if len(covered) < 2:
            continue
        # Accept only if total encoded size (rows + code table) decreases.
        gain = (len(items) - 1) * len(covered) - len(items)
        if gain <= 0:
            continue
        symbol = code_table.add(sorted(items))
        n_used += 1
        for row_id in covered:
            rows[row_id] -= items
            rows[row_id].add(symbol)
        current_size -= gain
    compressed = CompressedDatabase(rows=rows, code_table=code_table,
                                    original_size=database.size, name="krimp")
    seconds = time.perf_counter() - select_start + candidate_seconds
    return BaselineResult(name="krimp", compressed=compressed, n_patterns=n_used,
                          seconds=seconds, candidate_seconds=candidate_seconds,
                          metadata={"min_support": min_support,
                                    "n_candidates": len(candidates)})


# --------------------------------------------------------------------------- #
# Slim
# --------------------------------------------------------------------------- #
def slim_compress(database: TransactionDatabase, max_iterations: int = 200
                  ) -> BaselineResult:
    """Slim-style compression: grow the code table by joining co-occurring codes.

    Starting from singleton items, repeatedly propose the union of the two
    code-table elements that co-occur most often and accept it if it reduces
    the encoded size; stop when no join helps or the iteration budget is hit.
    """
    start = time.perf_counter()
    rows: list[set[int]] = [set(row) for row in database]
    code_table = CodeTable(n_labels=database.n_labels)
    n_used = 0

    for _ in range(max_iterations):
        # Count co-occurrences of current symbols (items or codes).
        co_occurrence: dict[tuple[int, int], int] = {}
        for row in rows:
            symbols = sorted(row)
            for i in range(len(symbols)):
                for j in range(i + 1, len(symbols)):
                    pair = (symbols[i], symbols[j])
                    co_occurrence[pair] = co_occurrence.get(pair, 0) + 1
        if not co_occurrence:
            break
        (first, second), count = max(co_occurrence.items(), key=lambda kv: kv[1])
        if count < 2:
            break
        pair_items = {first, second}
        expanded_length = len(code_table.expand_many(pair_items))
        gain = (len(pair_items) - 1) * count - expanded_length
        if gain <= 0:
            break
        symbol = code_table.add(sorted(pair_items))
        n_used += 1
        for row in rows:
            if pair_items.issubset(row):
                row -= pair_items
                row.add(symbol)

    compressed = CompressedDatabase(rows=rows, code_table=code_table,
                                    original_size=database.size, name="slim")
    return BaselineResult(name="slim", compressed=compressed, n_patterns=n_used,
                          seconds=time.perf_counter() - start)


# --------------------------------------------------------------------------- #
# CDB-Hyper
# --------------------------------------------------------------------------- #
def cdb_compress(database: TransactionDatabase, min_support: int,
                 max_length: int | None = 12,
                 max_candidates: int = 20_000) -> BaselineResult:
    """CDB-style summarization: greedy area cover built from closed itemsets.

    Closed itemsets are the candidate tiles; tiles are consumed in descending
    order of area (length x support), the hyper-rectangle covering heuristic
    of the CDB approach, under the shared symbol-count cost model.
    """
    start = time.perf_counter()
    closed = closed_itemsets(database, min_support, max_length=max_length)
    candidate_seconds = time.perf_counter() - start

    ordered = sorted(closed.items(),
                     key=lambda kv: (-(len(kv[0]) * kv[1]), -len(kv[0]), kv[0]))
    candidates = [itemset for itemset, _ in ordered
                  if len(itemset) >= 2][:max_candidates]

    cover_start = time.perf_counter()
    compressed, n_used = _greedy_cover(database, candidates, name="cdb")
    seconds = time.perf_counter() - cover_start + candidate_seconds
    return BaselineResult(name="cdb", compressed=compressed, n_patterns=n_used,
                          seconds=seconds, candidate_seconds=candidate_seconds,
                          metadata={"min_support": min_support,
                                    "n_candidates": len(candidates)})
