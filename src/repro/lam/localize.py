"""Phase 1 of LAM: localization by min-hash clustering (Algorithm 3).

Each transaction gets a k-way min-hash signature; signatures are sorted
lexicographically, and contiguous runs of rows that agree on a prefix of hash
columns are grouped into partitions.  Rows with high Jaccard similarity agree
on many hashes, so partitions collect similar transactions — cheaply, in one
parallelisable pass — and each partition can then be mined independently.

When a run of rows agreeing on the current prefix is still larger than the
partition-size threshold, the next hash column subdivides it; when hashes are
exhausted the run is emitted as-is.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.transactions import TransactionDatabase
from repro.lsh.minhash import MinHashSketcher
from repro.utils.validation import check_positive_int

__all__ = ["localize_phase"]


def localize_phase(rows, *, n_hashes: int = 16, max_partition_size: int = 1000,
                   min_partition_size: int = 2, seed=None) -> list[list[int]]:
    """Group row ids into localized partitions of similar transactions.

    Parameters
    ----------
    rows:
        A :class:`TransactionDatabase` or a list of item collections (which
        may include code symbols from earlier LAM passes).
    n_hashes:
        Number of min-hash functions ``K`` (the paper uses 8–16).
    max_partition_size:
        Runs larger than this are subdivided by further hash columns (the
        paper's "record chunk size", 1000 in its experiments).
    min_partition_size:
        Partitions smaller than this are still returned (they simply yield no
        patterns), but the value documents the intent and guards the scan.

    Returns
    -------
    A list of partitions, each a list of original row indices.  Every row
    appears in exactly one partition.
    """
    check_positive_int(n_hashes, "n_hashes")
    check_positive_int(max_partition_size, "max_partition_size")
    if isinstance(rows, TransactionDatabase):
        row_items = [row for row in rows]
    else:
        row_items = [tuple(row) for row in rows]
    n_rows = len(row_items)
    if n_rows == 0:
        return []

    sketcher = MinHashSketcher(n_hashes, seed=seed)
    signatures = sketcher.sketch_many(row_items)

    # Lexicographic sort of signature rows; np.lexsort keys are last-significant
    # first, so feed columns in reverse order.
    order = np.lexsort(tuple(signatures[:, col] for col in range(n_hashes - 1, -1, -1)))
    sorted_signatures = signatures[order]

    partitions: list[list[int]] = []
    _split_run(sorted_signatures, order, 0, n_rows, 0, max_partition_size,
               partitions)
    return partitions


def _split_run(signatures: np.ndarray, order: np.ndarray, start: int, stop: int,
               column: int, max_size: int, partitions: list[list[int]]) -> None:
    """Recursively split rows [start, stop) on hash columns >= *column*."""
    size = stop - start
    if size <= 0:
        return
    n_hashes = signatures.shape[1]
    if size <= max_size or column >= n_hashes:
        partitions.append([int(order[i]) for i in range(start, stop)])
        return
    # Rows are lexicographically sorted, so equal values in this column form
    # contiguous runs within [start, stop).
    run_start = start
    for i in range(start + 1, stop + 1):
        at_end = i == stop
        if at_end or signatures[i, column] != signatures[run_start, column]:
            # Each run of equal hash values is refined on the next column;
            # recursion stops once a run fits under max_size (or hashes run out).
            _split_run(signatures, order, run_start, i, column + 1, max_size,
                       partitions)
            run_start = i
