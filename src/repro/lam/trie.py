"""The mining trie and potential-itemset generation (Algorithms 5 and 6).

Transactions of a localized partition are inserted into a trie after being
reordered by descending item frequency (so common prefixes are shared, as in
FP-growth).  Each trie node carries the set of transaction ids whose reordered
transaction passes through it.  Potential itemsets are then read off the trie:
from each deep node with at least two supporting transactions, a walk back to
the root emits the path as an itemset, and un-coloured ancestors with strictly
longer transaction lists contribute additional (shorter, more frequent)
itemsets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TrieNode", "PatternTrie", "PotentialItemset"]


@dataclass
class TrieNode:
    """One node of the pattern trie."""

    item: int | None
    depth: int
    parent: "TrieNode | None" = None
    children: dict[int, "TrieNode"] = field(default_factory=dict)
    transaction_ids: list[int] = field(default_factory=list)
    colored: bool = False

    @property
    def count(self) -> int:
        return len(self.transaction_ids)


@dataclass(frozen=True)
class PotentialItemset:
    """A candidate itemset read from the trie, with its supporting rows."""

    items: tuple[int, ...]
    transaction_ids: tuple[int, ...]

    @property
    def length(self) -> int:
        return len(self.items)

    @property
    def frequency(self) -> int:
        return len(self.transaction_ids)


class PatternTrie:
    """Trie over frequency-reordered transactions of one partition."""

    def __init__(self) -> None:
        self.root = TrieNode(item=None, depth=0)
        self.n_nodes = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_transactions(cls, transactions: dict[int, tuple[int, ...]],
                          min_item_count: int = 2) -> "PatternTrie":
        """Build a trie from ``{transaction_id: items}``.

        Items occurring fewer than *min_item_count* times across the partition
        are dropped (singletons cannot participate in a shared pattern), and
        each transaction's remaining items are sorted by descending frequency
        before insertion, improving prefix sharing.
        """
        counts: dict[int, int] = {}
        for items in transactions.values():
            for item in items:
                counts[item] = counts.get(item, 0) + 1

        trie = cls()
        for transaction_id, items in transactions.items():
            kept = [item for item in items if counts[item] >= min_item_count]
            kept.sort(key=lambda item: (-counts[item], item))
            if kept:
                trie.insert(transaction_id, kept)
        return trie

    def insert(self, transaction_id: int, items) -> None:
        """Insert an already-ordered transaction into the trie."""
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = TrieNode(item=int(item), depth=node.depth + 1, parent=node)
                node.children[item] = child
                self.n_nodes += 1
            child.transaction_ids.append(transaction_id)
            node = child

    # ------------------------------------------------------------------ #
    # Potential itemset generation (Algorithms 5 and 6)
    # ------------------------------------------------------------------ #
    def potential_itemsets(self) -> list[PotentialItemset]:
        """Generate candidate itemsets by walking to deep nodes and back up.

        A "deep" node is the last node on a root-to-leaf path whose
        transaction list still has length greater than one; from each such
        node the walk back towards the root emits the full path as an itemset
        and, via the colouring scheme of Algorithm 6, shorter/higher-support
        prefixes as further candidates.
        """
        potentials: list[PotentialItemset] = []
        deep_nodes: list[TrieNode] = []
        stack = [child for child in self.root.children.values() if child.count > 1]
        while stack:
            node = stack.pop()
            supported_children = [c for c in node.children.values() if c.count > 1]
            if supported_children:
                stack.extend(supported_children)
            else:
                deep_nodes.append(node)
        for node in deep_nodes:
            self._mark_node(node, potentials)
        return potentials

    def _path_items(self, node: TrieNode) -> list[int]:
        items: list[int] = []
        walker: TrieNode | None = node
        while walker is not None and walker.depth > 0:
            items.append(walker.item)
            walker = walker.parent
        return items

    def _mark_node(self, node: TrieNode, potentials: list[PotentialItemset]) -> None:
        """Algorithm 6: emit the full prefix through *node*, then recurse upward."""
        count = node.count
        if not node.colored and count > 1:
            items = self._path_items(node)
            if len(items) >= 2:
                potentials.append(PotentialItemset(
                    items=tuple(sorted(items)),
                    transaction_ids=tuple(node.transaction_ids)))
            # Colour the equal-count segment so sibling walks terminate early.
            walker: TrieNode | None = node
            while walker is not None and walker.depth > 0 and walker.count == count:
                walker.colored = True
                walker = walker.parent
            # ``walker`` is the first ancestor with a longer transaction list;
            # it contributes a shorter, more frequent candidate.
            if walker is not None and walker.depth > 0 and not walker.colored:
                self._mark_node(walker, potentials)
        else:
            ancestor = node.parent
            if ancestor is not None and ancestor.depth > 0 and not ancestor.colored:
                self._mark_node(ancestor, potentials)
