"""Localized Approximate Miner (LAM) and compression baselines (Chapter 4)."""

from repro.lam.codetable import CodeTable, CompressedDatabase
from repro.lam.utility import area_utility, relative_closedness, get_utility, UTILITY_FUNCTIONS
from repro.lam.localize import localize_phase
from repro.lam.trie import PatternTrie, PotentialItemset
from repro.lam.mining import mine_consume_phase
from repro.lam.lam import LAM, LamResult, parallel_speedup_estimate
from repro.lam.baselines import (
    frequent_itemsets,
    closed_itemsets,
    krimp_compress,
    slim_compress,
    cdb_compress,
    BaselineResult,
)
from repro.lam.classify import PatternClassifier, train_test_split_transactions
from repro.lam.compressibility import CompressibilityPoint, compressibility_scan

__all__ = [
    "CodeTable",
    "CompressedDatabase",
    "area_utility",
    "relative_closedness",
    "get_utility",
    "UTILITY_FUNCTIONS",
    "localize_phase",
    "PatternTrie",
    "PotentialItemset",
    "mine_consume_phase",
    "LAM",
    "LamResult",
    "parallel_speedup_estimate",
    "frequent_itemsets",
    "closed_itemsets",
    "krimp_compress",
    "slim_compress",
    "cdb_compress",
    "BaselineResult",
    "PatternClassifier",
    "train_test_split_transactions",
    "CompressibilityPoint",
    "compressibility_scan",
]
