"""Phase 2 of LAM: approximate mining and consumption (Algorithm 4).

Within one localized partition the working transactions are inserted into a
:class:`~repro.lam.trie.PatternTrie`, potential itemsets are read off the
trie, ranked by the chosen utility function, and greedily consumed using the
LocalOptimal strategy: each consumed itemset is removed from the transactions
that contain it, replaced by a pointer to its new code-table entry.  Because
consumption changes the transactions, each candidate's utility is re-checked
(in O(1) per covered transaction) immediately before it is consumed, and
fruitless candidates are discarded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lam.codetable import CodeTable
from repro.lam.trie import PatternTrie
from repro.lam.utility import get_utility

__all__ = ["ConsumedPattern", "mine_consume_phase"]


@dataclass(frozen=True)
class ConsumedPattern:
    """A pattern that was consumed into the code table."""

    symbol: int
    items: tuple[int, ...]
    n_covered: int
    utility: float


def mine_consume_phase(rows: list[set[int]], partition: list[int],
                       code_table: CodeTable, *, utility: str = "area",
                       min_item_count: int = 2) -> list[ConsumedPattern]:
    """Mine one partition and consume its high-utility itemsets in place.

    Parameters
    ----------
    rows:
        The whole database's working rows (sets of item/code symbols);
        mutated in place as patterns are consumed.
    partition:
        Row indices belonging to this localized partition.
    code_table:
        Shared code table; consumed patterns are appended to it.
    utility:
        ``"area"`` or ``"rc"``.
    min_item_count:
        Items occurring fewer times than this within the partition are not
        inserted into the trie.

    Returns
    -------
    The list of patterns consumed from this partition, in consumption order.
    """
    utility_func = get_utility(utility)
    transactions = {row_id: tuple(sorted(rows[row_id])) for row_id in partition
                    if rows[row_id]}
    if len(transactions) < 2:
        return []

    trie = PatternTrie.from_transactions(transactions,
                                         min_item_count=min_item_count)
    potentials = trie.potential_itemsets()
    if not potentials:
        return []

    def initial_utility(potential) -> float:
        lengths = [len(rows[row_id]) for row_id in potential.transaction_ids]
        return utility_func(potential.items, lengths)

    ranked = sorted(potentials, key=initial_utility, reverse=True)

    consumed: list[ConsumedPattern] = []
    for potential in ranked:
        items = set(potential.items)
        if len(items) < 2:
            continue
        # Consumption of earlier patterns may have invalidated this candidate;
        # recompute which of its transactions still contain it.
        covered = [row_id for row_id in potential.transaction_ids
                   if items.issubset(rows[row_id])]
        if len(covered) < 2:
            continue
        current_utility = utility_func(potential.items,
                                       [len(rows[row_id]) for row_id in covered])
        if current_utility <= 0:
            continue
        symbol = code_table.add(potential.items)
        for row_id in covered:
            rows[row_id] -= items
            rows[row_id].add(symbol)
        consumed.append(ConsumedPattern(symbol=symbol, items=potential.items,
                                        n_covered=len(covered),
                                        utility=float(current_utility)))
    return consumed
