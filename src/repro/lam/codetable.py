"""Code tables and compressed transaction databases.

LAM compresses a database by repeatedly *consuming* a high-utility itemset:
every transaction containing the itemset has those items removed and a pointer
to the itemset's code appended, and the itemset (stored once) is added to the
code table.  Because later passes mine the already-compressed database, code
table entries may themselves contain pointers to earlier codes — the paper
reports each transaction needing on average 1.4–1.5 dereferences to fully
expand.  ``CodeTable.expand`` resolves those chains, and
``CompressedDatabase.decode`` reconstructs the original database losslessly,
which is the invariant the compression-ratio numbers rest on.

Sizes are measured in *symbols* (item or code occurrences), matching the
dissertation's item-count based compression ratios ("2.6M items removed from a
data set of 19.2M").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.transactions import TransactionDatabase

__all__ = ["CodeTable", "CompressedDatabase"]


@dataclass
class CodeTable:
    """Patterns discovered so far, addressable by code symbols.

    Code symbols are integers at or above ``n_labels`` so they can coexist
    with item labels inside transactions: symbol ``n_labels + k`` refers to the
    ``k``-th pattern.
    """

    n_labels: int
    patterns: list[tuple[int, ...]] = field(default_factory=list)

    def add(self, items) -> int:
        """Store a new pattern and return its code symbol."""
        pattern = tuple(sorted(int(i) for i in items))
        if not pattern:
            raise ValueError("cannot add an empty pattern")
        self.patterns.append(pattern)
        return self.n_labels + len(self.patterns) - 1

    def __len__(self) -> int:
        return len(self.patterns)

    def is_code(self, symbol: int) -> bool:
        return symbol >= self.n_labels

    def pattern_for(self, symbol: int) -> tuple[int, ...]:
        """The stored (possibly pointer-containing) pattern for *symbol*."""
        if not self.is_code(symbol):
            raise KeyError(f"{symbol} is not a code symbol")
        index = symbol - self.n_labels
        if index >= len(self.patterns):
            raise KeyError(f"unknown code symbol {symbol}")
        return self.patterns[index]

    def expand(self, symbol: int) -> frozenset[int]:
        """Fully expand *symbol* (item or code) into base item labels."""
        if not self.is_code(symbol):
            return frozenset((symbol,))
        expanded: set[int] = set()
        stack = [symbol]
        seen: set[int] = set()
        while stack:
            current = stack.pop()
            if self.is_code(current):
                if current in seen:
                    raise ValueError(f"cyclic code reference at symbol {current}")
                seen.add(current)
                stack.extend(self.pattern_for(current))
            else:
                expanded.add(current)
        return frozenset(expanded)

    def expand_many(self, symbols) -> frozenset[int]:
        """Expand a collection of symbols into the union of their base items."""
        expanded: set[int] = set()
        for symbol in symbols:
            expanded.update(self.expand(symbol))
        return frozenset(expanded)

    def expanded_patterns(self) -> list[frozenset[int]]:
        """Every pattern fully expanded to base items."""
        return [self.expand(self.n_labels + i) for i in range(len(self.patterns))]

    def size_in_symbols(self) -> int:
        """Storage cost of the code table: one symbol per stored element."""
        return sum(len(pattern) for pattern in self.patterns)

    def pattern_lengths(self) -> list[int]:
        """Fully expanded length of each pattern (for Figure 4.13)."""
        return [len(p) for p in self.expanded_patterns()]

    def dereference_depth(self, symbol: int) -> int:
        """Number of pointer hops needed to fully expand *symbol*."""
        if not self.is_code(symbol):
            return 0
        return 1 + max((self.dereference_depth(s) for s in self.pattern_for(symbol)),
                       default=0)


@dataclass
class CompressedDatabase:
    """A database whose rows may contain code symbols, plus its code table."""

    rows: list[set[int]]
    code_table: CodeTable
    original_size: int
    name: str = "compressed"

    @property
    def n_transactions(self) -> int:
        return len(self.rows)

    def rows_size(self) -> int:
        """Number of symbols stored across all transactions."""
        return sum(len(row) for row in self.rows)

    def total_size(self) -> int:
        """Compressed representation size: rows plus the code table."""
        return self.rows_size() + self.code_table.size_in_symbols()

    def compression_ratio(self) -> float:
        """Original size divided by compressed size (higher is better)."""
        total = self.total_size()
        if total == 0:
            return 1.0
        return self.original_size / total

    def decode(self) -> TransactionDatabase:
        """Losslessly reconstruct the original transaction database."""
        decoded_rows = [sorted(self.code_table.expand_many(row)) for row in self.rows]
        return TransactionDatabase(decoded_rows, n_labels=self.code_table.n_labels,
                                   name=f"{self.name}-decoded")

    def mean_dereferences(self) -> float:
        """Average pointer-expansion depth per transaction (paper: 1.4–1.5)."""
        if not self.rows:
            return 0.0
        depths = []
        for row in self.rows:
            max_depth = max((self.code_table.dereference_depth(s) for s in row),
                            default=0)
            depths.append(max_depth)
        return float(sum(depths)) / len(depths)
