"""Compressed analytics: classification from class-specific patterns
(Section 4.4.6, evaluated in Figure 4.9).

The classifier splits the training data by class label, runs a compressor
(LAM by default, Krimp-style optionally) on each split to obtain a set of
class-characteristic patterns, prunes patterns that are not discriminative
(they compress every class about equally well), and classifies a test
transaction by the fraction of a class's retained patterns it is a superset
of — falling back to the majority class when no pattern applies, as in CBA.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.datasets.transactions import TransactionDatabase
from repro.lam.baselines import krimp_compress
from repro.lam.lam import LAM
from repro.utils.random_state import ensure_rng

__all__ = ["train_test_split_transactions", "PatternClassifier"]


def train_test_split_transactions(database: TransactionDatabase,
                                  test_fraction: float = 0.3, seed=None
                                  ) -> tuple[TransactionDatabase, TransactionDatabase]:
    """Split a labeled transaction database into train and test parts."""
    if database.labels is None:
        raise ValueError("database must carry class labels")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must lie in (0, 1)")
    rng = ensure_rng(seed)
    order = rng.permutation(database.n_transactions)
    n_test = max(1, int(round(test_fraction * database.n_transactions)))
    test_ids = sorted(int(i) for i in order[:n_test])
    train_ids = sorted(int(i) for i in order[n_test:])
    return database.subset(train_ids, name="train"), database.subset(test_ids, name="test")


@dataclass
class _ClassModel:
    label: object
    patterns: list[frozenset[int]] = field(default_factory=list)


class PatternClassifier:
    """CBA-style classifier over class-specific compressing patterns.

    Parameters
    ----------
    compressor:
        ``"lam"`` (default) or ``"krimp"`` — which algorithm mines each
        class's pattern set.
    max_patterns_per_class:
        Keep only the top patterns per class (by utility order of discovery).
    discriminative_only:
        Drop patterns that appear (as subsets) in the pattern sets of most
        other classes — the pruning step of Section 4.4.6.
    min_support:
        Support threshold used by the Krimp compressor.
    """

    def __init__(self, compressor: str = "lam", *, max_patterns_per_class: int = 40,
                 discriminative_only: bool = True, min_support: int = 2,
                 lam_passes: int = 3, seed: int = 0) -> None:
        if compressor not in ("lam", "krimp"):
            raise ValueError("compressor must be 'lam' or 'krimp'")
        self.compressor = compressor
        self.max_patterns_per_class = max_patterns_per_class
        self.discriminative_only = discriminative_only
        self.min_support = min_support
        self.lam_passes = lam_passes
        self.seed = seed
        self._models: list[_ClassModel] = []
        self._default_class = None

    # ------------------------------------------------------------------ #
    def fit(self, database: TransactionDatabase) -> "PatternClassifier":
        """Mine class-specific pattern sets from a labeled training database."""
        if database.labels is None:
            raise ValueError("training database must carry class labels")
        labels = list(database.labels)
        self._default_class = Counter(labels).most_common(1)[0][0]

        self._models = []
        for label in sorted(set(labels), key=str):
            row_ids = [i for i, row_label in enumerate(labels) if row_label == label]
            split = database.subset(row_ids, name=f"class-{label}")
            patterns = self._mine_patterns(split)
            self._models.append(_ClassModel(label=label, patterns=patterns))

        if self.discriminative_only and len(self._models) > 1:
            self._prune_common_patterns()
        return self

    def _mine_patterns(self, split: TransactionDatabase) -> list[frozenset[int]]:
        if self.compressor == "lam":
            result = LAM(n_passes=self.lam_passes, seed=self.seed,
                         max_partition_size=200).run(split)
            expanded = result.code_table.expanded_patterns()
        else:
            result = krimp_compress(split, min_support=self.min_support)
            expanded = result.compressed.code_table.expanded_patterns()
        unique: list[frozenset[int]] = []
        seen: set[frozenset[int]] = set()
        for pattern in expanded:
            if pattern not in seen and len(pattern) >= 2:
                seen.add(pattern)
                unique.append(pattern)
            if len(unique) >= self.max_patterns_per_class:
                break
        return unique

    def _prune_common_patterns(self) -> None:
        """Remove patterns that occur in (almost) every class's pattern set."""
        pattern_classes: dict[frozenset[int], int] = {}
        for model in self._models:
            for pattern in set(model.patterns):
                pattern_classes[pattern] = pattern_classes.get(pattern, 0) + 1
        threshold = len(self._models)
        for model in self._models:
            filtered = [p for p in model.patterns if pattern_classes[p] < threshold]
            # Never strip a class of its entire pattern set.
            if filtered:
                model.patterns = filtered

    # ------------------------------------------------------------------ #
    def predict_one(self, transaction) -> object:
        """Predict the class label of one transaction (a collection of items)."""
        if not self._models:
            raise RuntimeError("classifier must be fitted before predicting")
        items = set(int(i) for i in transaction)
        best_label = None
        best_score = 0.0
        for model in self._models:
            if not model.patterns:
                continue
            matched = sum(1 for pattern in model.patterns if pattern.issubset(items))
            score = matched / len(model.patterns)
            if score > best_score:
                best_score = score
                best_label = model.label
        if best_label is None or best_score == 0.0:
            return self._default_class
        return best_label

    def predict(self, database: TransactionDatabase) -> list[object]:
        """Predict labels for every transaction in *database*."""
        return [self.predict_one(row) for row in database]

    def accuracy(self, database: TransactionDatabase) -> float:
        """Classification accuracy on a labeled database."""
        if database.labels is None:
            raise ValueError("database must carry class labels")
        predictions = self.predict(database)
        correct = sum(1 for predicted, actual in zip(predictions, database.labels)
                      if predicted == actual)
        return correct / database.n_transactions

    def cross_validate(self, database: TransactionDatabase, folds: int = 5,
                       seed: int = 0) -> float:
        """Mean accuracy over *folds*-fold cross validation (paper uses 10)."""
        if database.labels is None:
            raise ValueError("database must carry class labels")
        rng = ensure_rng(seed)
        order = rng.permutation(database.n_transactions)
        fold_ids = [sorted(int(i) for i in order[fold::folds]) for fold in range(folds)]
        accuracies = []
        for fold in range(folds):
            test_ids = fold_ids[fold]
            train_ids = sorted(set(range(database.n_transactions)) - set(test_ids))
            self.fit(database.subset(train_ids))
            accuracies.append(self.accuracy(database.subset(test_ids)))
        return float(sum(accuracies) / len(accuracies))
