"""Work partitioning for the sharded APSS backend.

The blocked kernel's unit of work is one row block — a contiguous row range
whose similarity slab is computed by a single sparse matrix product.  This
module splits the upper-triangular block grid into *shards*: disjoint sets of
row blocks that workers can execute independently and whose results merge
back into one canonical pair set regardless of completion order.

Cost model: a search shard for rows ``[start, stop)`` only scores columns
``j >= start`` (the strict upper triangle plus the block diagonal), so early
blocks are more expensive than late ones.  The default ``striped`` strategy
round-robins blocks across shards, which balances that triangular cost to
within one block; ``balanced`` runs a greedy longest-processing-time
assignment on the explicit cost model; ``contiguous`` keeps each shard's rows
adjacent (useful when a worker amortises per-shard preparation over
neighbouring blocks).

:func:`partition_delta_blocks` applies the same machinery to the *ingest*
workload: the appended rows of a :class:`~repro.datasets.vectors.DatasetDelta`
form a ``Δn x n`` cross block whose per-row cost grows with the row id (a
delta row ``r`` scores columns ``j < r``), so its cost model is the prefix
triangle rather than the suffix one.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "PARTITION_STRATEGIES",
    "WORKERS_ENV_VAR",
    "BlockShard",
    "block_ranges",
    "partition_blocks",
    "partition_delta_blocks",
    "resolve_worker_count",
    "shard_owner",
]

#: Environment variable overriding the default sharded worker count.
WORKERS_ENV_VAR = "REPRO_APSS_WORKERS"

PARTITION_STRATEGIES = ("striped", "contiguous", "balanced")


@dataclass(frozen=True)
class BlockShard:
    """One worker-sized unit: a set of row blocks of the block grid.

    ``blocks`` holds ``(start, stop)`` row ranges.  Shards are identified by
    ``shard_id`` (dense, 0-based); merging in ``shard_id``/block order plus a
    final canonical sort makes results independent of completion order.
    """

    shard_id: int
    blocks: tuple[tuple[int, int], ...]

    @property
    def n_rows(self) -> int:
        """Total rows across this shard's blocks."""
        return sum(stop - start for start, stop in self.blocks)

    def search_cost(self, n_rows: int) -> int:
        """Cells a search worker scores for this shard (triangular model)."""
        return sum((stop - start) * (n_rows - start) for start, stop in self.blocks)

    def delta_cost(self) -> int:
        """Cells a delta-ingest worker scores (prefix-triangular model).

        A delta row ``r`` pairs with every column ``j < r``, so a block
        ``[start, stop)`` costs about ``(stop - start) * stop`` cells —
        late blocks are the expensive ones, the mirror image of the search
        cost model.
        """
        return sum((stop - start) * stop for start, stop in self.blocks)


def block_ranges(n_rows: int, block_rows: int,
                 first_row: int = 0) -> list[tuple[int, int]]:
    """The blocked kernel's row ranges covering ``[first_row, n_rows)``."""
    if block_rows <= 0:
        raise ValueError("block_rows must be positive")
    return [(start, min(start + block_rows, n_rows))
            for start in range(first_row, max(n_rows, first_row), block_rows)]


def _assign_blocks(ranges: list[tuple[int, int]], n_shards: int,
                   strategy: str, cost) -> list[BlockShard]:
    """Assign *ranges* to at most *n_shards* shards under one cost model.

    The shared machinery behind :func:`partition_blocks` and
    :func:`partition_delta_blocks`: every block lands in exactly one shard,
    shards come back in ``shard_id`` order with blocks in row order, so the
    plan is deterministic — only execution order is up to the scheduler.
    """
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    if strategy not in PARTITION_STRATEGIES:
        raise ValueError(f"unknown partition strategy {strategy!r}; "
                         f"known: {list(PARTITION_STRATEGIES)}")
    n_shards = min(n_shards, len(ranges)) or 1
    assigned: list[list[tuple[int, int]]] = [[] for _ in range(n_shards)]
    if strategy == "striped":
        for index, block in enumerate(ranges):
            assigned[index % n_shards].append(block)
    elif strategy == "contiguous":
        base, extra = divmod(len(ranges), n_shards)
        cursor = 0
        for shard in range(n_shards):
            take = base + (1 if shard < extra else 0)
            assigned[shard] = ranges[cursor:cursor + take]
            cursor += take
    else:  # balanced: greedy LPT on the explicit cost model
        loads = [0] * n_shards
        by_cost = sorted(ranges, key=lambda b: (cost(b), b[0]), reverse=True)
        for block in by_cost:
            target = min(range(n_shards), key=lambda s: (loads[s], s))
            assigned[target].append(block)
            loads[target] += cost(block)
        for blocks in assigned:
            blocks.sort()
    return [BlockShard(shard_id, tuple(blocks))
            for shard_id, blocks in enumerate(assigned) if blocks]


def partition_blocks(n_rows: int, block_rows: int, n_shards: int,
                     strategy: str = "striped") -> list[BlockShard]:
    """Split the block grid into at most *n_shards* non-empty search shards.

    Every block lands in exactly one shard; shards are returned in
    ``shard_id`` order and each shard lists its blocks in row order, so the
    plan itself is deterministic — only execution order is up to the
    scheduler.
    """
    ranges = block_ranges(n_rows, block_rows)
    return _assign_blocks(ranges, n_shards, strategy,
                          cost=lambda b: (b[1] - b[0]) * (n_rows - b[0]))


def partition_delta_blocks(parent_rows: int, child_rows: int, block_rows: int,
                           n_shards: int,
                           strategy: str = "striped") -> list[BlockShard]:
    """Shard the ``Δn x n`` append cross block over the appended row range.

    Blocks cover exactly the rows ``[parent_rows, child_rows)`` — the rows a
    :class:`~repro.datasets.vectors.DatasetDelta` introduced — and the
    ``balanced`` strategy uses the prefix-triangular cost model
    (:meth:`BlockShard.delta_cost`): a delta row ``r`` scores columns
    ``j < r``, so *late* blocks are the expensive ones.  Returns ``[]`` for
    an empty append.
    """
    if not 0 <= parent_rows <= child_rows:
        raise ValueError(f"invalid delta row range [{parent_rows}, "
                         f"{child_rows})")
    ranges = block_ranges(child_rows, block_rows, first_row=parent_rows)
    if not ranges:
        return []
    return _assign_blocks(ranges, n_shards, strategy,
                          cost=lambda b: (b[1] - b[0]) * b[1])


def shard_owner(shard_id: int, n_slots: int) -> int:
    """The worker slot that *owns* a shard under striped ownership.

    The single home of the ownership rule shared by the work-stealing queue
    (own shards are claimed before stealing begins) and by true static
    binding (``steal=False`` clients execute exactly their stripe).  Striping
    by ``shard_id % n_slots`` mirrors the ``striped`` partition strategy's
    cost balancing: consecutive shards — whose triangular costs differ the
    most — land on different workers.
    """
    if n_slots < 1:
        raise ValueError("n_slots must be at least 1")
    return int(shard_id) % int(n_slots)


def resolve_worker_count(n_workers: int | None = None) -> int:
    """Resolve the worker count: explicit value, else env, else CPU count.

    ``REPRO_APSS_WORKERS`` lets deployments (and the CI matrix) pin the
    default without touching call sites.  The fallback caps at 8 workers —
    beyond that the merge and IPC overhead dominates for the workloads this
    library targets.
    """
    if n_workers is None:
        env = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if env:
            try:
                n_workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV_VAR} must be an integer, got {env!r}") from None
        else:
            n_workers = min(os.cpu_count() or 1, 8)
    n_workers = int(n_workers)
    if n_workers < 1:
        raise ValueError(f"n_workers must be at least 1, got {n_workers}")
    return n_workers
