"""Exact all-pairs similarity search (APSS) baseline.

This is the brute-force ground truth PLASMA-HD's estimates are compared
against: enumerate every pair, compute the exact similarity, and keep pairs
meeting the threshold.  The module also provides the exact pair-count curve
(the dark-red "ground truth" line in Figures 2.3/2.4) and the similarity
histogram used for sampling-method comparisons (Figure 3.18).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.vectors import VectorDataset
from repro.similarity.measures import get_measure, pairwise_similarity_matrix

__all__ = ["SimilarPair", "exact_all_pairs", "exact_pair_count",
           "similarity_histogram"]


@dataclass(frozen=True)
class SimilarPair:
    """A pair of row ids together with their (exact or estimated) similarity."""

    first: int
    second: int
    similarity: float

    def as_tuple(self) -> tuple[int, int, float]:
        return (self.first, self.second, self.similarity)


def exact_all_pairs(dataset: VectorDataset, threshold: float,
                    measure: str = "cosine") -> list[SimilarPair]:
    """Return every pair with similarity >= *threshold* (exact, O(n^2))."""
    func = get_measure(measure)
    rows = [dataset.row(i) for i in range(dataset.n_rows)]
    pairs: list[SimilarPair] = []
    for i in range(dataset.n_rows):
        for j in range(i + 1, dataset.n_rows):
            similarity = func(rows[i], rows[j])
            if similarity >= threshold:
                pairs.append(SimilarPair(i, j, similarity))
    return pairs


def exact_pair_count(dataset: VectorDataset, thresholds,
                     measure: str = "cosine") -> dict[float, int]:
    """Exact number of similar pairs at each threshold in *thresholds*.

    Equivalent to running :func:`exact_all_pairs` once per threshold but
    computed from a single pass over the pairwise similarities.
    """
    thresholds = [float(t) for t in thresholds]
    sims = pairwise_similarity_matrix(dataset, measure=measure)
    upper = sims[np.triu_indices(dataset.n_rows, k=1)]
    return {t: int(np.count_nonzero(upper >= t)) for t in thresholds}


def similarity_histogram(dataset: VectorDataset, bins: int = 50,
                         measure: str = "cosine") -> tuple[np.ndarray, np.ndarray]:
    """Histogram of all pairwise similarity values (counts, bin_edges)."""
    sims = pairwise_similarity_matrix(dataset, measure=measure)
    upper = sims[np.triu_indices(dataset.n_rows, k=1)]
    counts, edges = np.histogram(upper, bins=bins)
    return counts, edges
