"""Exact all-pairs similarity search (APSS) baselines.

Historically this module owned the brute-force O(n^2) loop; it is now a thin
compatibility layer over :mod:`repro.similarity.engine`.  The reference loop
itself lives on as the ``exact-loop`` backend, and these helpers default to
the vectorised ``exact-blocked`` backend, which the cross-backend parity
suite pins to identical results.

The module also provides the exact pair-count curve (the dark-red "ground
truth" line in Figures 2.3/2.4) and the similarity histogram used for
sampling-method comparisons (Figure 3.18).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.vectors import VectorDataset
from repro.similarity.streaming import streaming_similarity_histogram
from repro.similarity.types import SimilarPair

__all__ = ["SimilarPair", "exact_all_pairs", "exact_pair_count",
           "similarity_histogram"]


def exact_all_pairs(dataset: VectorDataset, threshold: float,
                    measure: str = "cosine",
                    backend: str | None = None) -> list[SimilarPair]:
    """Return every pair with similarity >= *threshold* (exact).

    Delegates to the APSS engine; *backend* selects any registered exact
    backend (default ``exact-blocked``).
    """
    from repro.similarity.engine import DEFAULT_BACKEND, apss_search

    return apss_search(dataset, threshold, measure=measure,
                       backend=backend or DEFAULT_BACKEND).pairs


def exact_pair_count(dataset: VectorDataset, thresholds,
                     measure: str = "cosine",
                     backend: str | None = None) -> dict[float, int]:
    """Exact number of similar pairs at each threshold in *thresholds*.

    Runs one engine search at the smallest threshold and counts the
    surviving pairs at every other one, so the quadratic work happens once.
    """
    from repro.similarity.engine import DEFAULT_BACKEND, apss_search

    thresholds = [float(t) for t in thresholds]
    if not thresholds:
        return {}
    result = apss_search(dataset, min(thresholds), measure=measure,
                         backend=backend or DEFAULT_BACKEND)
    return {t: result.count_at(t) for t in thresholds}


def similarity_histogram(dataset: VectorDataset, bins: int = 50,
                         measure: str = "cosine",
                         **stream_options) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of all pairwise similarity values (counts, bin_edges).

    Streams dense similarity slabs from the blocked kernel instead of
    materialising the ``n x n`` matrix; ``block_rows``/``memory_budget_mb``
    forward to :func:`repro.similarity.streaming.streaming_similarity_histogram`.
    """
    return streaming_similarity_histogram(dataset, bins=bins, measure=measure,
                                          **stream_options)
