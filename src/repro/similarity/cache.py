"""Cross-threshold memoisation for the APSS engine, with optional persistence.

Interactive probing and densifying-series construction repeatedly ask the
same dataset "which pairs meet threshold t?" for a sweep of thresholds.
Because the pair set at a higher threshold is a subset of the pair set at any
lower one, a single quadratic search at the loosest threshold answers every
tighter probe by filtering — ``CachedApssEngine`` implements exactly that,
memoising one :class:`~repro.similarity.engine.EngineResult` per
``(dataset fingerprint, measure, backend, options)`` and serving any
threshold at or above its cached floor without touching the kernel again.

    >>> engine = CachedApssEngine()
    >>> engine.search(dataset, 0.2)      # one quadratic pass (miss)
    >>> engine.search(dataset, 0.5)      # filtered from cache (hit)
    >>> engine.search(dataset, 0.1)      # below the floor: new pass, new floor

Two further layers sit behind the in-memory sweep cache:

* **Persistent spill/restore** — with a :class:`~repro.store.SimilarityStore`
  attached (pass ``store=`` or set ``REPRO_APSS_STORE``), every kernel floor
  is persisted, an LRU-evicted entry can be restored without recomputing,
  and a *new process* opening the same store serves previously-swept
  thresholds with zero kernel invocations.
* **Delta extension** — a dataset produced by
  :meth:`~repro.datasets.vectors.VectorDataset.append_rows` whose *parent*
  floor is cached (in memory or in the store) is answered by extending that
  floor over the appended rows only (O(new x total), exact backends only)
  instead of a from-scratch O(total^2) search.
"""

from __future__ import annotations

from repro.datasets.vectors import VectorDataset
from repro.similarity.backends import get_backend_class
from repro.similarity.engine import DEFAULT_BACKEND, ApssEngine, EngineResult

__all__ = ["CachedApssEngine"]


class CachedApssEngine:
    """An :class:`ApssEngine` wrapper memoising pair sets across thresholds.

    Parameters
    ----------
    engine:
        The engine to wrap; a fresh default :class:`ApssEngine` if omitted.
    max_entries:
        How many memoised results to keep in memory (least-recently-used
        eviction).  One entry per (dataset fingerprint, measure, backend,
        options) key, each holding the pair list of its loosest searched
        threshold.  Entries spilled to an attached store outlive eviction.
    store:
        A :class:`~repro.store.SimilarityStore` to spill floors to and
        restore them from.  Defaults to the store named by the
        ``REPRO_APSS_STORE`` environment variable (when set); pass
        ``store=False`` to force a purely in-memory cache.
    snapshot:
        A :class:`~repro.store.StoreSnapshot` pinning this engine's reads
        to one manifest version.  With a snapshot attached, store lookups
        resolve through the pinned manifest only — concurrent ingest,
        compaction and GC are invisible — and kernel floors are *published*
        to the store's versioned lineage (:meth:`SimilarityStore.publish_floor`)
        rather than merely spilled, so other sessions' future snapshots see
        them.  The engine still serves its own fresh floors from memory.
    delta_workers:
        Worker processes for automatic delta extensions of appended
        datasets (see :class:`~repro.store.delta.DeltaApssBackend`).  The
        default ``1`` runs the cross-block pass in-process; larger values
        shard it over the same worker pool as ``sharded-blocked``.  Purely
        an execution choice — extended floors are byte-identical either
        way.
    backend, **backend_options:
        Convenience constructor arguments for the wrapped engine (mutually
        exclusive with passing *engine*).

    Notes
    -----
    Cache entries are keyed by the dataset's content fingerprint, so mutating
    a dataset in place yields a fresh entry rather than stale pairs — and the
    stale entry ages out of the LRU bound instead of lingering forever.
    ``hits``/``misses`` count the in-memory sweep cache only; a probe served
    by the persistent store or the delta path still counts as a miss there
    and is tallied separately (``store_restores``, ``delta_extensions``).
    """

    def __init__(self, engine: ApssEngine | None = None,
                 backend: str | None = None, max_entries: int = 8,
                 store=None, delta_workers: int = 1, snapshot=None,
                 **backend_options) -> None:
        if engine is not None and (backend is not None or backend_options):
            raise ValueError("pass either an engine or backend options, not both")
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if engine is None:
            engine = ApssEngine(backend or DEFAULT_BACKEND, **backend_options)
        self.engine = engine
        self.max_entries = int(max_entries)
        self.delta_workers = int(delta_workers)
        if store is None and snapshot is not None:
            # A snapshot names its own store; never fall through to the
            # environment one, which may be a different directory entirely.
            store = snapshot.store
        elif store is None:
            from repro.store import SimilarityStore

            store = SimilarityStore.from_env()
        elif store is False:
            store = None
        self.store = store
        self.snapshot = snapshot
        self._cache: dict[tuple, EngineResult] = {}
        self.hits = 0
        self.misses = 0
        self.store_restores = 0
        self.delta_extensions = 0

    # ------------------------------------------------------------------ #
    @property
    def backend(self) -> str:
        """The wrapped engine's default backend name."""
        return self.engine.backend

    def clear(self) -> None:
        """Drop every in-memory memoised result (the store is untouched)."""
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)

    def _key(self, fingerprint: str, measure: str, backend: str | None,
             options: dict) -> tuple:
        name = backend or self.engine.backend
        # Execution-only options (worker counts, injected executors, ...)
        # change scheduling, never results: strip them so a sweep cached by a
        # single-worker pass serves a 4-worker probe and vice versa.  The
        # declared options are resolved from the registry *at lookup time* —
        # never captured at construction — so a backend registered after
        # this cache was built still gets its options stripped, and a name
        # the registry cannot resolve fails loudly here instead of silently
        # fragmenting the key space (the search would fail on it anyway).
        keyed = options
        if options:
            execution_only = get_backend_class(name).execution_options
            keyed = {k: v for k, v in options.items()
                     if k not in execution_only}
        return (fingerprint, measure, name, tuple(sorted(keyed.items())))

    def cache_key(self, fingerprint: str, measure: str = "cosine",
                  backend: str | None = None, **options) -> tuple:
        """The canonical floor key for (*fingerprint*, *measure*, backend).

        The public face of the keying rule every layer above shares: the
        tiered engine parks estimates under it, the store lands floors by
        it, and the service scheduler coalesces concurrent sweeps on it.
        Execution-only options are stripped exactly as :meth:`search` does,
        so callers deriving keys can never fragment the key space.
        """
        return self._key(fingerprint, measure, backend, options)

    def _install(self, key: tuple, result: EngineResult) -> None:
        """Insert *result* under *key*, refreshing recency and bounding size."""
        # pop with a default: a concurrent searcher may have evicted the key
        # between lookup and here — races may cost recency bookkeeping,
        # never a KeyError.
        self._cache.pop(key, None)
        self._cache[key] = result
        while len(self._cache) > self.max_entries:
            try:
                self._cache.pop(next(iter(self._cache)), None)
            except (StopIteration, RuntimeError):
                break  # emptied or resized by a concurrent searcher

    def _serve(self, cached: EngineResult, threshold: float, measure: str,
               source: str) -> EngineResult:
        """Filter a cached floor result down to *threshold*."""
        pairs = [p for p in cached.pairs if p.similarity >= threshold]
        details = dict(cached.details)
        details["cache"] = {"hit": True, "floor_threshold": cached.threshold,
                            "source": source}
        return EngineResult(
            backend=cached.backend, measure=measure, threshold=threshold,
            n_rows=cached.n_rows, pairs=pairs, exact=cached.exact,
            seconds=0.0, n_candidates=len(cached.pairs), n_pruned=0,
            details=details)

    # ------------------------------------------------------------------ #
    def _accepts(self, key: tuple, floor: EngineResult) -> bool:
        """Exactness discipline: may *floor* serve searches keyed by *key*?

        An exact floor serves anything.  An *approximate* floor is only
        acceptable when the key's backend is itself approximate — the
        two-tier landing path parks estimate floors under exact-backend
        keys while refinement runs, and serving one of those to a plain
        exact search would silently violate its exactness contract.
        """
        if floor.exact:
            return True
        try:
            return not get_backend_class(key[2]).exact
        except KeyError:
            return False

    def _lookup_floor(self, key: tuple, threshold: float, install: bool = True,
                      accept_approximate: bool = False,
                      ) -> tuple[EngineResult | None, str, EngineResult | None]:
        """A floor result at or below *threshold*, from memory or the store.

        The single home of the floor-acceptance rule: a candidate floor
        must be at or below *threshold* **and** pass the exactness
        discipline of :meth:`_accepts` (overridable with
        *accept_approximate*, the tiered engine's peek mode).  Returns
        ``(floor, source, stored)`` where *source* is ``"memory"``,
        ``"store"``, ``"snapshot"`` or ``"none"`` and *stored* is whatever
        the store lookup returned (``None`` when it missed or was never
        consulted) — callers thread it into :meth:`_persist` so the entry
        is not re-read.

        With a snapshot attached, the pinned manifest is the *only*
        persistent source consulted: falling back to the live store would
        let a concurrent ingest leak through the isolation boundary.
        """
        def acceptable(floor: EngineResult) -> bool:
            return floor.threshold <= threshold and (
                accept_approximate or self._accepts(key, floor))

        stored = None
        cached = self._cache.get(key)
        if cached is not None and acceptable(cached):
            return cached, "memory", stored
        if self.snapshot is not None:
            pinned = self.snapshot.load_result(key)
            if pinned is not None and acceptable(pinned):
                if install and self._accepts(key, pinned):
                    self._install(key, pinned)
                return pinned, "snapshot", pinned
            return None, "none", pinned
        if self.store is not None:
            stored = self.store.load_result(key)
            if stored is not None and acceptable(stored):
                if install and self._accepts(key, stored):
                    self._install(key, stored)
                return stored, "store", stored
        return None, "none", stored

    def peek(self, dataset: VectorDataset, threshold: float,
             measure: str = "cosine", backend: str | None = None, *,
             accept_approximate: bool = False,
             **options) -> EngineResult | None:
        """Serve *threshold* from existing floors only — never the kernel.

        Lookup order and filtering match :meth:`search`, but a miss returns
        ``None`` instead of searching, and the hit/miss counters are left
        untouched (a peek is a question about cache state, not a probe).
        With ``accept_approximate=True`` an estimate floor parked under
        this key is served too (tagged ``exact=False`` with its ``epsilon``
        in ``details``) — the tiered engine's fast path for checking
        whether refinement already landed.
        """
        threshold = float(threshold)
        key = self._key(dataset.fingerprint(), measure, backend, options)
        floor, source, _ = self._lookup_floor(
            key, threshold, accept_approximate=accept_approximate)
        if floor is None:
            return None
        return self._serve(floor, threshold, measure, source)

    def _try_delta_extend(self, dataset: VectorDataset, threshold: float,
                          measure: str, backend: str | None,
                          options: dict, key: tuple) -> EngineResult | None:
        """Extend the parent dataset's cached floor over an append, if possible.

        Requires: the dataset carries a parent delta whose child fingerprint
        matches this search's key and the parent's floor (memory or store)
        is at or below the requested threshold.  Exact backends extend
        through :class:`~repro.store.delta.DeltaApssBackend`; approximate
        backends that expose their own ``extend`` seam (``bayeslsh``)
        extend an approximate parent floor by sketching and verifying only
        new-vs-all pairs — both O(Δn·n) instead of a fresh O(n²) search.
        """
        delta = getattr(dataset, "parent_delta", None)
        if delta is None or delta.child_fingerprint != key[0]:
            return None
        name = backend or self.engine.backend
        try:
            backend_cls = get_backend_class(name)
        except KeyError:
            return None
        parent_key = self._key(delta.parent_fingerprint, measure, backend,
                               options)
        parent, _, _ = self._lookup_floor(parent_key, threshold, install=False)
        if parent is None or parent.n_rows != delta.parent_rows:
            return None
        # The key fingerprint equals the dataset's content hash (computed by
        # the caller), which already proves the delta matches the content.
        if backend_cls.exact:
            from repro.store.delta import DeltaApssBackend

            extended = DeltaApssBackend(n_workers=self.delta_workers).extend(
                parent, dataset, delta, verify_fingerprint=False)
        else:
            extender = getattr(backend_cls, "extend", None)
            if extender is None or parent.exact:
                return None
            from repro.similarity.backends import make_backend

            # A memory-cached parent carries its live sketch store; extend a
            # copy of it so only the Δn new rows are sketched and the parent
            # can still seed other children.  (Store-restored parents have no
            # details and fall back to a seed-identical full resketch.)
            extend_kwargs = {}
            parent_store = parent.details.get("sketch_store")
            if getattr(parent_store, "n_rows", None) == delta.parent_rows:
                extend_kwargs["sketch_store"] = parent_store.copy()
            extended = make_backend(name, **options).extend(
                parent, dataset, delta, verify_fingerprint=False,
                **extend_kwargs)
        self.delta_extensions += 1
        return extended

    # ------------------------------------------------------------------ #
    def search(self, dataset: VectorDataset, threshold: float,
               measure: str = "cosine", backend: str | None = None,
               **options) -> EngineResult:
        """Like :meth:`ApssEngine.search`, reusing any looser cached search.

        Lookup order: in-memory sweep cache, then the persistent store, then
        delta extension of the parent dataset's floor (for appended
        datasets), then a full kernel search (whose floor is memoised and,
        when a store is attached, persisted).
        """
        threshold = float(threshold)
        key = self._key(dataset.fingerprint(), measure, backend, options)
        floor, source, stored = self._lookup_floor(key, threshold)
        if floor is not None:
            if source == "memory":
                self.hits += 1
                self._install(key, floor)  # refresh recency
            else:
                self.misses += 1           # the in-memory sweep cache missed
                self.store_restores += 1
            return self._serve(floor, threshold, measure, source)
        self.misses += 1
        extended = self._try_delta_extend(dataset, threshold, measure,
                                          backend, options, key)
        if extended is not None:
            self._install(key, extended)
            self._persist(key, extended, stored, dataset)
            return self._serve(extended, threshold, measure, "delta")
        result = self.engine.search(dataset, threshold, measure,
                                    backend=backend, **options)
        self._install(key, result)
        self._persist(key, result, stored, dataset)
        return result

    def _persist(self, key: tuple, result: EngineResult,
                 existing: EngineResult | None,
                 dataset: VectorDataset | None = None) -> None:
        """Spill a floor result to the store unless a looser floor is held.

        *existing* is what this search's store lookup already returned for
        *key* (``None`` on a store miss) — threading it through avoids
        re-reading and re-materialising the entry just to compare floors.
        With a snapshot attached, *existing* came from the pinned manifest
        and may be stale, so the *live* floor is re-read before comparing,
        and the result is published to the versioned lineage (carrying the
        dataset's append delta, when present) instead of merely spilled.

        Either way the write goes through the store's upgrade-only landing
        rule (:meth:`SimilarityStore.land_result`): an exact result
        replaces an estimate parked under the same key regardless of
        threshold, an estimate never replaces an exact floor, and a
        same-flavour write needs a strictly looser threshold.
        """
        if self.store is None:
            return
        if self.snapshot is not None:
            existing = self.store.load_result(key)
            self.store.publish_floor(
                key, result, delta=getattr(dataset, "parent_delta", None),
                existing=existing)
        else:
            self.store.land_result(key, result, existing=existing)

    def iter_similarity_blocks(self, dataset: VectorDataset,
                               measure: str = "cosine", **kwargs):
        """Delegate raw slab access to the wrapped engine (never cached)."""
        return self.engine.iter_similarity_blocks(dataset, measure, **kwargs)
