"""Cross-threshold memoisation for the APSS engine.

Interactive probing and densifying-series construction repeatedly ask the
same dataset "which pairs meet threshold t?" for a sweep of thresholds.
Because the pair set at a higher threshold is a subset of the pair set at any
lower one, a single quadratic search at the loosest threshold answers every
tighter probe by filtering — ``CachedApssEngine`` implements exactly that,
memoising one :class:`~repro.similarity.engine.EngineResult` per
``(dataset fingerprint, measure, backend, options)`` and serving any
threshold at or above its cached floor without touching the kernel again.

    >>> engine = CachedApssEngine()
    >>> engine.search(dataset, 0.2)      # one quadratic pass (miss)
    >>> engine.search(dataset, 0.5)      # filtered from cache (hit)
    >>> engine.search(dataset, 0.1)      # below the floor: new pass, new floor
"""

from __future__ import annotations

from repro.datasets.vectors import VectorDataset
from repro.similarity.backends import get_backend_class
from repro.similarity.engine import DEFAULT_BACKEND, ApssEngine, EngineResult

__all__ = ["CachedApssEngine"]


class CachedApssEngine:
    """An :class:`ApssEngine` wrapper memoising pair sets across thresholds.

    Parameters
    ----------
    engine:
        The engine to wrap; a fresh default :class:`ApssEngine` if omitted.
    max_entries:
        How many memoised results to keep (least-recently-used eviction).
        One entry per (dataset fingerprint, measure, backend, options) key,
        each holding the pair list of its loosest searched threshold.
    backend, **backend_options:
        Convenience constructor arguments for the wrapped engine (mutually
        exclusive with passing *engine*).

    Notes
    -----
    Cache entries are keyed by the dataset's content fingerprint, so mutating
    a dataset in place yields a fresh entry rather than stale pairs — and the
    stale entry ages out of the LRU bound instead of lingering forever.
    Memory is bounded by *max_entries* pair lists (each the natural output
    size of its sweep); :meth:`clear` drops them all.
    """

    def __init__(self, engine: ApssEngine | None = None,
                 backend: str | None = None, max_entries: int = 8,
                 **backend_options) -> None:
        if engine is not None and (backend is not None or backend_options):
            raise ValueError("pass either an engine or backend options, not both")
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if engine is None:
            engine = ApssEngine(backend or DEFAULT_BACKEND, **backend_options)
        self.engine = engine
        self.max_entries = int(max_entries)
        self._cache: dict[tuple, EngineResult] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    @property
    def backend(self) -> str:
        return self.engine.backend

    def clear(self) -> None:
        """Drop every memoised result."""
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)

    def _key(self, dataset: VectorDataset, measure: str, backend: str | None,
             options: dict) -> tuple:
        name = backend or self.engine.backend
        # Execution-only options (worker counts, injected executors, ...)
        # change scheduling, never results: strip them so a sweep cached by a
        # single-worker pass serves a 4-worker probe and vice versa.
        try:
            execution_only = get_backend_class(name).execution_options
        except KeyError:
            execution_only = ()
        keyed = {k: v for k, v in options.items() if k not in execution_only}
        return (dataset.fingerprint(), measure, name,
                tuple(sorted(keyed.items())))

    # ------------------------------------------------------------------ #
    def search(self, dataset: VectorDataset, threshold: float,
               measure: str = "cosine", backend: str | None = None,
               **options) -> EngineResult:
        """Like :meth:`ApssEngine.search`, reusing any looser cached search."""
        threshold = float(threshold)
        key = self._key(dataset, measure, backend, options)
        cached = self._cache.get(key)
        if cached is not None and cached.threshold <= threshold:
            self.hits += 1
            # Refresh recency (dict preserves insertion order: oldest first).
            # pop with a default: a concurrent miss may have evicted the key
            # between the get above and here — races may cost recency
            # bookkeeping, never a KeyError out of a hit.
            self._cache.pop(key, None)
            self._cache[key] = cached
            pairs = [p for p in cached.pairs if p.similarity >= threshold]
            details = dict(cached.details)
            details["cache"] = {"hit": True, "floor_threshold": cached.threshold}
            return EngineResult(
                backend=cached.backend, measure=measure, threshold=threshold,
                n_rows=cached.n_rows, pairs=pairs, exact=cached.exact,
                seconds=0.0, n_candidates=len(cached.pairs), n_pruned=0,
                details=details)
        self.misses += 1
        result = self.engine.search(dataset, threshold, measure,
                                    backend=backend, **options)
        self._cache.pop(key, None)
        self._cache[key] = result
        while len(self._cache) > self.max_entries:
            try:
                self._cache.pop(next(iter(self._cache)), None)
            except (StopIteration, RuntimeError):
                break  # emptied or resized by a concurrent searcher
        return result

    def iter_similarity_blocks(self, dataset: VectorDataset,
                               measure: str = "cosine", **kwargs):
        """Delegate raw slab access to the wrapped engine (never cached)."""
        return self.engine.iter_similarity_blocks(dataset, measure, **kwargs)
