"""Shared-memory transport for the sharded APSS backend.

The sharded backend's two remaining IPC costs were both pickle: every task
carried the prepared CSR arrays in its payload (re-unpickled per task until a
worker's memo warmed up), and every streamed slab travelled back through the
process pool's result pipe as a pickled ndarray.  This module removes both:

* **Dataset segments** — :func:`publish_dataset` copies a dataset's CSR
  arrays (``indptr``/``indices``/``data``) into
  ``multiprocessing.shared_memory`` segments once, keyed by the dataset's
  content fingerprint.  Task payloads then carry only a tiny
  :class:`SharedDatasetDescriptor` (segment names + shapes); workers
  :func:`attach_dataset` and build a zero-copy ``VectorDataset`` over the
  mapped buffers.  Published datasets are LRU-capped
  (:data:`MAX_PUBLISHED_DATASETS`) and their lifecycle is tied to the shared
  worker pools: :func:`release_all` runs on pool evict/rebuild and at
  interpreter exit, so ``/dev/shm`` is left clean.

* **Slab ring** — :class:`SlabRing` is a bounded ring of slab-sized segments
  the streaming path hands to workers as return slots.  A worker writes its
  dense slab straight into its slot (:func:`write_slab`) and returns only the
  shape; the parent either copies the slab out (:meth:`SlabRing.read`) or —
  the zero-copy path — *borrows* the slot (:meth:`SlabRing.borrow`): a
  read-only ndarray view of the mapped buffer, handed to trusted reducers in
  place.  A borrowed slot cannot be handed to a writer again
  (:meth:`SlabRing.slot_name` refuses) until :meth:`SlabRing.release` returns
  it.  Slot reuse is safe by construction: slot ``k % size`` is only
  resubmitted after task ``k - size`` was consumed (copied or released),
  which the streaming generator's bounded in-flight window guarantees.

Every entry point degrades gracefully: :func:`publish_dataset` and
:class:`SlabRing` return ``None`` / raise ``OSError`` when shared memory is
unavailable (exotic platforms, a full ``/dev/shm``), and the sharded backend
falls back to the original pickle transport.  On Python < 3.13 the transport
is only enabled under the ``fork`` start method, where attach-side
registrations collapse into the parent's resource tracker; 3.13+ attaches
with ``track=False`` and supports any start method.
"""

from __future__ import annotations

import atexit
import itertools
import os
import sys
import weakref
from dataclasses import dataclass

import numpy as np

from repro.datasets.vectors import VectorDataset

__all__ = [
    "MAX_PUBLISHED_DATASETS",
    "SEGMENT_PREFIX",
    "SharedArraySpec",
    "SharedDatasetDescriptor",
    "SlabRing",
    "active_segment_names",
    "attach_dataset",
    "attach_segment",
    "default_ring_slots",
    "pin_dataset",
    "publish_dataset",
    "published_fingerprints",
    "release_all",
    "release_dataset",
    "release_datasets",
    "transport_supported",
    "unpin_dataset",
    "write_slab",
]

#: Every segment this process creates is named ``<prefix>-<generation>-<tag>``
#: so tests (and operators) can audit ``/dev/shm`` for leaks by prefix alone.
SEGMENT_PREFIX = f"ra{os.getpid():x}"


def _reset_after_fork() -> None:  # pragma: no cover - exercised via children
    """Disown inherited parent-side state in a forked child.

    The registries hold handles the *parent* owns: a child unlinking them
    (explicitly or at exit) would tear segments out from under the parent,
    and reusing the parent's name prefix could collide with its generation
    counter.  Children start with a clean, pid-distinct transport instead.
    """
    global SEGMENT_PREFIX
    SEGMENT_PREFIX = f"ra{os.getpid():x}"
    _PUBLISHED.clear()
    _PINS.clear()
    _RINGS.clear()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_after_fork)

#: How many datasets may stay published at once.  Publishing one more unlinks
#: the least recently used — workers still holding a mapping keep it alive
#: (POSIX unlink semantics) until their per-process memo moves on.
MAX_PUBLISHED_DATASETS = 4

_generation = itertools.count()


def default_ring_slots(n_workers: int) -> int:
    """The slab-ring slot budget for a pool of *n_workers*.

    One slot per in-flight streamed block, with 2x oversubscription so a
    slow shard never idles the pool.  This is the single home of the
    in-flight bound: the sharded streaming path sizes its reorder window
    (and hence its :class:`SlabRing`) from it, and the service layer's
    admission gate ties its probe-lane concurrency to the same number —
    admitting more concurrent sweeps than the ring can return slabs for
    would only queue them inside the kernel.
    """
    return max(1, 2 * int(n_workers))


def transport_supported() -> bool:
    """Whether the shared-memory transport is safe to use on this platform.

    Python 3.13+ can attach segments untracked (``track=False``) under any
    start method.  Earlier versions register attachments with the resource
    tracker, which is only benign when workers are forked (they share the
    parent's tracker, so duplicate registrations collapse); under ``spawn``
    each worker's own tracker would unlink live segments at worker exit.
    """
    if sys.version_info >= (3, 13):
        return True
    try:
        import multiprocessing

        method = multiprocessing.get_start_method(allow_none=True)
    except Exception:  # pragma: no cover - defensive
        return False
    return method in (None, "fork")


def attach_segment(name: str):
    """Attach an existing shared-memory segment without tracking it.

    Workers use this; the parent (which created the segment) keeps the
    authoritative handle and is responsible for unlinking.
    """
    from multiprocessing import shared_memory

    if sys.version_info >= (3, 13):
        return shared_memory.SharedMemory(name=name, track=False)
    return shared_memory.SharedMemory(name=name)


def _create_segment(tag: str, size: int):
    from multiprocessing import shared_memory

    name = f"{SEGMENT_PREFIX}-{next(_generation):x}-{tag}"
    return shared_memory.SharedMemory(name=name, create=True,
                                      size=max(1, int(size)))


@dataclass(frozen=True)
class SharedArraySpec:
    """One numpy array published as a shared-memory segment."""

    name: str
    shape: tuple
    dtype: str

    def read(self, buffer) -> np.ndarray:
        """A zero-copy ndarray view of *buffer* with this spec's layout."""
        return np.ndarray(self.shape, dtype=np.dtype(self.dtype),
                          buffer=buffer)


@dataclass(frozen=True)
class SharedDatasetDescriptor:
    """Everything a worker needs to attach a published dataset.

    Picklable and tiny — this is the whole per-task payload once a dataset
    is published, replacing the CSR arrays themselves.
    """

    fingerprint: str
    n_features: int
    indptr: SharedArraySpec
    indices: SharedArraySpec
    data: SharedArraySpec


class _PublishedDataset:
    """Parent-side handle owning one published dataset's segments."""

    def __init__(self, dataset: VectorDataset, fingerprint: str) -> None:
        self._segments = []
        specs = {}
        try:
            for tag, array in (("p", dataset.indptr), ("i", dataset.indices),
                               ("d", dataset.data)):
                segment = _create_segment(tag, array.nbytes)
                self._segments.append(segment)
                spec = SharedArraySpec(segment.name, array.shape,
                                       array.dtype.str)
                spec.read(segment.buf)[...] = array
                specs[tag] = spec
        except BaseException:
            self.unlink()
            raise
        self.descriptor = SharedDatasetDescriptor(
            fingerprint=fingerprint, n_features=dataset.n_features,
            indptr=specs["p"], indices=specs["i"], data=specs["d"])

    def segment_names(self) -> list[str]:
        """Names of the live segments this handle owns."""
        return [segment.name for segment in self._segments]

    def unlink(self) -> None:
        """Close and unlink every segment (idempotent, error-tolerant)."""
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - exported views linger
                pass
            try:
                segment.unlink()
            except OSError:
                pass  # a previous release (or the OS) already removed it
        self._segments = []


#: Fingerprint -> handle, in LRU order (oldest first).
_PUBLISHED: dict[str, _PublishedDataset] = {}

#: Fingerprint -> active-use count.  A pinned dataset is skipped by the LRU
#: eviction in :func:`publish_dataset`, so a long-lived stream (or an
#: in-flight search) cannot have its segments unlinked from under it by
#: other datasets being published concurrently.
_PINS: dict[str, int] = {}

#: Live parent-side slab rings, so interpreter exit can reclaim them even if
#: a streaming generator was abandoned without running its ``finally``.
_RINGS: list["SlabRing"] = []


def publish_dataset(dataset: VectorDataset,
                    fingerprint: str | None = None
                    ) -> SharedDatasetDescriptor | None:
    """Publish *dataset*'s CSR arrays to shared memory; return a descriptor.

    Idempotent per content fingerprint: a dataset already published is
    re-served (and refreshed in the LRU order) without copying again.
    Returns ``None`` when the transport is unsupported or segment creation
    fails — callers fall back to the pickle payload.
    """
    if not transport_supported():
        return None
    fingerprint = fingerprint or dataset.fingerprint()
    handle = _PUBLISHED.pop(fingerprint, None)
    if handle is not None:
        _PUBLISHED[fingerprint] = handle  # refresh recency
        return handle.descriptor
    try:
        handle = _PublishedDataset(dataset, fingerprint)
    except OSError:
        return None
    _PUBLISHED[fingerprint] = handle
    if len(_PUBLISHED) > MAX_PUBLISHED_DATASETS:
        # Evict oldest-first, but never a pinned dataset (one an active
        # stream or fan-out is still using) — the cap may be exceeded
        # temporarily rather than unlink segments out from under a user.
        for candidate in list(_PUBLISHED):
            if len(_PUBLISHED) <= MAX_PUBLISHED_DATASETS:
                break
            if _PINS.get(candidate) or candidate == fingerprint:
                continue  # in use, or the descriptor being returned right now
            _PUBLISHED.pop(candidate).unlink()
    return handle.descriptor


def pin_dataset(fingerprint: str) -> None:
    """Protect a published dataset from LRU eviction while in use."""
    _PINS[fingerprint] = _PINS.get(fingerprint, 0) + 1


def unpin_dataset(fingerprint: str) -> None:
    """Release one :func:`pin_dataset` hold (unknown fingerprints are fine)."""
    count = _PINS.get(fingerprint, 0) - 1
    if count > 0:
        _PINS[fingerprint] = count
    else:
        _PINS.pop(fingerprint, None)


def release_dataset(fingerprint: str) -> None:
    """Unlink one published dataset (missing fingerprints are fine)."""
    handle = _PUBLISHED.pop(fingerprint, None)
    if handle is not None:
        handle.unlink()


def release_datasets() -> None:
    """Unlink every *idle* published dataset (pinned ones and rings survive).

    The hook the sharded backend runs when a broken pool is evicted and
    rebuilt: idle dataset segments are republishable on demand, whereas a
    pinned dataset or a live stream's ring belongs to an active user —
    possibly on a different, healthy pool — and must survive an unrelated
    pool's death.
    """
    for fingerprint in list(_PUBLISHED):
        if not _PINS.get(fingerprint):
            _PUBLISHED.pop(fingerprint).unlink()


def release_all() -> None:
    """Unlink every published dataset and any live slab ring, drop all pins.

    The full teardown, wired to ``reset_shared_pools()`` and to interpreter
    exit: no segment outlives the process that created it.  A stream still
    running across this call fails loudly on its next ring access (see
    :class:`SlabRing`) rather than computing on unlinked memory.
    """
    _PINS.clear()  # before releasing: the full teardown overrides pins
    release_datasets()
    while _RINGS:
        _RINGS.pop().close()


def published_fingerprints() -> list[str]:
    """Fingerprints currently published, oldest first."""
    return list(_PUBLISHED)


def active_segment_names() -> list[str]:
    """Names of every live segment this process owns (datasets + rings)."""
    names = [name for handle in _PUBLISHED.values()
             for name in handle.segment_names()]
    for ring in _RINGS:
        names.extend(ring.segment_names())
    return names


atexit.register(release_all)


# --------------------------------------------------------------------- #
# Slab-return ring
# --------------------------------------------------------------------- #

class _SlotGuard:
    """Keeps one ring slot's mapping alive while borrowed views reference it.

    numpy does not hold a buffer export on ``segment.buf`` (it copies the
    pointer and releases the ``Py_buffer`` immediately), so neither
    ``SharedMemory.close()`` nor the object's ``__del__`` knows a view is
    still reading the mapping — an eager close would unmap under the view
    and turn a stale read into a segfault.  The guard counts live views via
    ``weakref.finalize`` and defers the actual ``close()`` until the ring
    has retired the slot *and* the last view has been garbage-collected.
    """

    def __init__(self, segment) -> None:
        self.segment = segment
        self.live_views = 0
        self.retired = False

    def track(self, view: np.ndarray) -> None:
        """Register *view* as a live reader of this slot's mapping."""
        self.live_views += 1
        weakref.finalize(view, self.view_dropped)

    def view_dropped(self) -> None:
        """Finalizer hook: a tracked view was garbage-collected."""
        self.live_views -= 1
        self._maybe_close()

    def retire(self) -> None:
        """Ring-side teardown: close the mapping once no view needs it."""
        self.retired = True
        self._maybe_close()

    def _maybe_close(self) -> None:
        if self.retired and self.live_views <= 0:
            try:
                self.segment.close()
            except (OSError, BufferError):  # pragma: no cover - best effort
                pass


class SlabRing:
    """A bounded ring of slab-sized segments used as worker return slots.

    One slot per in-flight streamed block: the streaming generator keeps at
    most ``n_slots`` tasks pending and consumes them in submission order, so
    slot ``k % n_slots`` is free by the time task ``k`` is submitted.
    Construction raises ``OSError`` when the segments cannot be created
    (callers fall back to pickled slab returns).
    """

    def __init__(self, n_slots: int, slot_bytes: int) -> None:
        if n_slots < 1:
            raise ValueError("n_slots must be at least 1")
        self._segments = []
        self._borrowed: set[int] = set()
        self._guards: dict[int, _SlotGuard] = {}
        try:
            for _ in range(n_slots):
                self._segments.append(_create_segment("s", slot_bytes))
        except BaseException:
            self.close()
            raise
        _RINGS.append(self)

    def _slot(self, index: int):
        if not self._segments:
            raise RuntimeError(
                "slab ring is closed (released by reset_shared_pools() or "
                "interpreter teardown while the stream was still running)")
        return self._segments[index % len(self._segments)]

    def slot_name(self, index: int) -> str:
        """The segment name task *index* must write its slab into.

        Refuses while the slot is borrowed: handing a writer a slot whose
        read-only view a consumer still holds would mutate data under the
        consumer, the exact bug the borrow protocol exists to prevent.
        """
        segment = self._slot(index)
        if index % len(self._segments) in self._borrowed:
            raise RuntimeError(
                f"ring slot {index % len(self._segments)} is still borrowed; "
                f"release() it before it can be written again")
        return segment.name

    def read(self, index: int, shape: tuple) -> np.ndarray:
        """Copy task *index*'s slab out of its slot (the slot is then free)."""
        return np.ndarray(shape, dtype=np.float64,
                          buffer=self._slot(index).buf).copy()

    def borrow(self, index: int, shape: tuple) -> np.ndarray:
        """A read-only, zero-copy view of task *index*'s slab.

        The slot stays out of circulation — :meth:`slot_name` refuses it and
        a second :meth:`borrow` raises — until :meth:`release` returns it.
        The view is marked non-writable: borrowers are readers by contract,
        and an accidental in-place update raises instead of corrupting a
        buffer another task may rewrite later.
        """
        segment = self._slot(index)
        slot = index % len(self._segments)
        if slot in self._borrowed:
            raise RuntimeError(f"ring slot {slot} is already borrowed")
        view = np.ndarray(shape, dtype=np.float64, buffer=segment.buf)
        view.flags.writeable = False
        self._borrowed.add(slot)
        guard = self._guards.get(slot)
        if guard is None:
            guard = self._guards[slot] = _SlotGuard(segment)
        guard.track(view)
        return view

    def release(self, index: int) -> None:
        """Return a borrowed slot to circulation.

        Raises on a slot that is not borrowed — a double release is a
        lifecycle bug upstream (the view may already be aliased by a new
        writer) and must fail loudly, not late.
        """
        if not self._segments:
            raise RuntimeError(
                "slab ring is closed (released by reset_shared_pools() or "
                "interpreter teardown while the stream was still running)")
        slot = index % len(self._segments)
        if slot not in self._borrowed:
            raise RuntimeError(f"ring slot {slot} is not borrowed")
        self._borrowed.discard(slot)

    def is_borrowed(self, index: int) -> bool:
        """Whether task *index*'s slot is currently borrowed."""
        if not self._segments:
            return False
        return index % len(self._segments) in self._borrowed

    def borrowed_slots(self) -> list[int]:
        """Currently borrowed slot numbers, ascending (audit/test hook)."""
        return sorted(self._borrowed)

    def release_borrows(self) -> None:
        """Drop every outstanding borrow (abandoned-stream cleanup path)."""
        self._borrowed.clear()

    def segment_names(self) -> list[str]:
        """Names of the ring's live segments."""
        return [segment.name for segment in self._segments]

    def close(self) -> None:
        """Close and unlink every slot (idempotent).

        Outstanding borrows are dropped first: no new borrow or write can
        target the ring after this.  Slots that were ever borrowed are
        *unlinked but not eagerly unmapped* — their :class:`_SlotGuard`
        closes the mapping only after the last borrowed view is
        garbage-collected, so a consumer that (against the contract)
        retained a view past the stream sees stale data, never a segfault.
        Unlinking removes the ``/dev/shm`` name immediately either way, so
        the leak oracle stays clean.  Callers streaming through worker
        processes must quiesce in-flight writers before closing — see
        ``iter_similarity_blocks_sharded`` — or a worker may find its slot
        unlinked mid-write.
        """
        self.release_borrows()
        if self in _RINGS:
            _RINGS.remove(self)
        for slot, segment in enumerate(self._segments):
            guard = self._guards.get(slot)
            if guard is None:
                try:
                    segment.close()
                except BufferError:  # pragma: no cover - exported views linger
                    pass
            else:
                guard.retire()
            try:
                segment.unlink()
            except OSError:
                pass
        self._segments = []
        self._guards = {}


def write_slab(slot_name: str, slab: np.ndarray) -> tuple:
    """Worker-side: write *slab* into the ring slot *slot_name*.

    Returns the slab's shape — the only thing that still travels back
    through the result pipe (the parent validates it before reading).
    """
    segment = attach_segment(slot_name)
    view = None
    try:
        view = np.ndarray(slab.shape, dtype=np.float64, buffer=segment.buf)
        view[...] = slab
    finally:
        view = None  # release the exported buffer before closing the mapping
        try:
            segment.close()
        except BufferError:  # pragma: no cover - exported views linger
            pass
    return tuple(slab.shape)


def attach_dataset(descriptor: SharedDatasetDescriptor
                   ) -> tuple[VectorDataset, list]:
    """Worker-side: rebuild a zero-copy ``VectorDataset`` from a descriptor.

    Returns ``(dataset, segments)``; the caller must keep *segments*
    referenced for as long as the dataset (or anything sliced from it) is
    used — the arrays are views into the mapped buffers.
    """
    segments = []
    arrays = []
    try:
        for spec in (descriptor.indptr, descriptor.indices, descriptor.data):
            segment = attach_segment(spec.name)
            segments.append(segment)
            arrays.append(spec.read(segment.buf))
    except BaseException:
        for segment in segments:
            try:
                segment.close()
            except (OSError, BufferError):  # pragma: no cover - best effort
                pass
        raise
    dataset = VectorDataset(arrays[0], arrays[1], arrays[2],
                            descriptor.n_features)
    return dataset, segments
