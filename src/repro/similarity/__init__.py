"""Similarity measures and the pluggable all-pairs similarity search engine."""

from repro.similarity.measures import (
    cosine_similarity,
    jaccard_similarity,
    dot_similarity,
    get_measure,
    pairwise_similarity_matrix,
)
from repro.similarity.types import SimilarPair
from repro.similarity.allpairs import (
    exact_all_pairs,
    exact_pair_count,
    similarity_histogram,
)
from repro.similarity.engine import (
    DEFAULT_BACKEND,
    ApssEngine,
    EngineResult,
    apss_search,
)
from repro.similarity.cache import CachedApssEngine
from repro.similarity.tiered import TieredAnswer, TieredApssEngine
from repro.similarity.streaming import (
    HistogramReducer,
    SelectionSketch,
    TopKReducer,
    iter_similarity_blocks,
    similarity_quantile,
    streaming_similarity_histogram,
    thresholds_for_edge_counts,
    top_k_pairs,
)
from repro.similarity.backends import (
    InlineShardExecutor,
    ShardExecutionError,
    available_backends,
    get_backend_class,
    iter_similarity_blocks_sharded,
    make_backend,
    reset_shared_pools,
)
from repro.similarity.partition import (
    BlockShard,
    partition_blocks,
    partition_delta_blocks,
    resolve_worker_count,
    shard_owner,
)
from repro.similarity.stealing import (
    ShardQueue,
    ShardQueueClient,
    ShardQueueDescriptor,
)

__all__ = [
    "cosine_similarity",
    "jaccard_similarity",
    "dot_similarity",
    "get_measure",
    "pairwise_similarity_matrix",
    "SimilarPair",
    "exact_all_pairs",
    "exact_pair_count",
    "similarity_histogram",
    "DEFAULT_BACKEND",
    "ApssEngine",
    "EngineResult",
    "apss_search",
    "CachedApssEngine",
    "TieredAnswer",
    "TieredApssEngine",
    "HistogramReducer",
    "SelectionSketch",
    "TopKReducer",
    "iter_similarity_blocks",
    "similarity_quantile",
    "streaming_similarity_histogram",
    "thresholds_for_edge_counts",
    "top_k_pairs",
    "available_backends",
    "get_backend_class",
    "make_backend",
    "BlockShard",
    "partition_blocks",
    "partition_delta_blocks",
    "resolve_worker_count",
    "InlineShardExecutor",
    "ShardExecutionError",
    "ShardQueue",
    "ShardQueueClient",
    "ShardQueueDescriptor",
    "shard_owner",
    "iter_similarity_blocks_sharded",
    "reset_shared_pools",
]
