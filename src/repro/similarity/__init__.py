"""Similarity measures and the exact all-pairs similarity search baseline."""

from repro.similarity.measures import (
    cosine_similarity,
    jaccard_similarity,
    dot_similarity,
    get_measure,
    pairwise_similarity_matrix,
)
from repro.similarity.allpairs import (
    SimilarPair,
    exact_all_pairs,
    exact_pair_count,
    similarity_histogram,
)

__all__ = [
    "cosine_similarity",
    "jaccard_similarity",
    "dot_similarity",
    "get_measure",
    "pairwise_similarity_matrix",
    "SimilarPair",
    "exact_all_pairs",
    "exact_pair_count",
    "similarity_histogram",
]
