"""The unified all-pairs similarity search engine.

``ApssEngine`` is the single entry point every caller — the exact baselines,
the thresholded-graph builders, the interactive session and the benchmark
harnesses — goes through to answer "which pairs meet this threshold?".  The
actual strategy is a pluggable backend chosen by name from the registry in
:mod:`repro.similarity.backends`, so scaling work (sharding, caching, async
dispatch) has exactly one seam to extend.

    >>> from repro.similarity.engine import ApssEngine
    >>> engine = ApssEngine()                       # exact-blocked default
    >>> result = engine.search(dataset, 0.8)
    >>> result.pair_count(), result.backend
    (42, 'exact-blocked')
    >>> engine.search(dataset, 0.8, backend="bayeslsh").exact
    False
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.vectors import VectorDataset
from repro.similarity.backends import available_backends, make_backend
from repro.similarity.types import SimilarPair
from repro.utils.timers import Stopwatch

__all__ = ["EngineResult", "ApssEngine", "apss_search", "DEFAULT_BACKEND"]

#: Backend used when callers do not ask for one explicitly.  Exact and fast.
DEFAULT_BACKEND = "exact-blocked"


@dataclass
class EngineResult:
    """Outcome of one engine search.

    ``n_candidates``/``n_pruned`` describe how much work the backend did
    (scored pairs vs. pairs discarded without a full similarity
    computation); ``details`` carries backend-specific extras such as the
    raw :class:`~repro.lsh.bayeslsh.ApssResult`.
    """

    backend: str
    measure: str
    threshold: float
    n_rows: int
    pairs: list[SimilarPair]
    exact: bool
    seconds: float
    n_candidates: int = 0
    n_pruned: int = 0
    details: dict = field(default_factory=dict)

    def pair_count(self) -> int:
        """How many pairs met the threshold."""
        return len(self.pairs)

    def pair_set(self) -> set[tuple[int, int]]:
        """The unordered pair ids, for set comparisons across backends."""
        return {(p.first, p.second) for p in self.pairs}

    def similarities(self) -> dict[tuple[int, int], float]:
        """Mapping ``(i, j) -> similarity`` for parity checks."""
        return {(p.first, p.second): p.similarity for p in self.pairs}

    def count_at(self, threshold: float) -> int:
        """Pairs at or above a (higher) threshold, reusing this search."""
        return sum(1 for p in self.pairs if p.similarity >= threshold)


class ApssEngine:
    """Backend-pluggable all-pairs similarity search.

    Parameters
    ----------
    backend:
        Default backend name (see :func:`available_backends`).
    **backend_options:
        Constructor options for the default backend (e.g. ``block_rows`` for
        ``exact-blocked`` or ``n_hashes`` for ``bayeslsh``).  They apply only
        when a search actually uses the default backend.
    """

    def __init__(self, backend: str = DEFAULT_BACKEND, **backend_options) -> None:
        self.backend = backend
        self.backend_options = dict(backend_options)
        #: How many kernel searches this engine has dispatched.  Cache layers
        #: (sweep cache, persistent store) are audited against this counter:
        #: a probe served from memory, store or delta must not bump it.
        self.search_calls = 0
        # Fail fast on typos: instantiating validates name and options.
        make_backend(backend, **self.backend_options)

    @staticmethod
    def available_backends() -> list[str]:
        """Sorted names of every registered backend."""
        return available_backends()

    def make_backend(self, backend: str | None = None, **options):
        """Instantiate a backend, merging engine defaults when applicable."""
        name = backend or self.backend
        merged = dict(self.backend_options) if name == self.backend else {}
        merged.update(options)
        return make_backend(name, **merged)

    def search(self, dataset: VectorDataset, threshold: float,
               measure: str = "cosine", backend: str | None = None,
               **options) -> EngineResult:
        """Find every pair of *dataset* rows with similarity >= *threshold*.

        Per-call ``options`` are forwarded to the backend constructor and
        override the engine-level defaults.
        """
        impl = self.make_backend(backend, **options)
        impl.check_measure(measure)
        self.search_calls += 1
        watch = Stopwatch()
        watch.start()
        output = impl.search(dataset, float(threshold), measure)
        seconds = watch.stop()
        return EngineResult(
            backend=impl.name, measure=measure, threshold=float(threshold),
            n_rows=dataset.n_rows, pairs=output.pairs, exact=impl.exact,
            seconds=seconds, n_candidates=output.n_candidates,
            n_pruned=output.n_pruned, details=output.details)

    def iter_similarity_blocks(self, dataset: VectorDataset,
                               measure: str = "cosine", *,
                               block_rows: int | None = None,
                               memory_budget_mb: float | None = None):
        """Stream ``(row_range, block)`` dense similarity slabs of *dataset*.

        The streaming substrate behind the ``exact-blocked`` kernel (see
        :func:`repro.similarity.streaming.iter_similarity_blocks`): each slab
        holds the block's similarities against every dataset row, and at most
        one slab is alive at a time.  When this engine's default backend is
        ``exact-blocked`` or ``sharded-blocked``, its ``block_rows``/
        ``memory_budget_mb`` options seed the defaults here, so consumers
        inherit the engine's budget — and a ``sharded-blocked`` engine streams
        its slabs through the multi-process merge path
        (:func:`repro.similarity.backends.sharded.iter_similarity_blocks_sharded`),
        which yields the identical slabs in the identical row order.
        """
        from repro.similarity.streaming import (
            DEFAULT_MEMORY_BUDGET_MB, iter_similarity_blocks)

        defaults = (self.backend_options
                    if self.backend in ("exact-blocked", "sharded-blocked")
                    else {})
        if block_rows is None:
            block_rows = defaults.get("block_rows")
        if memory_budget_mb is None:
            memory_budget_mb = defaults.get("memory_budget_mb",
                                            DEFAULT_MEMORY_BUDGET_MB)
        if self.backend == "sharded-blocked":
            from repro.similarity.backends.sharded import (
                iter_similarity_blocks_sharded)
            return iter_similarity_blocks_sharded(
                dataset, measure, block_rows=block_rows,
                memory_budget_mb=memory_budget_mb,
                n_workers=defaults.get("n_workers"),
                executor_factory=defaults.get("executor_factory"),
                use_shared_memory=defaults.get("use_shared_memory", True),
                borrow_slabs=defaults.get("borrow_slabs", True),
                pin_workers=defaults.get("pin_workers", False))
        return iter_similarity_blocks(dataset, measure, block_rows=block_rows,
                                      memory_budget_mb=memory_budget_mb)


def apss_search(dataset: VectorDataset, threshold: float,
                measure: str = "cosine", backend: str = DEFAULT_BACKEND,
                **options) -> EngineResult:
    """One-shot convenience wrapper around :meth:`ApssEngine.search`."""
    return ApssEngine(backend, **options).search(dataset, threshold, measure)
