"""Streaming similarity substrate: blocked slabs and bounded-memory reducers.

The blocked Gram kernel behind the ``exact-blocked`` backend is exposed here
as a generator, :func:`iter_similarity_blocks`, yielding one dense
``(block_rows, n_rows)`` similarity slab at a time under a configurable
memory budget.  On top of it live streaming reducers that answer the
questions the library used to answer by materialising the full ``n x n``
similarity matrix:

* :func:`streaming_similarity_histogram` — histogram of all pairwise
  similarities (Figure 3.18) in two slab passes;
* :func:`thresholds_for_edge_counts` / :func:`threshold_for_edge_count` /
  :func:`similarity_quantile` — exact rank selection over the upper-triangle
  similarity distribution (the Chapter 3 "threshold for |E_i| = 2^i N"
  machinery) in two slab passes for *any* number of targets;
* :func:`top_k_pairs` — the ``k`` most similar pairs with a bounded buffer.

Peak memory of every reducer is O(block) + O(output), never O(n^2): the only
quadratic cost is compute, which is exactly the trade PLASMA-HD wants for
interactive probing of datasets too large to materialise.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np
from scipy import sparse

from repro.datasets.vectors import VectorDataset
from repro.similarity.types import SimilarPair

__all__ = [
    "STREAMING_MEASURES",
    "resolve_block_rows",
    "prepared_csr",
    "compute_block_slab",
    "iter_similarity_blocks",
    "streaming_similarity_histogram",
    "thresholds_for_edge_counts",
    "threshold_for_edge_count",
    "similarity_quantile",
    "top_k_pairs",
    "HistogramReducer",
    "TopKReducer",
    "SelectionSketch",
]

#: Measures the blocked kernel can evaluate as a sparse matrix product.
STREAMING_MEASURES = ("cosine", "jaccard", "dot")

#: Default scratch budget for one slab, in megabytes.
DEFAULT_MEMORY_BUDGET_MB = 64.0

#: Bin resolution of the two-pass rank-selection sketch.
DEFAULT_SELECTION_BINS = 4096


def resolve_block_rows(n_rows: int, block_rows: int | None = None,
                       memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB) -> int:
    """Rows per slab so one block's scratch fits *memory_budget_mb*.

    The budget is a hard cap: one block densifies to ``block_rows x n_rows``
    float64s and the kernel plus a downstream reducer keep roughly eight
    slab-sized allocations alive (sparse product, densified slab, jaccard
    union, triangle mask, extracted values, bin indices, scratch), so
    ``block_rows`` is floored at one row rather than any fixed minimum.  The
    only way to exceed the budget is the unavoidable one: a single row's
    slab (``8 * n_rows`` bytes) already being larger than it.
    """
    if n_rows <= 0:
        return 1
    if block_rows is not None:
        if block_rows <= 0:
            raise ValueError("block_rows must be positive")
        return min(block_rows, n_rows)
    if memory_budget_mb <= 0:
        raise ValueError("memory_budget_mb must be positive")
    budget_bytes = memory_budget_mb * 1024 * 1024
    rows = int(budget_bytes // (8 * 8 * n_rows))
    return max(1, min(n_rows, rows))


def prepared_csr(dataset: VectorDataset, measure: str) -> sparse.csr_matrix:
    """Wrap the dataset (zero-copy) in CSR form, pre-scaled for *measure*."""
    matrix = sparse.csr_matrix(
        (dataset.data, dataset.indices, dataset.indptr),
        shape=(dataset.n_rows, dataset.n_features), copy=False)
    if measure == "cosine":
        row_sq = np.asarray(matrix.multiply(matrix).sum(axis=1)).ravel()
        norms = np.sqrt(row_sq)
        scale = np.where(norms > 0, 1.0 / np.where(norms > 0, norms, 1.0), 1.0)
        data = matrix.data * np.repeat(scale, np.diff(dataset.indptr))
        matrix = sparse.csr_matrix(
            (data, dataset.indices, dataset.indptr),
            shape=matrix.shape, copy=False)
    elif measure == "jaccard":
        matrix = sparse.csr_matrix(
            (np.ones_like(dataset.data), dataset.indices, dataset.indptr),
            shape=matrix.shape, copy=False)
    return matrix


def compute_block_slab(matrix: sparse.csr_matrix, transposed: sparse.csc_matrix,
                       sizes: np.ndarray, start: int, stop: int, measure: str,
                       columns_from: int = 0) -> np.ndarray:
    """Dense similarity slab of rows ``[start, stop)`` vs columns ``[columns_from, n)``.

    The single place the blocked Gram kernel is evaluated: *matrix* and
    *transposed* come from :func:`prepared_csr` (plus ``.T.tocsc()``), *sizes*
    is the per-row non-zero count used by the jaccard union.  The sharded
    backend's workers call this with ``columns_from=start`` so a search shard
    only scores the upper-triangle region it will extract pairs from; the
    streaming path keeps ``columns_from=0`` so slabs stay full-width.

    Each output cell is an independent sparse row-column dot product, so
    restricting the column range yields bitwise-identical values to slicing a
    full-width slab — shard boundaries cannot perturb parity.
    """
    cols = transposed if columns_from == 0 else transposed[:, columns_from:]
    slab = (matrix[start:stop] @ cols).toarray()
    if measure == "jaccard":
        union = sizes[start:stop, None] + sizes[None, columns_from:] - slab
        with np.errstate(invalid="ignore", divide="ignore"):
            slab = np.where(union > 0, slab / np.where(union > 0, union, 1.0), 0.0)
    elif measure == "cosine":
        np.clip(slab, -1.0, 1.0, out=slab)
    return slab


def iter_similarity_blocks(dataset: VectorDataset, measure: str = "cosine", *,
                           block_rows: int | None = None,
                           memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
                           ) -> Iterator[tuple[range, np.ndarray]]:
    """Yield ``(row_range, block)`` dense similarity slabs, one block at a time.

    ``block`` is the dense ``(len(row_range), n_rows)`` matrix of similarities
    between the block's rows and *every* dataset row, computed by one sparse
    matrix product.  Concatenating the blocks reproduces the full similarity
    matrix — but no more than one slab is ever alive, so peak memory follows
    *memory_budget_mb* instead of ``n^2``.

    Cosine slabs are clipped to ``[-1, 1]`` (matching the dense
    :func:`~repro.similarity.measures.pairwise_similarity_matrix`); the
    diagonal entries are the kernel's self-similarities, i.e. zero rows score
    0.0 against themselves.
    """
    if measure not in STREAMING_MEASURES:
        raise ValueError(f"unsupported streaming measure {measure!r}; "
                         f"supported: {list(STREAMING_MEASURES)}")
    n = dataset.n_rows
    if n == 0:
        return
    matrix = prepared_csr(dataset, measure)
    transposed = matrix.T.tocsc()
    sizes = np.diff(dataset.indptr).astype(np.float64)
    rows_per_block = resolve_block_rows(n, block_rows, memory_budget_mb)
    for start in range(0, n, rows_per_block):
        stop = min(start + rows_per_block, n)
        # Dense (stop-start, n) slab: implicit zeros become explicit 0.0
        # similarities, which keeps thresholds <= 0 exact as well.
        yield range(start, stop), compute_block_slab(
            matrix, transposed, sizes, start, stop, measure)


def _iter_upper_values(dataset: VectorDataset, measure: str,
                       block_rows: int | None,
                       memory_budget_mb: float) -> Iterator[np.ndarray]:
    """Yield the strict-upper-triangle similarities of each slab, flattened."""
    for rows, slab in iter_similarity_blocks(
            dataset, measure, block_rows=block_rows,
            memory_budget_mb=memory_budget_mb):
        row_ids = np.arange(rows.start, rows.stop)
        keep = np.arange(slab.shape[1])[None, :] > row_ids[:, None]
        yield slab[keep]


# --------------------------------------------------------------------- #
# Mergeable reducer state
#
# Each reducer below consumes streamed upper-triangle similarity values
# incrementally and exposes the same three-method contract:
#
#   * ``update(...)``     — fold in one slab's worth of values;
#   * ``merge(other)``    — fold in another reducer's accumulated state
#                           (commutative, so delta passes and shard-local
#                           reducers combine in any order);
#   * ``state()`` / ``from_state()`` — a plain dict of numpy arrays and
#                           scalars, the exact payload the persistent
#                           :class:`repro.store.SimilarityStore` writes.
#
# This is what makes an append O(new x total): the delta pass feeds only the
# new rows' values into a reducer restored from stored state, instead of
# re-streaming every pair.
# --------------------------------------------------------------------- #


class HistogramReducer:
    """Mergeable fixed-edge histogram of pairwise similarity values."""

    def __init__(self, edges) -> None:
        self.edges = np.asarray(edges, dtype=float)
        if self.edges.ndim != 1 or len(self.edges) < 2:
            raise ValueError("edges must be a 1-D array of at least 2 edges")
        self.counts = np.zeros(len(self.edges) - 1, dtype=np.int64)

    def update(self, values: np.ndarray) -> None:
        """Fold one slab's worth of similarity values into the counts."""
        if len(values):
            slab_counts, _ = np.histogram(values, bins=self.edges)
            self.counts += slab_counts

    def merge(self, other: "HistogramReducer") -> None:
        """Fold another histogram's counts in (commutative; same edges only)."""
        if not np.array_equal(self.edges, other.edges):
            raise ValueError("cannot merge histograms with different edges")
        self.counts += other.counts

    def result(self) -> tuple[np.ndarray, np.ndarray]:
        """``(counts, edges)`` in the ``np.histogram`` convention."""
        return self.counts.copy(), self.edges.copy()

    def state(self) -> dict:
        """The persistable payload (plain arrays) the store writes."""
        return {"edges": self.edges.copy(), "counts": self.counts.copy()}

    @classmethod
    def from_state(cls, state: dict) -> "HistogramReducer":
        """Rebuild a reducer from a :meth:`state` payload."""
        reducer = cls(np.asarray(state["edges"], dtype=float))
        counts = np.asarray(state["counts"], dtype=np.int64)
        if counts.shape != reducer.counts.shape:
            raise ValueError("histogram state counts do not match its edges")
        reducer.counts = counts.copy()
        return reducer


class TopKReducer:
    """Mergeable bounded buffer of the *k* most similar pairs.

    Ties are broken by ``(first, second)``, and merge order cannot change the
    outcome: the buffer only ever discards pairs strictly dominated by ``k``
    kept ones (pairs tied with the cutoff are retained until the final
    :meth:`pairs` sort), so the result equals sorting the union of everything
    ever fed in by ``(-similarity, first, second)`` and keeping the first *k*.
    """

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = int(k)
        self._first = np.empty(0, dtype=np.int64)
        self._second = np.empty(0, dtype=np.int64)
        self._scores = np.empty(0)
        # Conservative admission cutoff: once k pairs scoring >= c are held,
        # values strictly below c can never reach the top k.  Ties with the
        # cutoff are always admitted, which keeps merges order-insensitive.
        self._cutoff = -np.inf

    def _shrink(self, hard: bool = False) -> None:
        if not self.k:
            self._first = self._first[:0]
            self._second = self._second[:0]
            self._scores = self._scores[:0]
            return
        if not hard and len(self._scores) <= max(4 * self.k, 4096):
            return
        order = np.lexsort((self._second, self._first, -self._scores))
        if not hard and len(order) > self.k:
            # Keep every pair tied with the k-th score: merges may still
            # reorder ties, so only strictly dominated pairs are dropped.
            cutoff = float(self._scores[order[self.k - 1]])
            self._cutoff = max(self._cutoff, cutoff)
            keep = order[self._scores[order] >= cutoff]
        else:
            keep = order[:self.k]
            if len(keep) == self.k:
                self._cutoff = max(self._cutoff,
                                   float(self._scores[keep].min()))
        self._first = self._first[keep]
        self._second = self._second[keep]
        self._scores = self._scores[keep]

    def update(self, first: np.ndarray, second: np.ndarray,
               scores: np.ndarray) -> None:
        """Offer candidate pairs; those below the admission cutoff are dropped."""
        if not len(scores) or not self.k:
            return
        first = np.asarray(first, np.int64)
        second = np.asarray(second, np.int64)
        scores = np.asarray(scores, float)
        if self._cutoff > -np.inf:
            admit = scores >= self._cutoff
            first, second, scores = first[admit], second[admit], scores[admit]
            if not len(scores):
                return
        self._first = np.concatenate([self._first, first])
        self._second = np.concatenate([self._second, second])
        self._scores = np.concatenate([self._scores, scores])
        self._shrink()

    def update_slab(self, rows: range, slab: np.ndarray) -> None:
        """Fold in one ``(row_range, slab)`` from a similarity block stream.

        Only strict-upper-triangle cells (column > row) are consumed, and
        cells below the admission cutoff are masked *before* extraction, so
        a warmed-up reducer touches only the handful of candidate cells per
        slab rather than materialising every upper-triangle index.
        """
        if not self.k:
            return
        row_ids = np.arange(rows.start, rows.stop)
        keep = np.arange(slab.shape[1])[None, :] > row_ids[:, None]
        if self._cutoff > -np.inf:
            keep &= slab >= self._cutoff
        local_i, local_j = np.nonzero(keep)
        if local_i.size:
            self.update(row_ids[local_i], local_j, slab[local_i, local_j])

    def merge(self, other: "TopKReducer") -> None:
        """Fold another reducer's retained pairs in (commutative; same k)."""
        if other.k != self.k:
            raise ValueError("cannot merge top-k reducers with different k")
        self.update(other._first, other._second, other._scores)

    def pairs(self) -> list[SimilarPair]:
        """The top-*k* pairs, descending, ties broken by ``(first, second)``."""
        self._shrink(hard=True)
        return [SimilarPair(int(i), int(j), float(v))
                for i, j, v in zip(self._first.tolist(), self._second.tolist(),
                                   self._scores.tolist())]

    def state(self) -> dict:
        """The persistable payload: exactly the final top-k pair arrays."""
        self._shrink(hard=True)
        return {"k": self.k, "first": self._first.copy(),
                "second": self._second.copy(), "scores": self._scores.copy()}

    @classmethod
    def from_state(cls, state: dict) -> "TopKReducer":
        """Rebuild a reducer from a :meth:`state` payload."""
        reducer = cls(int(state["k"]))
        reducer.update(np.asarray(state["first"], np.int64),
                       np.asarray(state["second"], np.int64),
                       np.asarray(state["scores"], float))
        return reducer


class SelectionSketch:
    """Mergeable pass-one state of the rank-selection machinery.

    Accumulates per-bucket counts over the a-priori measure range (see
    :func:`_selection_edges`) plus the observed value extremes — everything
    :func:`thresholds_for_edge_counts` learns in its first slab pass.  The
    sketch answers *bounded* rank queries by itself
    (:meth:`approx_threshold_for_edge_count`, within one bucket width) and
    seeds the exact refinement passes without re-streaming old data.
    """

    def __init__(self, edges) -> None:
        self.edges = np.asarray(edges, dtype=float)
        if self.edges.ndim != 1 or len(self.edges) < 2:
            raise ValueError("edges must be a 1-D array of at least 2 edges")
        self.counts = np.zeros(len(self.edges) - 1, dtype=np.int64)
        self.lowest = np.inf
        self.highest = -np.inf

    @classmethod
    def for_measure(cls, dataset: VectorDataset, measure: str,
                    n_bins: int = DEFAULT_SELECTION_BINS) -> "SelectionSketch":
        """A sketch whose edges a-priori cover every value of *measure*."""
        return cls(_selection_edges(dataset, measure, n_bins))

    @property
    def total(self) -> int:
        """How many values have been accumulated."""
        return int(self.counts.sum())

    def update(self, values: np.ndarray) -> None:
        """Fold one slab's worth of values into the bucket counts."""
        if not len(values):
            return
        self.lowest = min(self.lowest, float(values.min()))
        self.highest = max(self.highest, float(values.max()))
        self.counts += np.bincount(_bin_of(values, self.edges),
                                   minlength=len(self.counts))

    def merge(self, other: "SelectionSketch") -> None:
        """Fold another sketch's counts and extremes in (commutative)."""
        if not np.array_equal(self.edges, other.edges):
            raise ValueError("cannot merge selection sketches with different "
                             "edges")
        self.counts += other.counts
        self.lowest = min(self.lowest, other.lowest)
        self.highest = max(self.highest, other.highest)

    def bucket_of_rank(self, rank: int) -> int:
        """Bucket holding the *rank*-th largest value (1 = largest)."""
        if not 1 <= rank <= self.total:
            raise ValueError(f"rank {rank} out of range for {self.total} "
                             f"accumulated values")
        suffix = np.cumsum(self.counts[::-1])[::-1]
        return int(np.max(np.nonzero(suffix >= rank)[0]))

    def approx_threshold_for_edge_count(self, target: int) -> float:
        """The *target*-th largest value, within one bucket width."""
        if target <= 0:
            return self.highest + 1.0
        if target >= self.total:
            return self.lowest
        return float(self.edges[self.bucket_of_rank(target)])

    def state(self) -> dict:
        """The persistable payload (plain arrays + scalars) the store writes."""
        return {"edges": self.edges.copy(), "counts": self.counts.copy(),
                "lowest": float(self.lowest), "highest": float(self.highest)}

    @classmethod
    def from_state(cls, state: dict) -> "SelectionSketch":
        """Rebuild a sketch from a :meth:`state` payload."""
        sketch = cls(np.asarray(state["edges"], dtype=float))
        counts = np.asarray(state["counts"], dtype=np.int64)
        if counts.shape != sketch.counts.shape:
            raise ValueError("selection state counts do not match its edges")
        sketch.counts = counts.copy()
        sketch.lowest = float(state["lowest"])
        sketch.highest = float(state["highest"])
        return sketch


def streaming_similarity_histogram(dataset: VectorDataset, bins=50,
                                   measure: str = "cosine", *,
                                   block_rows: int | None = None,
                                   memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
                                   ) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of all pairwise similarities without the dense matrix.

    Matches ``np.histogram(upper_triangle, bins=bins)`` on the full matrix:
    when *bins* is an integer the first slab pass finds the value range the
    edges span, and a second pass accumulates per-slab counts against those
    shared edges.  Passing explicit bin edges skips the range pass.
    """
    n = dataset.n_rows
    if n * (n - 1) // 2 == 0:
        return np.histogram(np.empty(0), bins=bins)
    if isinstance(bins, (int, np.integer)):
        lowest, highest = np.inf, -np.inf
        for values in _iter_upper_values(dataset, measure, block_rows,
                                         memory_budget_mb):
            if values.size:
                lowest = min(lowest, float(values.min()))
                highest = max(highest, float(values.max()))
        edges = np.histogram_bin_edges(np.empty(0), bins=int(bins),
                                       range=(lowest, highest))
    else:
        edges = np.asarray(bins, dtype=float)
    reducer = HistogramReducer(edges)
    for values in _iter_upper_values(dataset, measure, block_rows,
                                     memory_budget_mb):
        reducer.update(values)
    return reducer.result()


def _selection_edges(dataset: VectorDataset, measure: str,
                     n_bins: int) -> np.ndarray:
    """A-priori bin edges covering every possible value of *measure*."""
    if measure == "cosine":
        lo, hi = -1.0, 1.0
    elif measure == "jaccard":
        lo, hi = 0.0, 1.0
    else:  # dot: Cauchy-Schwarz bound from the largest row norm
        if dataset.nnz:
            # Per-row sum of squares via cumsum differences: robust to empty
            # rows anywhere (reduceat would reject a trailing empty row's
            # out-of-range start index).
            cumulative = np.concatenate([[0.0], np.cumsum(dataset.data ** 2)])
            norms_sq = cumulative[dataset.indptr[1:]] - cumulative[dataset.indptr[:-1]]
            bound = float(norms_sq.max())
        else:
            bound = 0.0
        lo, hi = -bound - 1.0, bound + 1.0
    return np.linspace(lo, hi, n_bins + 1)


def _bin_of(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Left-closed bin assignment, identical across both selection passes."""
    return np.clip(np.searchsorted(edges, values, side="right") - 1,
                   0, len(edges) - 2)


#: Cap on the distinct values a per-bucket tally may hold before the bucket
#: is refined into sub-buckets instead (bounds pass-two memory to O(n_bins)
#: even when the whole distribution crowds into one bucket).
_MAX_TALLY_DISTINCT = 16384


def _resolve_ranks(dataset: VectorDataset, measure: str,
                   block_rows: int | None, memory_budget_mb: float,
                   n_bins: int, path: list[tuple[np.ndarray, int]],
                   ranks: list[int]) -> dict[int, float]:
    """Exact values at *ranks* (1 = largest) within one bucket's value multiset.

    *path* is the chain of ``(edges, bucket)`` refinements identifying the
    multiset: a slab value belongs when every level's :func:`_bin_of` lands
    in that level's bucket.  First try an exact (value -> multiplicity)
    tally; if the bucket holds more than ``_MAX_TALLY_DISTINCT`` distinct
    values, split it into *n_bins* sub-buckets, locate each rank's
    sub-bucket from one counting pass, and recurse.  Bucket width shrinks by
    ``n_bins`` per level, so a handful of levels reaches intervals holding
    few distinct floats and the tally path terminates.
    """

    def filtered(values: np.ndarray) -> np.ndarray:
        for edges, bucket in path:
            values = values[_bin_of(values, edges) == bucket]
        return values

    # Attempt the exact tally, aborting once it grows past the cap.
    tally: dict[float, int] = {}
    overflowed = False
    for values in _iter_upper_values(dataset, measure, block_rows,
                                     memory_budget_mb):
        unique, multiplicity = np.unique(filtered(values), return_counts=True)
        for value, count in zip(unique.tolist(), multiplicity.tolist()):
            tally[value] = tally.get(value, 0) + count
        if len(tally) > _MAX_TALLY_DISTINCT:
            overflowed = True
            break
    if not overflowed:
        unique_desc = sorted(tally, reverse=True)
        cumulative = np.cumsum([tally[v] for v in unique_desc])
        return {rank: float(unique_desc[int(np.searchsorted(cumulative, rank))])
                for rank in ranks}

    # Refine: split the current bucket and route each rank to its sub-bucket.
    parent_edges, parent_bucket = path[-1]
    sub_edges = np.linspace(parent_edges[parent_bucket],
                            parent_edges[parent_bucket + 1], n_bins + 1)
    counts = np.zeros(n_bins, dtype=np.int64)
    for values in _iter_upper_values(dataset, measure, block_rows,
                                     memory_budget_mb):
        selected = filtered(values)
        if selected.size:
            counts += np.bincount(_bin_of(selected, sub_edges),
                                  minlength=n_bins)
    suffix = np.zeros(n_bins + 1, dtype=np.int64)
    suffix[:n_bins] = np.cumsum(counts[::-1])[::-1]

    grouped: dict[int, list[int]] = {}
    for rank in ranks:
        bucket = int(np.max(np.nonzero(suffix[:n_bins] >= rank)[0]))
        grouped.setdefault(bucket, []).append(rank)
    results: dict[int, float] = {}
    for bucket, bucket_ranks in grouped.items():
        offset = int(suffix[bucket + 1])
        resolved = _resolve_ranks(dataset, measure, block_rows,
                                  memory_budget_mb, n_bins,
                                  path + [(sub_edges, bucket)],
                                  [rank - offset for rank in bucket_ranks])
        for rank in bucket_ranks:
            results[rank] = resolved[rank - offset]
    return results


def thresholds_for_edge_counts(dataset: VectorDataset, targets,
                               measure: str = "cosine", *,
                               block_rows: int | None = None,
                               memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
                               n_bins: int = DEFAULT_SELECTION_BINS) -> list[float]:
    """The similarity threshold admitting (approximately) each target edge count.

    For target ``k`` this is the ``k``-th largest upper-triangle similarity —
    exactly what the dense
    :func:`~repro.graphs.similarity_graph.threshold_for_edge_count` computes
    with ``np.partition`` — found without the matrix in a handful of slab
    passes shared by *all* targets: pass one bins every value into *n_bins*
    a-priori buckets, locating the bucket holding each target's rank; one
    pass per hot bucket then tallies its distinct values (with recursive
    sub-bucket refinement if too many distinct values crowd into it) and
    reads the exact order statistic off the merged counts.

    Targets ``<= 0`` map to ``max + 1.0`` (no pairs survive) and targets at
    or beyond the number of distinct pairs map to the global minimum (every
    pair survives), mirroring the dense helper.
    """
    n = dataset.n_rows
    total = n * (n - 1) // 2
    if total == 0:
        raise ValueError("need at least two rows to threshold by edge count")
    targets = [int(t) for t in targets]
    if not targets:
        return []

    sketch = SelectionSketch.for_measure(dataset, measure, n_bins)
    for values in _iter_upper_values(dataset, measure, block_rows,
                                     memory_budget_mb):
        sketch.update(values)
    edges = sketch.edges
    lowest, highest = sketch.lowest, sketch.highest

    # suffix[b] = number of values in bucket b or any higher bucket.
    suffix = np.zeros(n_bins + 1, dtype=np.int64)
    suffix[:n_bins] = np.cumsum(sketch.counts[::-1])[::-1]

    results: dict[int, float] = {}
    needed: dict[int, list[int]] = {}
    seen: set[int] = set()
    for target in targets:
        if target in seen:
            continue
        seen.add(target)
        if target <= 0:
            results[target] = highest + 1.0
        elif target >= total:
            results[target] = lowest
        else:
            bucket = int(np.max(np.nonzero(suffix[:n_bins] >= target)[0]))
            needed.setdefault(bucket, []).append(target)

    # Resolve each hot bucket's exact order statistics: a tally of distinct
    # values when the bucket is tame (heavy ties, e.g. the 0.0 bucket of
    # sparse data, stay cheap), recursive sub-bucket refinement when more
    # than _MAX_TALLY_DISTINCT distinct values crowd into it — so pass-two
    # memory stays O(n_bins) even for adversarially clustered distributions.
    for bucket, bucket_targets in needed.items():
        offset = int(suffix[bucket + 1])
        resolved = _resolve_ranks(dataset, measure, block_rows,
                                  memory_budget_mb, n_bins,
                                  [(edges, bucket)],
                                  [target - offset for target in bucket_targets])
        for target in bucket_targets:
            results[target] = resolved[target - offset]

    return [results[target] for target in targets]


def threshold_for_edge_count(dataset: VectorDataset, target_edges: int,
                             measure: str = "cosine", **kwargs) -> float:
    """Single-target convenience wrapper over :func:`thresholds_for_edge_counts`."""
    return thresholds_for_edge_counts(dataset, [int(target_edges)],
                                      measure=measure, **kwargs)[0]


def similarity_quantile(dataset: VectorDataset, q: float,
                        measure: str = "cosine", **kwargs) -> float:
    """Nearest-rank *q*-quantile of the pairwise similarity distribution.

    ``q=0`` is the minimum pairwise similarity, ``q=1`` the maximum, and in
    between the smallest value with at least ``q * total`` values at or below
    it — computed by the same two-pass selection as
    :func:`thresholds_for_edge_counts`, never holding the matrix.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    n = dataset.n_rows
    total = n * (n - 1) // 2
    if total == 0:
        raise ValueError("need at least two rows for a similarity quantile")
    rank_from_bottom = min(total, max(1, int(np.ceil(q * total))))
    rank_from_top = total - rank_from_bottom + 1
    return thresholds_for_edge_counts(dataset, [rank_from_top],
                                      measure=measure, **kwargs)[0]


def top_k_pairs(dataset: VectorDataset, k: int, measure: str = "cosine", *,
                block_rows: int | None = None,
                memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
                ) -> list[SimilarPair]:
    """The *k* most similar pairs, descending, with an O(k + block) buffer.

    Ties are broken deterministically by ``(first, second)`` so the result
    equals sorting the full upper triangle by ``(-similarity, i, j)`` and
    taking the first *k* entries.
    """
    n = dataset.n_rows
    k = min(int(k), n * (n - 1) // 2)
    if k <= 0:
        return []
    reducer = TopKReducer(k)
    for rows, slab in iter_similarity_blocks(
            dataset, measure, block_rows=block_rows,
            memory_budget_mb=memory_budget_mb):
        reducer.update_slab(rows, slab)
    return reducer.pairs()
