"""Sharded multi-process APSS backend over the blocked Gram kernel.

``sharded-blocked`` partitions the upper-triangular block grid (see
:mod:`repro.similarity.partition`) and fans the shards out over a
``concurrent.futures`` executor — a ``ProcessPoolExecutor`` by default, an
in-process :class:`InlineShardExecutor` when ``n_workers=1`` (or for
debugging), or anything a test injects via ``executor_factory``.  Each worker
runs the same slab kernel as ``exact-blocked``
(:func:`repro.similarity.streaming.compute_block_slab`) restricted to the
columns its shard actually extracts pairs from, so a 4-worker pass does about
half the scalar work of the full-width kernel on top of the parallelism.

Correctness under nondeterministic scheduling is the contract:

* results are **order-canonical** — merged pairs are sorted by
  ``(first, second)``, so the pair list is byte-identical no matter which
  shard finishes first, and sweep caches keyed on the output stay coherent;
* a shard that raises mid-stream **surfaces** as
  :class:`ShardExecutionError` (outstanding shards are cancelled) — never a
  hang, never silently dropped pairs;
* everything a worker needs travels in a picklable payload of CSR arrays and
  the worker functions are module-level, so spawn-start platforms (Windows,
  macOS) work identically to fork.

The streamed-slab contract is sharded too: :func:`iter_similarity_blocks_sharded`
computes full-width slabs in worker processes and yields them in row order
behind a bounded reorder window, so ``CachedApssEngine``, the streaming
reducers and every graph/growth/LAM consumer work unchanged.
"""

from __future__ import annotations

import atexit
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Iterator

import numpy as np

from repro.datasets.vectors import VectorDataset
from repro.similarity.backends.base import (ApssBackend, BackendOutput,
                                            register_backend)
from repro.similarity.partition import (BlockShard, block_ranges,
                                        partition_blocks, resolve_worker_count)
from repro.similarity.streaming import (DEFAULT_MEMORY_BUDGET_MB,
                                        STREAMING_MEASURES, compute_block_slab,
                                        prepared_csr, resolve_block_rows)
from repro.similarity.types import SimilarPair

__all__ = [
    "ShardExecutionError",
    "InjectedShardFault",
    "InlineShardExecutor",
    "ShardedBlockedBackend",
    "iter_similarity_blocks_sharded",
]


class ShardExecutionError(RuntimeError):
    """A shard (or streamed block) failed; carries which unit died and why."""

    def __init__(self, message: str, shard_id: int | None = None,
                 block: tuple[int, int] | None = None) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.block = block


class InjectedShardFault(RuntimeError):
    """Raised inside a worker by the fault-injection hook (test harness)."""


class InlineShardExecutor:
    """Executor running every task synchronously at ``submit`` time.

    The ``n_workers=1`` fast path and the debugging escape hatch: no
    processes, no pickling, exceptions carry full in-process tracebacks.
    Implements the subset of the ``concurrent.futures.Executor`` protocol the
    backend uses (``submit``/``shutdown``).
    """

    def submit(self, fn, /, *args, **kwargs) -> Future:
        future: Future = Future()
        if future.set_running_or_notify_cancel():
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:  # noqa: BLE001 - relayed via future
                future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        pass


# --------------------------------------------------------------------- #
# Worker side: module-level, picklable, spawn-safe
# --------------------------------------------------------------------- #

def _shard_payload(dataset: VectorDataset, measure: str) -> tuple:
    """Everything a worker needs, as plain arrays (spawn/pickle friendly).

    The dataset fingerprint is computed once here, parent-side, and rides
    along as the workers' preparation-memo key.
    """
    return (dataset.fingerprint(), dataset.indptr, dataset.indices,
            dataset.data, dataset.n_features, measure)


#: Per-process memo of the last prepared (scaled CSR, CSC transpose, sizes):
#: a stream submits one task per block, so without this every block would
#: re-run the O(nnz) scaling + transpose.  One entry is enough — a worker
#: serves one (dataset, measure) at a time — and keeps memory bounded.
_PREP_MEMO: dict[tuple, tuple] = {}


def _prepare(payload: tuple):
    fingerprint, indptr, indices, data, n_features, measure = payload
    key = (fingerprint, measure)
    prepared = _PREP_MEMO.get(key)
    if prepared is None:
        dataset = VectorDataset(indptr, indices, data, n_features)
        matrix = prepared_csr(dataset, measure)
        prepared = (matrix, matrix.T.tocsc(),
                    np.diff(indptr).astype(np.float64), measure)
        _PREP_MEMO.clear()
        _PREP_MEMO[key] = prepared
    return prepared


def _search_shard(payload: tuple, shard: BlockShard, threshold: float,
                  fail: bool = False) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Score one shard's blocks; return ``(i, j, similarity)`` arrays.

    Only columns ``j >= start`` are computed per block (the strict upper
    triangle is all the search keeps), which halves the average scalar work
    versus the full-width kernel.  With ``fail=True`` the worker raises
    :class:`InjectedShardFault` before its final block — mid-stream, after
    real work happened — so fault tests exercise the genuine error path
    through real process boundaries.
    """
    matrix, transposed, sizes, measure = _prepare(payload)
    n = len(sizes)
    out_i: list[np.ndarray] = []
    out_j: list[np.ndarray] = []
    out_v: list[np.ndarray] = []
    for index, (start, stop) in enumerate(shard.blocks):
        if fail and index == len(shard.blocks) - 1:
            raise InjectedShardFault(
                f"injected fault in shard {shard.shard_id} at block "
                f"[{start}, {stop})")
        slab = compute_block_slab(matrix, transposed, sizes, start, stop,
                                  measure, columns_from=start)
        row_ids = np.arange(start, stop)
        col_ids = np.arange(start, n)
        keep = (slab >= threshold) & (col_ids[None, :] > row_ids[:, None])
        local_i, local_j = np.nonzero(keep)
        out_i.append(row_ids[local_i])
        out_j.append(col_ids[local_j])
        out_v.append(slab[local_i, local_j])
    if not out_i:
        empty = np.empty(0)
        return empty.astype(np.int64), empty.astype(np.int64), empty
    return (np.concatenate(out_i), np.concatenate(out_j),
            np.concatenate(out_v))


def _stream_block(payload: tuple, start: int, stop: int,
                  fail: bool = False) -> np.ndarray:
    """Compute one full-width similarity slab (the streaming contract)."""
    if fail:
        raise InjectedShardFault(
            f"injected fault streaming block [{start}, {stop})")
    matrix, transposed, sizes, measure = _prepare(payload)
    return compute_block_slab(matrix, transposed, sizes, start, stop, measure)


# --------------------------------------------------------------------- #
# Shared process pools (amortise pool start-up across searches)
# --------------------------------------------------------------------- #

_POOLS: dict[int, ProcessPoolExecutor] = {}


def _shared_pool(n_workers: int) -> ProcessPoolExecutor:
    pool = _POOLS.get(n_workers)
    if pool is not None and getattr(pool, "_broken", False):
        # A worker died abnormally (OOM kill, segfault): the pool is
        # permanently broken.  Evict and rebuild so one transient fault
        # doesn't condemn every later search at this worker count.
        pool.shutdown(wait=False, cancel_futures=True)
        pool = None
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=n_workers)
        _POOLS[n_workers] = pool
    return pool


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover - interpreter teardown
    for pool in _POOLS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _POOLS.clear()


def _resolve_executor(n_workers: int, executor_factory):
    """Return ``(executor, owned)``; *owned* executors are shut down per call."""
    if executor_factory is not None:
        return executor_factory(n_workers), True
    if n_workers == 1:
        return InlineShardExecutor(), False
    return _shared_pool(n_workers), False


def _gather(ordered_futures, *, owned_executor=None):
    """Yield results in submission order; on failure cancel the rest and raise.

    ``ordered_futures`` is an iterable of ``(tag, future)``; *tag* is either a
    :class:`BlockShard` or a ``(start, stop)`` block range and only feeds the
    error message.  Blocking on the next-in-order future (rather than
    ``as_completed``) keeps the merge canonical for free and cannot hang: a
    failed future's ``result()`` raises immediately once it is done.
    """
    pending = list(ordered_futures)
    for position, (tag, future) in enumerate(pending):
        try:
            yield future.result()
        except Exception as exc:
            for _, leftover in pending[position + 1:]:
                leftover.cancel()
            if owned_executor is not None:
                owned_executor.shutdown(wait=False, cancel_futures=True)
            if isinstance(tag, BlockShard):
                raise ShardExecutionError(
                    f"shard {tag.shard_id} failed: {exc}",
                    shard_id=tag.shard_id) from exc
            raise ShardExecutionError(
                f"streamed block [{tag[0]}, {tag[1]}) failed: {exc}",
                block=tuple(tag)) from exc


@register_backend
class ShardedBlockedBackend(ApssBackend):
    """Multi-process sharding of the exact blocked kernel.

    Parameters
    ----------
    n_workers:
        Worker processes.  Defaults to ``REPRO_APSS_WORKERS`` when set, else
        the CPU count (capped at 8).  ``1`` runs in-process — no pool, no
        pickling.
    block_rows, memory_budget_mb:
        Per-worker block sizing, with the same semantics as ``exact-blocked``:
        the budget caps the scratch memory of one slab *in each worker*, so
        total peak memory is roughly ``n_workers * memory_budget_mb``.
    shards_per_worker:
        Shards per worker (default 2): mild oversubscription so a slow shard
        does not leave the rest of the pool idle.
    partition_strategy:
        ``striped`` (default), ``contiguous`` or ``balanced``; see
        :mod:`repro.similarity.partition`.
    executor_factory:
        ``callable(n_workers) -> executor`` override used by the test harness
        (deterministic shard-order replay) and available for custom pools.
        Factory-made executors are shut down after each search.
    inject_shard_fault:
        Fault-injection hook: the shard with this id raises
        :class:`InjectedShardFault` mid-stream.  Exists so the failure path
        is testable through real process boundaries.
    """

    name = "sharded-blocked"
    exact = True
    measures = ("cosine", "jaccard", "dot")
    #: These change how the search executes, never what it returns, so sweep
    #: caches must not fragment on them (see ``CachedApssEngine._key``).
    #: ``inject_shard_fault`` is deliberately NOT here: it changes the
    #: outcome (the search raises), so a cached sweep must not swallow it.
    execution_options = ("n_workers", "shards_per_worker", "partition_strategy",
                         "executor_factory")

    def __init__(self, n_workers: int | None = None,
                 block_rows: int | None = None,
                 memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
                 shards_per_worker: int = 2,
                 partition_strategy: str = "striped",
                 executor_factory=None,
                 inject_shard_fault: int | None = None) -> None:
        if block_rows is not None and block_rows <= 0:
            raise ValueError("block_rows must be positive")
        if memory_budget_mb <= 0:
            raise ValueError("memory_budget_mb must be positive")
        if shards_per_worker < 1:
            raise ValueError("shards_per_worker must be at least 1")
        self.n_workers = resolve_worker_count(n_workers)
        self.block_rows = block_rows
        self.memory_budget_mb = float(memory_budget_mb)
        self.shards_per_worker = int(shards_per_worker)
        self.partition_strategy = partition_strategy
        self.executor_factory = executor_factory
        self.inject_shard_fault = inject_shard_fault
        # Validate eagerly so typos fail at construction, not mid-search.
        partition_blocks(2, 1, 1, strategy=partition_strategy)

    @classmethod
    def parity_variants(cls) -> list[dict]:
        """Parity-check the scheduling seams: inline, 2- and 4-worker pools."""
        return [{"n_workers": 1}, {"n_workers": 2}, {"n_workers": 4}]

    def plan(self, n_rows: int) -> list[BlockShard]:
        """The deterministic shard plan for an *n_rows* dataset."""
        rows_per_block = resolve_block_rows(n_rows, self.block_rows,
                                            self.memory_budget_mb)
        return partition_blocks(n_rows, rows_per_block,
                                self.n_workers * self.shards_per_worker,
                                strategy=self.partition_strategy)

    # ------------------------------------------------------------------ #
    def search(self, dataset: VectorDataset, threshold: float,
               measure: str = "cosine") -> BackendOutput:
        self.check_measure(measure)
        n = dataset.n_rows
        if n < 2:
            return BackendOutput(pairs=[], n_candidates=0)
        shards = self.plan(n)
        if self.inject_shard_fault is not None and not (
                0 <= self.inject_shard_fault < len(shards)):
            # A fault-injection hook that silently misses its target would
            # make fault tests vacuously green; fail loudly instead.
            raise ValueError(
                f"inject_shard_fault={self.inject_shard_fault} is out of "
                f"range: the plan for {n} rows has {len(shards)} shard(s)")
        payload = _shard_payload(dataset, measure)
        executor, owned = _resolve_executor(self.n_workers,
                                            self.executor_factory)
        try:
            futures = [
                (shard, executor.submit(
                    _search_shard, payload, shard, float(threshold),
                    shard.shard_id == self.inject_shard_fault))
                for shard in shards]
            chunks = list(_gather(futures,
                                  owned_executor=executor if owned else None))
        finally:
            if owned:
                executor.shutdown(wait=False, cancel_futures=True)
        all_i = np.concatenate([c[0] for c in chunks])
        all_j = np.concatenate([c[1] for c in chunks])
        all_v = np.concatenate([c[2] for c in chunks])
        # Canonical (first, second) order: the merged pair list is identical
        # regardless of shard layout or completion order, so parity checks
        # and cache fingerprints cannot observe the scheduler.
        order = np.lexsort((all_j, all_i))
        pairs = [SimilarPair(int(i), int(j), float(v))
                 for i, j, v in zip(all_i[order].tolist(),
                                    all_j[order].tolist(),
                                    all_v[order].tolist())]
        return BackendOutput(
            pairs=pairs, n_candidates=n * (n - 1) // 2,
            details={"n_workers": self.n_workers, "n_shards": len(shards),
                     "partition_strategy": self.partition_strategy,
                     "block_rows": resolve_block_rows(
                         n, self.block_rows, self.memory_budget_mb)})


def iter_similarity_blocks_sharded(
        dataset: VectorDataset, measure: str = "cosine", *,
        n_workers: int | None = None, block_rows: int | None = None,
        memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
        executor_factory=None, max_pending: int | None = None,
        inject_block_fault: int | None = None,
) -> Iterator[tuple[range, np.ndarray]]:
    """Sharded drop-in for :func:`repro.similarity.streaming.iter_similarity_blocks`.

    Full-width slabs are computed in worker processes but yielded strictly in
    row order: a bounded window (``max_pending``, default ``2 * n_workers``)
    of block tasks is kept in flight and the generator blocks on the
    next-in-order future, so out-of-order completions are absorbed by the
    window rather than reordering the stream.  A failed block raises
    :class:`ShardExecutionError` after every earlier block was yielded;
    blocks after the failure are cancelled.  With one worker and no injected
    executor this degrades to the plain in-process generator.
    """
    if measure not in STREAMING_MEASURES:
        raise ValueError(f"unsupported streaming measure {measure!r}; "
                         f"supported: {list(STREAMING_MEASURES)}")
    n = dataset.n_rows
    if n == 0:
        return
    n_workers = resolve_worker_count(n_workers)
    rows_per_block = resolve_block_rows(n, block_rows, memory_budget_mb)
    ranges = block_ranges(n, rows_per_block)
    if inject_block_fault is not None and not (
            0 <= inject_block_fault < len(ranges)):
        # Same loud failure as the search path: a fault hook that silently
        # misses its target makes fault tests vacuously green.
        raise ValueError(
            f"inject_block_fault={inject_block_fault} is out of range: the "
            f"stream for {n} rows has {len(ranges)} block(s)")
    if n_workers == 1 and executor_factory is None and inject_block_fault is None:
        from repro.similarity.streaming import iter_similarity_blocks
        yield from iter_similarity_blocks(dataset, measure,
                                          block_rows=rows_per_block)
        return
    window = max_pending if max_pending is not None else 2 * n_workers
    window = max(1, int(window))
    payload = _shard_payload(dataset, measure)
    executor, owned = _resolve_executor(n_workers, executor_factory)
    pending: deque[tuple[tuple[int, int], Future]] = deque()
    next_to_submit = 0
    try:
        while next_to_submit < len(ranges) or pending:
            while next_to_submit < len(ranges) and len(pending) < window:
                start, stop = ranges[next_to_submit]
                pending.append(((start, stop), executor.submit(
                    _stream_block, payload, start, stop,
                    next_to_submit == inject_block_fault)))
                next_to_submit += 1
            (start, stop), future = pending.popleft()
            slab = next(_gather([((start, stop), future)]))
            yield range(start, stop), slab
    finally:
        for _, future in pending:
            future.cancel()
        if owned:
            executor.shutdown(wait=False, cancel_futures=True)
