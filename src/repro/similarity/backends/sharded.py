"""Sharded multi-process APSS backend over the blocked Gram kernel.

``sharded-blocked`` partitions the upper-triangular block grid (see
:mod:`repro.similarity.partition`) and fans the shards out over a
``concurrent.futures`` executor — a ``ProcessPoolExecutor`` by default, an
in-process :class:`InlineShardExecutor` when ``n_workers=1`` (or for
debugging), or anything a test injects via ``executor_factory``.  Each worker
runs the same slab kernel as ``exact-blocked``
(:func:`repro.similarity.streaming.compute_block_slab`) restricted to the
columns its shard actually extracts pairs from, so a 4-worker pass does about
half the scalar work of the full-width kernel on top of the parallelism.

Transport: multi-worker passes move data through
:mod:`repro.similarity.shm` — the prepared CSR arrays are published to
shared-memory segments keyed by dataset fingerprint (workers attach instead
of unpickling a per-task payload) and streamed slabs come back through a
shared-memory ring instead of the result pipe.  The pickle payload remains
as the in-process fast path (``n_workers=1``) and the automatic fallback
when shared memory is unavailable; segment lifecycle is tied to the shared
pools (evicting or rebuilding a pool releases every published segment, as
does interpreter exit).

Correctness under nondeterministic scheduling is the contract:

* results are **order-canonical** — merged pairs are sorted by
  ``(first, second)``, so the pair list is byte-identical no matter which
  shard finishes first, and sweep caches keyed on the output stay coherent;
* a shard that raises mid-stream **surfaces** as
  :class:`ShardExecutionError` (outstanding shards are cancelled) — never a
  hang, never silently dropped pairs;
* everything a worker needs travels in a picklable payload (shared-memory
  descriptor or raw CSR arrays) and the worker functions are module-level,
  so spawn-start platforms (Windows, macOS) work identically to fork.

The streamed-slab contract is sharded too: :func:`iter_similarity_blocks_sharded`
computes full-width slabs in worker processes and yields them in row order
behind a bounded reorder window, so ``CachedApssEngine``, the streaming
reducers and every graph/growth/LAM consumer work unchanged.  The same
worker pool also serves *ingest*: :func:`run_delta_shards` fans the
``Δn x n`` append cross block of a :class:`~repro.datasets.vectors.DatasetDelta`
over the pool and merges shard-local pair chunks and reducer state (see
:class:`repro.store.delta.DeltaApssBackend`).
"""

from __future__ import annotations

import atexit
import os
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Iterator

import numpy as np

from repro.datasets.vectors import DatasetDelta, VectorDataset
from repro.similarity import shm
from repro.similarity.backends.base import (ApssBackend, BackendOutput,
                                            register_backend)
from repro.similarity.partition import (BlockShard, block_ranges,
                                        partition_blocks,
                                        partition_delta_blocks,
                                        resolve_worker_count)
from repro.similarity.streaming import (DEFAULT_MEMORY_BUDGET_MB,
                                        STREAMING_MEASURES, HistogramReducer,
                                        SelectionSketch, TopKReducer,
                                        compute_block_slab, prepared_csr,
                                        resolve_block_rows)
from repro.similarity.types import SimilarPair

__all__ = [
    "ShardExecutionError",
    "InjectedShardFault",
    "InlineShardExecutor",
    "ShardedBlockedBackend",
    "iter_similarity_blocks_sharded",
    "run_delta_shards",
    "reset_shared_pools",
]


class ShardExecutionError(RuntimeError):
    """A shard (or streamed block) failed; carries which unit died and why."""

    def __init__(self, message: str, shard_id: int | None = None,
                 block: tuple[int, int] | None = None) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.block = block


class InjectedShardFault(RuntimeError):
    """Raised inside a worker by the fault-injection hook (test harness)."""


class InlineShardExecutor:
    """Executor running every task synchronously at ``submit`` time.

    The ``n_workers=1`` fast path and the debugging escape hatch: no
    processes, no pickling, exceptions carry full in-process tracebacks.
    Implements the subset of the ``concurrent.futures.Executor`` protocol the
    backend uses (``submit``/``shutdown``).
    """

    def submit(self, fn, /, *args, **kwargs) -> Future:
        """Run *fn* immediately and return an already-resolved future."""
        future: Future = Future()
        if future.set_running_or_notify_cancel():
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:  # noqa: BLE001 - relayed via future
                future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        """No-op (nothing runs after ``submit`` returns)."""


# --------------------------------------------------------------------- #
# Worker side: module-level, picklable, spawn-safe
# --------------------------------------------------------------------- #

def _shard_payload(dataset: VectorDataset, measure: str,
                   use_shared_memory: bool) -> tuple:
    """The per-task dataset payload: a shared-memory descriptor when possible.

    With *use_shared_memory* the CSR arrays are published once (keyed by the
    dataset fingerprint, LRU-capped) and the payload shrinks to a descriptor
    of segment names; otherwise — in-process executors, unsupported
    platforms, a full ``/dev/shm`` — the arrays ride along as before.  The
    fingerprint is computed once here, parent-side, and doubles as the
    workers' preparation-memo key.
    """
    fingerprint = dataset.fingerprint()
    if use_shared_memory:
        descriptor = shm.publish_dataset(dataset, fingerprint)
        if descriptor is not None:
            return ("shm", descriptor, measure)
    return ("raw", fingerprint, dataset.indptr, dataset.indices,
            dataset.data, dataset.n_features, measure)


#: Per-process memo of the last prepared (scaled CSR, CSC transpose, sizes):
#: a stream submits one task per block, so without this every block would
#: re-run the O(nnz) scaling + transpose.  One entry is enough — a worker
#: serves one (dataset, measure) at a time — and keeps memory bounded.  For
#: shared-memory payloads the attached segments are kept in the entry so the
#: mappings outlive the attach call; they are dropped (and reclaimed by the
#: OS once unmapped) when the memo moves to the next dataset.
_PREP_MEMO: dict[tuple, tuple] = {}


def _prepare(payload: tuple):
    """Worker-side: resolve a payload into ``(csr, cscT, sizes, measure)``."""
    if payload[0] == "shm":
        _, descriptor, measure = payload
        key = (descriptor.fingerprint, measure)
        prepared = _PREP_MEMO.get(key)
        if prepared is None:
            dataset, segments = shm.attach_dataset(descriptor)
            matrix = prepared_csr(dataset, measure)
            prepared = (matrix, matrix.T.tocsc(),
                        np.diff(dataset.indptr).astype(np.float64), measure,
                        segments)
            _PREP_MEMO.clear()
            _PREP_MEMO[key] = prepared
    else:
        _, fingerprint, indptr, indices, data, n_features, measure = payload
        key = (fingerprint, measure)
        prepared = _PREP_MEMO.get(key)
        if prepared is None:
            dataset = VectorDataset(indptr, indices, data, n_features)
            matrix = prepared_csr(dataset, measure)
            prepared = (matrix, matrix.T.tocsc(),
                        np.diff(indptr).astype(np.float64), measure, None)
            _PREP_MEMO.clear()
            _PREP_MEMO[key] = prepared
    return prepared[:4]


def _search_shard(payload: tuple, shard: BlockShard, threshold: float,
                  fail: bool = False) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Score one shard's blocks; return ``(i, j, similarity)`` arrays.

    Only columns ``j >= start`` are computed per block (the strict upper
    triangle is all the search keeps), which halves the average scalar work
    versus the full-width kernel.  With ``fail=True`` the worker raises
    :class:`InjectedShardFault` before its final block — mid-stream, after
    real work happened — so fault tests exercise the genuine error path
    through real process boundaries.
    """
    matrix, transposed, sizes, measure = _prepare(payload)
    n = len(sizes)
    out_i: list[np.ndarray] = []
    out_j: list[np.ndarray] = []
    out_v: list[np.ndarray] = []
    for index, (start, stop) in enumerate(shard.blocks):
        if fail and index == len(shard.blocks) - 1:
            raise InjectedShardFault(
                f"injected fault in shard {shard.shard_id} at block "
                f"[{start}, {stop})")
        slab = compute_block_slab(matrix, transposed, sizes, start, stop,
                                  measure, columns_from=start)
        row_ids = np.arange(start, stop)
        col_ids = np.arange(start, n)
        keep = (slab >= threshold) & (col_ids[None, :] > row_ids[:, None])
        local_i, local_j = np.nonzero(keep)
        out_i.append(row_ids[local_i])
        out_j.append(col_ids[local_j])
        out_v.append(slab[local_i, local_j])
    if not out_i:
        empty = np.empty(0)
        return empty.astype(np.int64), empty.astype(np.int64), empty
    return (np.concatenate(out_i), np.concatenate(out_j),
            np.concatenate(out_v))


def _stream_block(payload: tuple, start: int, stop: int,
                  fail: bool = False, slot_name: str | None = None):
    """Compute one full-width similarity slab (the streaming contract).

    With *slot_name* the slab is written into that shared-memory ring slot
    and only its shape is returned through the result pipe; without it the
    slab itself is returned (pickled — the in-process and fallback path).
    """
    if fail:
        raise InjectedShardFault(
            f"injected fault streaming block [{start}, {stop})")
    matrix, transposed, sizes, measure = _prepare(payload)
    slab = compute_block_slab(matrix, transposed, sizes, start, stop, measure)
    if slot_name is not None:
        return shm.write_slab(slot_name, slab)
    return slab


def _make_local_reducers(reducer_specs: dict | None) -> dict:
    """Build fresh shard-local reducers from a picklable spec dict.

    Specs: ``histogram``/``selection`` map to their bin-edge arrays,
    ``top_k`` to ``k``.  Workers update these local reducers and ship their
    ``state()`` back; the parent folds the states into the caller's reducers
    through the commutative ``merge()`` seam.
    """
    reducers: dict = {}
    if not reducer_specs:
        return reducers
    if "histogram" in reducer_specs:
        reducers["histogram"] = HistogramReducer(reducer_specs["histogram"])
    if "selection" in reducer_specs:
        reducers["selection"] = SelectionSketch(reducer_specs["selection"])
    if "top_k" in reducer_specs:
        reducers["top_k"] = TopKReducer(int(reducer_specs["top_k"]))
    return reducers


def _delta_shard(payload: tuple, shard: BlockShard, threshold: float | None,
                 reducer_specs: dict | None = None, fail: bool = False):
    """Score one delta-ingest shard: appended rows vs every column ``j < row``.

    Returns ``(first, second, similarity, reducer_states)`` where the pair
    arrays hold every new pair at or above *threshold* (empty when
    *threshold* is ``None`` — the reducers-only mode) and *reducer_states*
    maps reducer kinds to their shard-local ``state()`` payloads.  Each new
    pair is visited exactly once with the smaller id first, matching
    :func:`repro.store.delta.delta_pairs`.  ``fail=True`` raises
    :class:`InjectedShardFault` before the final block, mid-stream.
    """
    matrix, transposed, sizes, measure = _prepare(payload)
    reducers = _make_local_reducers(reducer_specs)
    out_i: list[np.ndarray] = []
    out_j: list[np.ndarray] = []
    out_v: list[np.ndarray] = []
    for index, (start, stop) in enumerate(shard.blocks):
        if fail and index == len(shard.blocks) - 1:
            raise InjectedShardFault(
                f"injected fault in delta shard {shard.shard_id} at block "
                f"[{start}, {stop})")
        slab = compute_block_slab(matrix, transposed, sizes, start, stop,
                                  measure)
        row_ids = np.arange(start, stop)
        col_ids = np.arange(slab.shape[1])
        new_pair = col_ids[None, :] < row_ids[:, None]
        if reducers:
            local_i, local_j = np.nonzero(new_pair)
            values = slab[local_i, local_j]
            if "histogram" in reducers:
                reducers["histogram"].update(values)
            if "selection" in reducers:
                reducers["selection"].update(values)
            if "top_k" in reducers:
                reducers["top_k"].update(local_j, row_ids[local_i], values)
        if threshold is not None:
            keep = new_pair & (slab >= threshold)
            local_i, local_j = np.nonzero(keep)
            out_i.append(local_j)                   # first = smaller id
            out_j.append(row_ids[local_i])          # second = appended row
            out_v.append(slab[local_i, local_j])
    states = {kind: reducer.state() for kind, reducer in reducers.items()}
    if not out_i:
        empty = np.empty(0)
        return (empty.astype(np.int64), empty.astype(np.int64), empty, states)
    return (np.concatenate(out_i), np.concatenate(out_j),
            np.concatenate(out_v), states)


# --------------------------------------------------------------------- #
# Shared process pools (amortise pool start-up across searches)
# --------------------------------------------------------------------- #

_POOLS: dict[int, ProcessPoolExecutor] = {}


def _disown_pools_after_fork() -> None:  # pragma: no cover - via children
    """Drop inherited pool handles in a forked child.

    An inherited ``ProcessPoolExecutor`` is unusable (its manager thread did
    not survive the fork) but looks healthy, so a child reusing it would
    enqueue tasks that are never dispatched — a silent hang.  Children start
    poolless and build their own on first use.
    """
    _POOLS.clear()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_disown_pools_after_fork)


def _shared_pool(n_workers: int) -> ProcessPoolExecutor:
    pool = _POOLS.get(n_workers)
    if pool is not None and getattr(pool, "_broken", False):
        # A worker died abnormally (OOM kill, segfault): the pool is
        # permanently broken.  Evict and rebuild so one transient fault
        # doesn't condemn every later search at this worker count — and
        # release the published dataset segments its workers were attached
        # to, so a rebuilt pool starts from a clean /dev/shm.  Rings are
        # deliberately spared: they belong to live streams (possibly on
        # other, healthy pools), not to this one.
        pool.shutdown(wait=False, cancel_futures=True)
        shm.release_datasets()
        pool = None
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=n_workers)
        _POOLS[n_workers] = pool
    return pool


def reset_shared_pools(wait: bool = False) -> None:
    """Shut down every shared pool and release all shared-memory segments.

    The explicit lifecycle hook: deployments (and tests) call this to prove
    nothing leaks — after it returns, no ``/dev/shm`` entry created by this
    process remains.  The next sharded search transparently builds a fresh
    pool and republishes what it needs.

    ``wait=True`` additionally guarantees quiescence: every worker process
    is joined, and one that outlives a grace period is killed.  That kill
    matters — executor shutdown can leave a worker stuck on the call-queue
    wakeup race (observed upstream in CPython), and such a worker would
    otherwise block this process's exit joins forever.  Use ``wait=True``
    before ``fork()``-ing or handing the process to code that must not
    inherit executor threads.
    """
    pools = list(_POOLS.values())
    _POOLS.clear()
    # Snapshot worker handles before shutdown mutates the executor's
    # internals (the _processes mapping does not survive shutdown intact).
    workers = []
    for pool in pools:
        processes = getattr(pool, "_processes", None)
        if processes:
            workers.extend(list(processes.values()))
        pool.shutdown(wait=False, cancel_futures=True)
    if wait:
        import time

        deadline = time.monotonic() + 10.0
        for process in workers:
            process.join(max(0.1, deadline - time.monotonic()))
        for process in workers:
            if process.is_alive():
                process.kill()
                process.join(5.0)
    shm.release_all()


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover - interpreter teardown
    # wait=True: when shutdown leaves a worker stuck on the call-queue race,
    # killing it here is what lets the interpreter's later exit joins
    # (multiprocessing and concurrent.futures run after atexit) complete.
    reset_shared_pools(wait=True)


def _resolve_executor(n_workers: int, executor_factory):
    """Return ``(executor, owned)``; *owned* executors are shut down per call."""
    if executor_factory is not None:
        return executor_factory(n_workers), True
    if n_workers == 1:
        return InlineShardExecutor(), False
    return _shared_pool(n_workers), False


def _gather(ordered_futures, *, owned_executor=None):
    """Yield results in submission order; on failure cancel the rest and raise.

    ``ordered_futures`` is an iterable of ``(tag, future)``; *tag* is either a
    :class:`BlockShard` or a ``(start, stop)`` block range and only feeds the
    error message.  Blocking on the next-in-order future (rather than
    ``as_completed``) keeps the merge canonical for free and cannot hang: a
    failed future's ``result()`` raises immediately once it is done.
    """
    pending = list(ordered_futures)
    for position, (tag, future) in enumerate(pending):
        try:
            yield future.result()
        except Exception as exc:
            for _, leftover in pending[position + 1:]:
                leftover.cancel()
            if owned_executor is not None:
                owned_executor.shutdown(wait=False, cancel_futures=True)
            if isinstance(tag, BlockShard):
                raise ShardExecutionError(
                    f"shard {tag.shard_id} failed: {exc}",
                    shard_id=tag.shard_id) from exc
            raise ShardExecutionError(
                f"streamed block [{tag[0]}, {tag[1]}) failed: {exc}",
                block=tuple(tag)) from exc


def _canonical_pair_list(chunks) -> list[SimilarPair]:
    """Merge per-shard ``(i, j, v)`` chunks into one ``(first, second)``-sorted list."""
    all_i = np.concatenate([c[0] for c in chunks])
    all_j = np.concatenate([c[1] for c in chunks])
    all_v = np.concatenate([c[2] for c in chunks])
    order = np.lexsort((all_j, all_i))
    return [SimilarPair(int(i), int(j), float(v))
            for i, j, v in zip(all_i[order].tolist(), all_j[order].tolist(),
                               all_v[order].tolist())]


@register_backend
class ShardedBlockedBackend(ApssBackend):
    """Multi-process sharding of the exact blocked kernel.

    Parameters
    ----------
    n_workers:
        Worker processes.  Defaults to ``REPRO_APSS_WORKERS`` when set, else
        the CPU count (capped at 8).  ``1`` runs in-process — no pool, no
        pickling.
    block_rows, memory_budget_mb:
        Per-worker block sizing, with the same semantics as ``exact-blocked``:
        the budget caps the scratch memory of one slab *in each worker*, so
        total peak memory is roughly ``n_workers * memory_budget_mb``.
    shards_per_worker:
        Shards per worker (default 2): mild oversubscription so a slow shard
        does not leave the rest of the pool idle.
    partition_strategy:
        ``striped`` (default), ``contiguous`` or ``balanced``; see
        :mod:`repro.similarity.partition`.
    executor_factory:
        ``callable(n_workers) -> executor`` override used by the test harness
        (deterministic shard-order replay) and available for custom pools.
        Factory-made executors are shut down after each search.
    use_shared_memory:
        Whether multi-worker passes move the CSR payload through shared
        memory (default).  Purely a transport choice — results are
        bit-identical either way — so it lives in ``execution_options``.
    inject_shard_fault:
        Fault-injection hook: the shard with this id raises
        :class:`InjectedShardFault` mid-stream.  Exists so the failure path
        is testable through real process boundaries.
    """

    name = "sharded-blocked"
    exact = True
    measures = ("cosine", "jaccard", "dot")
    #: These change how the search executes, never what it returns, so sweep
    #: caches must not fragment on them (see ``CachedApssEngine._key``).
    #: ``inject_shard_fault`` is deliberately NOT here: it changes the
    #: outcome (the search raises), so a cached sweep must not swallow it.
    execution_options = ("n_workers", "shards_per_worker", "partition_strategy",
                         "executor_factory", "use_shared_memory")

    def __init__(self, n_workers: int | None = None,
                 block_rows: int | None = None,
                 memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
                 shards_per_worker: int = 2,
                 partition_strategy: str = "striped",
                 executor_factory=None,
                 use_shared_memory: bool = True,
                 inject_shard_fault: int | None = None) -> None:
        if block_rows is not None and block_rows <= 0:
            raise ValueError("block_rows must be positive")
        if memory_budget_mb <= 0:
            raise ValueError("memory_budget_mb must be positive")
        if shards_per_worker < 1:
            raise ValueError("shards_per_worker must be at least 1")
        self.n_workers = resolve_worker_count(n_workers)
        self.block_rows = block_rows
        self.memory_budget_mb = float(memory_budget_mb)
        self.shards_per_worker = int(shards_per_worker)
        self.partition_strategy = partition_strategy
        self.executor_factory = executor_factory
        self.use_shared_memory = bool(use_shared_memory)
        self.inject_shard_fault = inject_shard_fault
        # Validate eagerly so typos fail at construction, not mid-search.
        partition_blocks(2, 1, 1, strategy=partition_strategy)

    @classmethod
    def parity_variants(cls) -> list[dict]:
        """Parity-check the scheduling seams: worker counts and transports.

        Inline, 2- and 4-worker pools over the shared-memory transport, plus
        a 2-worker pass with the transport disabled — both payload paths
        must produce byte-identical pair lists.
        """
        return [{"n_workers": 1}, {"n_workers": 2}, {"n_workers": 4},
                {"n_workers": 2, "use_shared_memory": False}]

    def plan(self, n_rows: int) -> list[BlockShard]:
        """The deterministic shard plan for an *n_rows* dataset."""
        rows_per_block = resolve_block_rows(n_rows, self.block_rows,
                                            self.memory_budget_mb)
        return partition_blocks(n_rows, rows_per_block,
                                self.n_workers * self.shards_per_worker,
                                strategy=self.partition_strategy)

    # ------------------------------------------------------------------ #
    def search(self, dataset: VectorDataset, threshold: float,
               measure: str = "cosine") -> BackendOutput:
        """Find pairs at or above *threshold* by fanning shards over workers."""
        self.check_measure(measure)
        n = dataset.n_rows
        if n < 2:
            return BackendOutput(pairs=[], n_candidates=0)
        shards = self.plan(n)
        if self.inject_shard_fault is not None and not (
                0 <= self.inject_shard_fault < len(shards)):
            # A fault-injection hook that silently misses its target would
            # make fault tests vacuously green; fail loudly instead.
            raise ValueError(
                f"inject_shard_fault={self.inject_shard_fault} is out of "
                f"range: the plan for {n} rows has {len(shards)} shard(s)")
        payload = _shard_payload(dataset, measure,
                                 self.use_shared_memory and self.n_workers > 1)
        executor, owned = _resolve_executor(self.n_workers,
                                            self.executor_factory)
        pinned = payload[0] == "shm" and payload[1].fingerprint
        if pinned:
            shm.pin_dataset(pinned)
        try:
            futures = [
                (shard, executor.submit(
                    _search_shard, payload, shard, float(threshold),
                    shard.shard_id == self.inject_shard_fault))
                for shard in shards]
            chunks = list(_gather(futures,
                                  owned_executor=executor if owned else None))
        finally:
            if pinned:
                shm.unpin_dataset(pinned)
            if owned:
                executor.shutdown(wait=False, cancel_futures=True)
        # Canonical (first, second) order: the merged pair list is identical
        # regardless of shard layout or completion order, so parity checks
        # and cache fingerprints cannot observe the scheduler.
        pairs = _canonical_pair_list(chunks)
        return BackendOutput(
            pairs=pairs, n_candidates=n * (n - 1) // 2,
            details={"n_workers": self.n_workers, "n_shards": len(shards),
                     "partition_strategy": self.partition_strategy,
                     "shared_memory": payload[0] == "shm",
                     "block_rows": resolve_block_rows(
                         n, self.block_rows, self.memory_budget_mb)})


def iter_similarity_blocks_sharded(
        dataset: VectorDataset, measure: str = "cosine", *,
        n_workers: int | None = None, block_rows: int | None = None,
        memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
        executor_factory=None, max_pending: int | None = None,
        use_shared_memory: bool = True,
        inject_block_fault: int | None = None,
) -> Iterator[tuple[range, np.ndarray]]:
    """Sharded drop-in for :func:`repro.similarity.streaming.iter_similarity_blocks`.

    Full-width slabs are computed in worker processes but yielded strictly in
    row order: a bounded window (``max_pending``, default ``2 * n_workers``)
    of block tasks is kept in flight and the generator blocks on the
    next-in-order future, so out-of-order completions are absorbed by the
    window rather than reordering the stream.  Multi-worker streams return
    their slabs through a shared-memory ring of ``max_pending`` slots (one
    per in-flight task; each slot is copied out before it can be reused)
    unless *use_shared_memory* is off or segment creation fails, in which
    case slabs fall back to pickled returns.  A failed block raises
    :class:`ShardExecutionError` after every earlier block was yielded;
    blocks after the failure are cancelled.  With one worker and no injected
    executor this degrades to the plain in-process generator.
    """
    if measure not in STREAMING_MEASURES:
        raise ValueError(f"unsupported streaming measure {measure!r}; "
                         f"supported: {list(STREAMING_MEASURES)}")
    n = dataset.n_rows
    if n == 0:
        return
    n_workers = resolve_worker_count(n_workers)
    rows_per_block = resolve_block_rows(n, block_rows, memory_budget_mb)
    ranges = block_ranges(n, rows_per_block)
    if inject_block_fault is not None and not (
            0 <= inject_block_fault < len(ranges)):
        # Same loud failure as the search path: a fault hook that silently
        # misses its target makes fault tests vacuously green.
        raise ValueError(
            f"inject_block_fault={inject_block_fault} is out of range: the "
            f"stream for {n} rows has {len(ranges)} block(s)")
    if n_workers == 1 and executor_factory is None and inject_block_fault is None:
        from repro.similarity.streaming import iter_similarity_blocks
        yield from iter_similarity_blocks(dataset, measure,
                                          block_rows=rows_per_block)
        return
    window = (max_pending if max_pending is not None
              else shm.default_ring_slots(n_workers))
    window = max(1, int(window))
    use_shm = use_shared_memory and n_workers > 1
    payload = _shard_payload(dataset, measure, use_shm)
    ring = None
    if use_shm and payload[0] == "shm":
        try:
            ring = shm.SlabRing(window, rows_per_block * n * 8)
        except OSError:
            ring = None  # fall back to pickled slab returns
    executor, owned = _resolve_executor(n_workers, executor_factory)
    # Pin for the stream's whole lifetime: other datasets published while
    # this generator is suspended must not LRU-evict its segments.
    pinned = payload[0] == "shm" and payload[1].fingerprint
    if pinned:
        shm.pin_dataset(pinned)
    pending: deque[tuple[tuple[int, int], Future]] = deque()
    next_to_submit = 0
    try:
        while next_to_submit < len(ranges) or pending:
            while next_to_submit < len(ranges) and len(pending) < window:
                start, stop = ranges[next_to_submit]
                slot = (ring.slot_name(next_to_submit)
                        if ring is not None else None)
                pending.append(((start, stop), executor.submit(
                    _stream_block, payload, start, stop,
                    next_to_submit == inject_block_fault, slot)))
                next_to_submit += 1
            (start, stop), future = pending.popleft()
            result = next(_gather([((start, stop), future)]))
            if ring is not None:
                shape = (stop - start, n)
                if tuple(result) != shape:
                    raise ShardExecutionError(
                        f"streamed block [{start}, {stop}) returned shape "
                        f"{tuple(result)}, expected {shape}",
                        block=(start, stop))
                # Consume the slot before the refill loop can reuse it.
                slab = ring.read(start // rows_per_block, shape)
            else:
                slab = result
            yield range(start, stop), slab
    finally:
        for _, future in pending:
            future.cancel()
        if pinned:
            shm.unpin_dataset(pinned)
        if ring is not None:
            ring.close()
        if owned:
            executor.shutdown(wait=False, cancel_futures=True)


def run_delta_shards(child: VectorDataset, delta: DatasetDelta,
                     threshold: float | None, measure: str, *,
                     reducer_specs: dict | None = None,
                     n_workers: int | None = None,
                     block_rows: int | None = None,
                     memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
                     shards_per_worker: int = 2,
                     partition_strategy: str = "striped",
                     executor_factory=None,
                     use_shared_memory: bool = True,
                     inject_shard_fault: int | None = None,
                     ) -> tuple[list[SimilarPair], dict[str, list]]:
    """Fan the ``Δn x n`` append cross block over the shared worker pool.

    The ingest twin of :meth:`ShardedBlockedBackend.search`: the appended
    row range of *delta* is partitioned by
    :func:`~repro.similarity.partition.partition_delta_blocks`, each shard
    scores its blocks against every column ``j < row`` (exactly the new
    pairs), and the shard results merge canonically.  Returns
    ``(pairs, states)`` — the new pairs at or above *threshold* in
    ``(first, second)`` order (empty when *threshold* is ``None``) and, per
    reducer kind in *reducer_specs*, the list of shard-local ``state()``
    payloads for the caller to fold in through ``merge()``.  Callers are
    expected to have validated the delta against the child dataset already
    (see :class:`repro.store.delta.DeltaApssBackend`).
    """
    n_workers = resolve_worker_count(n_workers)
    rows_per_block = resolve_block_rows(child.n_rows, block_rows,
                                        memory_budget_mb)
    shards = partition_delta_blocks(delta.parent_rows, child.n_rows,
                                    rows_per_block,
                                    n_workers * shards_per_worker,
                                    strategy=partition_strategy)
    states: dict[str, list] = {kind: [] for kind in (reducer_specs or ())}
    if not shards:
        return [], states
    if inject_shard_fault is not None and not (
            0 <= inject_shard_fault < len(shards)):
        raise ValueError(
            f"inject_shard_fault={inject_shard_fault} is out of range: the "
            f"delta plan has {len(shards)} shard(s)")
    payload = _shard_payload(child, measure,
                             use_shared_memory and n_workers > 1)
    executor, owned = _resolve_executor(n_workers, executor_factory)
    pinned = payload[0] == "shm" and payload[1].fingerprint
    if pinned:
        shm.pin_dataset(pinned)
    try:
        futures = [
            (shard, executor.submit(
                _delta_shard, payload, shard,
                None if threshold is None else float(threshold),
                reducer_specs, shard.shard_id == inject_shard_fault))
            for shard in shards]
        chunks = list(_gather(futures,
                              owned_executor=executor if owned else None))
    finally:
        if pinned:
            shm.unpin_dataset(pinned)
        if owned:
            executor.shutdown(wait=False, cancel_futures=True)
    for *_, shard_states in chunks:
        for kind, state in shard_states.items():
            states[kind].append(state)
    pairs = ([] if threshold is None
             else _canonical_pair_list([c[:3] for c in chunks]))
    return pairs, states
