"""Sharded multi-process APSS backend over the blocked Gram kernel.

``sharded-blocked`` partitions the upper-triangular block grid (see
:mod:`repro.similarity.partition`) and fans the shards out over a
``concurrent.futures`` executor — a ``ProcessPoolExecutor`` by default, an
in-process :class:`InlineShardExecutor` when ``n_workers=1`` (or for
debugging), or anything a test injects via ``executor_factory``.  Each worker
runs the same slab kernel as ``exact-blocked``
(:func:`repro.similarity.streaming.compute_block_slab`) restricted to the
columns its shard actually extracts pairs from, so a 4-worker pass does about
half the scalar work of the full-width kernel on top of the parallelism.

Transport: multi-worker passes move data through
:mod:`repro.similarity.shm` — the prepared CSR arrays are published to
shared-memory segments keyed by dataset fingerprint (workers attach instead
of unpickling a per-task payload) and streamed slabs come back through a
shared-memory ring instead of the result pipe.  The pickle payload remains
as the in-process fast path (``n_workers=1``) and the automatic fallback
when shared memory is unavailable; segment lifecycle is tied to the shared
pools (evicting or rebuilding a pool releases every published segment, as
does interpreter exit).

Correctness under nondeterministic scheduling is the contract:

* results are **order-canonical** — merged pairs are sorted by
  ``(first, second)``, so the pair list is byte-identical no matter which
  shard finishes first, and sweep caches keyed on the output stay coherent;
* a shard that raises mid-stream **surfaces** as
  :class:`ShardExecutionError` (outstanding shards are cancelled) — never a
  hang, never silently dropped pairs;
* everything a worker needs travels in a picklable payload (shared-memory
  descriptor or raw CSR arrays) and the worker functions are module-level,
  so spawn-start platforms (Windows, macOS) work identically to fork.

The streamed-slab contract is sharded too: :func:`iter_similarity_blocks_sharded`
computes full-width slabs in worker processes and yields them in row order
behind a bounded reorder window, so ``CachedApssEngine``, the streaming
reducers and every graph/growth/LAM consumer work unchanged.  The same
worker pool also serves *ingest*: :func:`run_delta_shards` fans the
``Δn x n`` append cross block of a :class:`~repro.datasets.vectors.DatasetDelta`
over the pool and merges shard-local pair chunks and reducer state (see
:class:`repro.store.delta.DeltaApssBackend`).
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile
import time
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import wait as _wait_futures
from typing import Iterator

import numpy as np

from repro.datasets.vectors import DatasetDelta, VectorDataset
from repro.similarity import shm, stealing
from repro.similarity.backends.base import (ApssBackend, BackendOutput,
                                            register_backend)
from repro.similarity.partition import (BlockShard, block_ranges,
                                        partition_blocks,
                                        partition_delta_blocks,
                                        resolve_worker_count, shard_owner)
from repro.similarity.streaming import (DEFAULT_MEMORY_BUDGET_MB,
                                        STREAMING_MEASURES, HistogramReducer,
                                        SelectionSketch, TopKReducer,
                                        compute_block_slab, prepared_csr,
                                        resolve_block_rows)
from repro.similarity.types import SimilarPair

__all__ = [
    "STRAGGLER_ENV_VAR",
    "ShardExecutionError",
    "InjectedShardFault",
    "InlineShardExecutor",
    "ShardedBlockedBackend",
    "iter_similarity_blocks_sharded",
    "run_delta_shards",
    "reset_shared_pools",
]

#: Environment variable simulating a straggler: when set to a factor > 1,
#: the worker claiming pool slot 0 runs its block kernel that many times
#: slower (it sleeps ``(factor - 1) x`` each block's measured compute time).
#: The CI straggler lane and the scheduling benchmark use this to prove the
#: work-stealing queue redistributes load; it is exact at any machine speed
#: because the slowdown scales with the real kernel time.
STRAGGLER_ENV_VAR = "REPRO_APSS_STRAGGLER"


class ShardExecutionError(RuntimeError):
    """A shard (or streamed block) failed; carries which unit died and why."""

    def __init__(self, message: str, shard_id: int | None = None,
                 block: tuple[int, int] | None = None) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.block = block


class InjectedShardFault(RuntimeError):
    """Raised inside a worker by the fault-injection hook (test harness)."""


class _StolenShardFailure(Exception):
    """Picklable carrier of a shard failure through a steal runner.

    A steal runner executes *many* shards per task, so a raw exception from
    the pool would lose which shard died.  ``args`` carry both fields (the
    default ``Exception`` pickling round-trips them across the process
    boundary — exception ``__cause__`` chains do not survive pickling), and
    the parent re-raises :class:`ShardExecutionError` *from* ``cause`` so
    callers still see the original fault as the cause.
    """

    def __init__(self, shard_id: int, cause: BaseException) -> None:
        super().__init__(shard_id, cause)
        self.shard_id = shard_id
        self.cause = cause


class InlineShardExecutor:
    """Executor running every task synchronously at ``submit`` time.

    The ``n_workers=1`` fast path and the debugging escape hatch: no
    processes, no pickling, exceptions carry full in-process tracebacks.
    Implements the subset of the ``concurrent.futures.Executor`` protocol the
    backend uses (``submit``/``shutdown``).
    """

    def submit(self, fn, /, *args, **kwargs) -> Future:
        """Run *fn* immediately and return an already-resolved future."""
        future: Future = Future()
        if future.set_running_or_notify_cancel():
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:  # noqa: BLE001 - relayed via future
                future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        """No-op (nothing runs after ``submit`` returns)."""


# --------------------------------------------------------------------- #
# Worker side: module-level, picklable, spawn-safe
# --------------------------------------------------------------------- #

#: Per-process kernel slowdown factor, set by :func:`_worker_init` in the
#: worker that claims pool slot 0 when the straggler lane is active.
_SLOWDOWN = 1.0


def _compute_block(matrix, transposed, sizes, start: int, stop: int,
                   measure: str, columns_from: int = 0) -> np.ndarray:
    """The block kernel plus the straggler throttle.

    Every worker-side kernel invocation goes through here so the simulated
    straggler (:data:`STRAGGLER_ENV_VAR`) slows *all* paths — search, stream
    and delta — proportionally to their real compute time.
    """
    began = time.perf_counter()
    slab = compute_block_slab(matrix, transposed, sizes, start, stop, measure,
                              columns_from=columns_from)
    if _SLOWDOWN > 1.0:
        time.sleep((_SLOWDOWN - 1.0) * (time.perf_counter() - began))
    return slab


def _claim_pool_slot(token_dir: str, n_workers: int) -> int:
    """Claim this worker's pool slot: first free ``O_EXCL`` token wins."""
    for slot in range(n_workers):
        try:
            fd = os.open(os.path.join(token_dir, f"w-{slot}"),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        return slot
    return 0  # pragma: no cover - a restarted worker beyond the slot count


def _worker_init(token_dir: str, n_workers: int, slowdown: float,
                 pin: bool) -> None:
    """Pool initializer for the straggler/affinity lanes.

    Each worker claims a distinct slot token; slot 0 becomes the straggler
    when *slowdown* > 1, and with *pin* each worker sets its CPU affinity to
    one core of the process's allowed set (``os.sched_setaffinity`` where
    available — a no-op elsewhere, so the option is portable).
    """
    global _SLOWDOWN
    slot = _claim_pool_slot(token_dir, n_workers)
    if slowdown > 1.0 and slot == 0:
        _SLOWDOWN = float(slowdown)
    if pin and hasattr(os, "sched_setaffinity"):
        try:
            cpus = sorted(os.sched_getaffinity(0))
            os.sched_setaffinity(0, {cpus[slot % len(cpus)]})
        except OSError:  # pragma: no cover - affinity denied by the platform
            pass


def _shard_payload(dataset: VectorDataset, measure: str,
                   use_shared_memory: bool) -> tuple:
    """The per-task dataset payload: a shared-memory descriptor when possible.

    With *use_shared_memory* the CSR arrays are published once (keyed by the
    dataset fingerprint, LRU-capped) and the payload shrinks to a descriptor
    of segment names; otherwise — in-process executors, unsupported
    platforms, a full ``/dev/shm`` — the arrays ride along as before.  The
    fingerprint is computed once here, parent-side, and doubles as the
    workers' preparation-memo key.
    """
    fingerprint = dataset.fingerprint()
    if use_shared_memory:
        descriptor = shm.publish_dataset(dataset, fingerprint)
        if descriptor is not None:
            return ("shm", descriptor, measure)
    return ("raw", fingerprint, dataset.indptr, dataset.indices,
            dataset.data, dataset.n_features, measure)


#: Per-process memo of the last prepared (scaled CSR, CSC transpose, sizes):
#: a stream submits one task per block, so without this every block would
#: re-run the O(nnz) scaling + transpose.  One entry is enough — a worker
#: serves one (dataset, measure) at a time — and keeps memory bounded.  For
#: shared-memory payloads the attached segments are kept in the entry so the
#: mappings outlive the attach call; they are dropped (and reclaimed by the
#: OS once unmapped) when the memo moves to the next dataset.
_PREP_MEMO: dict[tuple, tuple] = {}


def _prepare(payload: tuple):
    """Worker-side: resolve a payload into ``(csr, cscT, sizes, measure)``."""
    if payload[0] == "shm":
        _, descriptor, measure = payload
        key = (descriptor.fingerprint, measure)
        prepared = _PREP_MEMO.get(key)
        if prepared is None:
            dataset, segments = shm.attach_dataset(descriptor)
            matrix = prepared_csr(dataset, measure)
            prepared = (matrix, matrix.T.tocsc(),
                        np.diff(dataset.indptr).astype(np.float64), measure,
                        segments)
            _PREP_MEMO.clear()
            _PREP_MEMO[key] = prepared
    else:
        _, fingerprint, indptr, indices, data, n_features, measure = payload
        key = (fingerprint, measure)
        prepared = _PREP_MEMO.get(key)
        if prepared is None:
            dataset = VectorDataset(indptr, indices, data, n_features)
            matrix = prepared_csr(dataset, measure)
            prepared = (matrix, matrix.T.tocsc(),
                        np.diff(indptr).astype(np.float64), measure, None)
            _PREP_MEMO.clear()
            _PREP_MEMO[key] = prepared
    return prepared[:4]


def _search_shard(payload: tuple, shard: BlockShard, threshold: float,
                  fail: bool = False) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Score one shard's blocks; return ``(i, j, similarity)`` arrays.

    Only columns ``j >= start`` are computed per block (the strict upper
    triangle is all the search keeps), which halves the average scalar work
    versus the full-width kernel.  With ``fail=True`` the worker raises
    :class:`InjectedShardFault` before its final block — mid-stream, after
    real work happened — so fault tests exercise the genuine error path
    through real process boundaries.
    """
    matrix, transposed, sizes, measure = _prepare(payload)
    n = len(sizes)
    out_i: list[np.ndarray] = []
    out_j: list[np.ndarray] = []
    out_v: list[np.ndarray] = []
    for index, (start, stop) in enumerate(shard.blocks):
        if fail and index == len(shard.blocks) - 1:
            raise InjectedShardFault(
                f"injected fault in shard {shard.shard_id} at block "
                f"[{start}, {stop})")
        slab = _compute_block(matrix, transposed, sizes, start, stop,
                              measure, columns_from=start)
        row_ids = np.arange(start, stop)
        col_ids = np.arange(start, n)
        keep = (slab >= threshold) & (col_ids[None, :] > row_ids[:, None])
        local_i, local_j = np.nonzero(keep)
        out_i.append(row_ids[local_i])
        out_j.append(col_ids[local_j])
        out_v.append(slab[local_i, local_j])
    if not out_i:
        empty = np.empty(0)
        return empty.astype(np.int64), empty.astype(np.int64), empty
    return (np.concatenate(out_i), np.concatenate(out_j),
            np.concatenate(out_v))


def _stream_block(payload: tuple, start: int, stop: int,
                  fail: bool = False, slot_name: str | None = None):
    """Compute one full-width similarity slab (the streaming contract).

    With *slot_name* the slab is written into that shared-memory ring slot
    and only its shape is returned through the result pipe; without it the
    slab itself is returned (pickled — the in-process and fallback path).
    """
    if fail:
        raise InjectedShardFault(
            f"injected fault streaming block [{start}, {stop})")
    matrix, transposed, sizes, measure = _prepare(payload)
    slab = _compute_block(matrix, transposed, sizes, start, stop, measure)
    if slot_name is not None:
        return shm.write_slab(slot_name, slab)
    return slab


def _make_local_reducers(reducer_specs: dict | None) -> dict:
    """Build fresh shard-local reducers from a picklable spec dict.

    Specs: ``histogram``/``selection`` map to their bin-edge arrays,
    ``top_k`` to ``k``.  Workers update these local reducers and ship their
    ``state()`` back; the parent folds the states into the caller's reducers
    through the commutative ``merge()`` seam.
    """
    reducers: dict = {}
    if not reducer_specs:
        return reducers
    if "histogram" in reducer_specs:
        reducers["histogram"] = HistogramReducer(reducer_specs["histogram"])
    if "selection" in reducer_specs:
        reducers["selection"] = SelectionSketch(reducer_specs["selection"])
    if "top_k" in reducer_specs:
        reducers["top_k"] = TopKReducer(int(reducer_specs["top_k"]))
    return reducers


def _delta_shard(payload: tuple, shard: BlockShard, threshold: float | None,
                 reducer_specs: dict | None = None, fail: bool = False):
    """Score one delta-ingest shard: appended rows vs every column ``j < row``.

    Returns ``(first, second, similarity, reducer_states)`` where the pair
    arrays hold every new pair at or above *threshold* (empty when
    *threshold* is ``None`` — the reducers-only mode) and *reducer_states*
    maps reducer kinds to their shard-local ``state()`` payloads.  Each new
    pair is visited exactly once with the smaller id first, matching
    :func:`repro.store.delta.delta_pairs`.  ``fail=True`` raises
    :class:`InjectedShardFault` before the final block, mid-stream.
    """
    matrix, transposed, sizes, measure = _prepare(payload)
    reducers = _make_local_reducers(reducer_specs)
    out_i: list[np.ndarray] = []
    out_j: list[np.ndarray] = []
    out_v: list[np.ndarray] = []
    for index, (start, stop) in enumerate(shard.blocks):
        if fail and index == len(shard.blocks) - 1:
            raise InjectedShardFault(
                f"injected fault in delta shard {shard.shard_id} at block "
                f"[{start}, {stop})")
        slab = _compute_block(matrix, transposed, sizes, start, stop, measure)
        row_ids = np.arange(start, stop)
        col_ids = np.arange(slab.shape[1])
        new_pair = col_ids[None, :] < row_ids[:, None]
        if reducers:
            local_i, local_j = np.nonzero(new_pair)
            values = slab[local_i, local_j]
            if "histogram" in reducers:
                reducers["histogram"].update(values)
            if "selection" in reducers:
                reducers["selection"].update(values)
            if "top_k" in reducers:
                reducers["top_k"].update(local_j, row_ids[local_i], values)
        if threshold is not None:
            keep = new_pair & (slab >= threshold)
            local_i, local_j = np.nonzero(keep)
            out_i.append(local_j)                   # first = smaller id
            out_j.append(row_ids[local_i])          # second = appended row
            out_v.append(slab[local_i, local_j])
    states = {kind: reducer.state() for kind, reducer in reducers.items()}
    if not out_i:
        empty = np.empty(0)
        return (empty.astype(np.int64), empty.astype(np.int64), empty, states)
    return (np.concatenate(out_i), np.concatenate(out_j),
            np.concatenate(out_v), states)


def _empty_chunk() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """An empty ``(i, j, v)`` pair chunk with the canonical dtypes."""
    empty = np.empty(0)
    return empty.astype(np.int64), empty.astype(np.int64), empty


def _steal_search_worker(payload: tuple, descriptor, shards: tuple,
                         threshold: float, worker_slot: int,
                         allow_steal: bool = True,
                         inject_shard_fault: int | None = None,
                         claim_gate=None):
    """One steal runner: claim shards from the queue until it drains.

    Returns ``(worker_slot, claimed_shard_ids, (i, j, v))`` — the claim list
    is the audit trail the parent cross-checks for exactly-once coverage and
    publishes as per-worker claim counters.  A shard that fails (kernel error
    or injected fault) surfaces as :class:`_StolenShardFailure` so the parent
    can attribute the failure even though this task ran many shards.
    """
    client = stealing.ShardQueueClient(descriptor, worker_slot,
                                       steal=allow_steal,
                                       claim_gate=claim_gate)
    claimed: list[int] = []
    chunks: list[tuple] = []
    while True:
        try:
            item = client.claim()
        except stealing.ClaimFault as fault:
            raise _StolenShardFailure(shards[fault.item].shard_id, fault.cause)
        if item is None:
            break
        shard = shards[item]
        try:
            chunk = _search_shard(payload, shard, threshold,
                                  fail=shard.shard_id == inject_shard_fault)
        except BaseException as exc:  # noqa: BLE001 - attributed to the shard
            raise _StolenShardFailure(shard.shard_id, exc)
        claimed.append(shard.shard_id)
        chunks.append(chunk)
    if not chunks:
        return worker_slot, claimed, _empty_chunk()
    return worker_slot, claimed, (
        np.concatenate([c[0] for c in chunks]),
        np.concatenate([c[1] for c in chunks]),
        np.concatenate([c[2] for c in chunks]))


def _steal_delta_worker(payload: tuple, descriptor, shards: tuple,
                        threshold: float | None,
                        reducer_specs: dict | None, worker_slot: int,
                        allow_steal: bool = True,
                        inject_shard_fault: int | None = None,
                        claim_gate=None):
    """The delta-ingest twin of :func:`_steal_search_worker`.

    Returns ``(worker_slot, claimed_shard_ids, (i, j, v), reducer_states)``
    where *reducer_states* is the list of per-shard ``state()`` payload dicts
    in claim order — merge commutativity makes that order irrelevant to the
    folded result.
    """
    client = stealing.ShardQueueClient(descriptor, worker_slot,
                                       steal=allow_steal,
                                       claim_gate=claim_gate)
    claimed: list[int] = []
    chunks: list[tuple] = []
    states: list[dict] = []
    while True:
        try:
            item = client.claim()
        except stealing.ClaimFault as fault:
            raise _StolenShardFailure(shards[fault.item].shard_id, fault.cause)
        if item is None:
            break
        shard = shards[item]
        try:
            first, second, values, shard_states = _delta_shard(
                payload, shard, threshold, reducer_specs,
                fail=shard.shard_id == inject_shard_fault)
        except BaseException as exc:  # noqa: BLE001 - attributed to the shard
            raise _StolenShardFailure(shard.shard_id, exc)
        claimed.append(shard.shard_id)
        chunks.append((first, second, values))
        states.append(shard_states)
    if not chunks:
        return worker_slot, claimed, _empty_chunk(), states
    return worker_slot, claimed, (
        np.concatenate([c[0] for c in chunks]),
        np.concatenate([c[1] for c in chunks]),
        np.concatenate([c[2] for c in chunks])), states


# --------------------------------------------------------------------- #
# Shared process pools (amortise pool start-up across searches)
# --------------------------------------------------------------------- #

#: Keyed by ``(n_workers, pin_workers, straggler_factor)``: pools differing
#: in affinity or straggler configuration must not be conflated — an
#: affinity-pinned pool serving an unpinned search (or vice versa) would make
#: the execution option silently sticky.
_POOLS: dict[tuple, ProcessPoolExecutor] = {}

#: Slot-token directories owned by live pools, removed on pool reset.
_POOL_TOKEN_DIRS: list[str] = []


def _resolve_straggler() -> float:
    """The straggler slowdown factor from :data:`STRAGGLER_ENV_VAR` (>= 1)."""
    env = os.environ.get(STRAGGLER_ENV_VAR, "").strip()
    if not env:
        return 1.0
    try:
        factor = float(env)
    except ValueError:
        raise ValueError(
            f"{STRAGGLER_ENV_VAR} must be a number, got {env!r}") from None
    if factor < 1.0:
        raise ValueError(
            f"{STRAGGLER_ENV_VAR} must be >= 1, got {factor}")
    return factor


def _disown_pools_after_fork() -> None:  # pragma: no cover - via children
    """Drop inherited pool handles in a forked child.

    An inherited ``ProcessPoolExecutor`` is unusable (its manager thread did
    not survive the fork) but looks healthy, so a child reusing it would
    enqueue tasks that are never dispatched — a silent hang.  Children start
    poolless and build their own on first use.
    """
    _POOLS.clear()
    _POOL_TOKEN_DIRS.clear()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_disown_pools_after_fork)


def _shared_pool(n_workers: int, pin: bool = False) -> ProcessPoolExecutor:
    slowdown = _resolve_straggler()
    key = (n_workers, bool(pin), slowdown)
    pool = _POOLS.get(key)
    if pool is not None and getattr(pool, "_broken", False):
        # A worker died abnormally (OOM kill, segfault): the pool is
        # permanently broken.  Evict and rebuild so one transient fault
        # doesn't condemn every later search at this worker count — and
        # release the published dataset segments its workers were attached
        # to, so a rebuilt pool starts from a clean /dev/shm.  Rings are
        # deliberately spared: they belong to live streams (possibly on
        # other, healthy pools), not to this one.
        pool.shutdown(wait=False, cancel_futures=True)
        shm.release_datasets()
        pool = None
    if pool is None:
        if pin or slowdown > 1.0:
            token_dir = tempfile.mkdtemp(prefix="repro-pool-")
            _POOL_TOKEN_DIRS.append(token_dir)
            pool = ProcessPoolExecutor(
                max_workers=n_workers, initializer=_worker_init,
                initargs=(token_dir, n_workers, slowdown, bool(pin)))
        else:
            pool = ProcessPoolExecutor(max_workers=n_workers)
        _POOLS[key] = pool
    return pool


def reset_shared_pools(wait: bool = False) -> None:
    """Shut down every shared pool and release all shared-memory segments.

    The explicit lifecycle hook: deployments (and tests) call this to prove
    nothing leaks — after it returns, no ``/dev/shm`` entry created by this
    process remains.  The next sharded search transparently builds a fresh
    pool and republishes what it needs.

    ``wait=True`` additionally guarantees quiescence: every worker process
    is joined, and one that outlives a grace period is killed.  That kill
    matters — executor shutdown can leave a worker stuck on the call-queue
    wakeup race (observed upstream in CPython), and such a worker would
    otherwise block this process's exit joins forever.  Use ``wait=True``
    before ``fork()``-ing or handing the process to code that must not
    inherit executor threads.
    """
    pools = list(_POOLS.values())
    _POOLS.clear()
    # Snapshot worker handles before shutdown mutates the executor's
    # internals (the _processes mapping does not survive shutdown intact).
    workers = []
    for pool in pools:
        processes = getattr(pool, "_processes", None)
        if processes:
            workers.extend(list(processes.values()))
        pool.shutdown(wait=False, cancel_futures=True)
    if wait:
        import time

        deadline = time.monotonic() + 10.0
        for process in workers:
            process.join(max(0.1, deadline - time.monotonic()))
        for process in workers:
            if process.is_alive():
                process.kill()
                process.join(5.0)
    while _POOL_TOKEN_DIRS:
        shutil.rmtree(_POOL_TOKEN_DIRS.pop(), ignore_errors=True)
    stealing.release_queues()
    shm.release_all()


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover - interpreter teardown
    # wait=True: when shutdown leaves a worker stuck on the call-queue race,
    # killing it here is what lets the interpreter's later exit joins
    # (multiprocessing and concurrent.futures run after atexit) complete.
    reset_shared_pools(wait=True)


def _resolve_executor(n_workers: int, executor_factory,
                      pin_workers: bool = False):
    """Return ``(executor, owned)``; *owned* executors are shut down per call."""
    if executor_factory is not None:
        return executor_factory(n_workers), True
    if n_workers == 1:
        return InlineShardExecutor(), False
    return _shared_pool(n_workers, pin=pin_workers), False


def _gather(ordered_futures, *, owned_executor=None):
    """Yield results in submission order; on failure cancel the rest and raise.

    ``ordered_futures`` is an iterable of ``(tag, future)``; *tag* is either a
    :class:`BlockShard` or a ``(start, stop)`` block range and only feeds the
    error message.  Blocking on the next-in-order future (rather than
    ``as_completed``) keeps the merge canonical for free and cannot hang: a
    failed future's ``result()`` raises immediately once it is done.
    """
    pending = list(ordered_futures)
    for position, (tag, future) in enumerate(pending):
        try:
            yield future.result()
        except Exception as exc:
            for _, leftover in pending[position + 1:]:
                leftover.cancel()
            if owned_executor is not None:
                owned_executor.shutdown(wait=False, cancel_futures=True)
            if isinstance(tag, BlockShard):
                raise ShardExecutionError(
                    f"shard {tag.shard_id} failed: {exc}",
                    shard_id=tag.shard_id) from exc
            raise ShardExecutionError(
                f"streamed block [{tag[0]}, {tag[1]}) failed: {exc}",
                block=tuple(tag)) from exc


def _gather_steal(slot_futures, *, owned_executor=None) -> list:
    """Collect steal-runner results; attribute failures to shards.

    The steal twin of :func:`_gather`: one future per worker slot, each
    covering every shard its runner claimed.  A :class:`_StolenShardFailure`
    re-raises as :class:`ShardExecutionError` *from the original cause* so
    fault attribution (shard id + ``__cause__``) is identical to the static
    path; any other runner death is reported against the worker slot.
    """
    results = []
    pending = list(slot_futures)
    for position, (slot, future) in enumerate(pending):
        try:
            results.append(future.result())
        except Exception as exc:
            for _, leftover in pending[position + 1:]:
                leftover.cancel()
            if owned_executor is not None:
                owned_executor.shutdown(wait=False, cancel_futures=True)
            if isinstance(exc, _StolenShardFailure):
                raise ShardExecutionError(
                    f"shard {exc.shard_id} failed: {exc.cause}",
                    shard_id=exc.shard_id) from exc.cause
            raise ShardExecutionError(
                f"steal worker {slot} failed: {exc}") from exc
    return results


def _check_claim_coverage(results, shards) -> dict[int, int]:
    """Cross-check exactly-once claim coverage; return per-slot claim counts.

    The queue's ``O_EXCL`` protocol makes double claims impossible and the
    drain loop makes missed claims impossible — but a scheduling bug here
    would silently drop or duplicate pairs, so the parent re-derives coverage
    from the runners' own claim lists and fails loudly on any mismatch.
    """
    claimed = sorted(shard_id for _, ids, *_ in results for shard_id in ids)
    expected = sorted(shard.shard_id for shard in shards)
    if claimed != expected:
        raise ShardExecutionError(
            f"work-stealing queue covered shards {claimed}, expected "
            f"{expected}")
    return {slot: len(ids) for slot, ids, *_ in results}


def _canonical_pair_list(chunks) -> list[SimilarPair]:
    """Merge per-shard ``(i, j, v)`` chunks into one ``(first, second)``-sorted list."""
    all_i = np.concatenate([c[0] for c in chunks])
    all_j = np.concatenate([c[1] for c in chunks])
    all_v = np.concatenate([c[2] for c in chunks])
    order = np.lexsort((all_j, all_i))
    return [SimilarPair(int(i), int(j), float(v))
            for i, j, v in zip(all_i[order].tolist(), all_j[order].tolist(),
                               all_v[order].tolist())]


@register_backend
class ShardedBlockedBackend(ApssBackend):
    """Multi-process sharding of the exact blocked kernel.

    Parameters
    ----------
    n_workers:
        Worker processes.  Defaults to ``REPRO_APSS_WORKERS`` when set, else
        the CPU count (capped at 8).  ``1`` runs in-process — no pool, no
        pickling.
    block_rows, memory_budget_mb:
        Per-worker block sizing, with the same semantics as ``exact-blocked``:
        the budget caps the scratch memory of one slab *in each worker*, so
        total peak memory is roughly ``n_workers * memory_budget_mb``.
    shards_per_worker:
        Shards per worker (default 2): mild oversubscription so a slow shard
        does not leave the rest of the pool idle.
    partition_strategy:
        ``striped`` (default), ``contiguous`` or ``balanced``; see
        :mod:`repro.similarity.partition`.
    executor_factory:
        ``callable(n_workers) -> executor`` override used by the test harness
        (deterministic shard-order replay) and available for custom pools.
        Factory-made executors are shut down after each search.
    use_shared_memory:
        Whether multi-worker passes move the CSR payload through shared
        memory (default).  Purely a transport choice — results are
        bit-identical either way — so it lives in ``execution_options``.
    steal:
        Shard scheduling discipline.  ``None`` (default) resolves to work
        stealing for multi-worker searches: one runner task per worker claims
        shards dynamically from a :class:`~repro.similarity.stealing.ShardQueue`
        (own stripe first, then stealing from the most-loaded peer), so a
        slow worker straggles at most its in-flight shard.  ``True`` forces
        the queue, ``"bound"`` runs the queue with stealing disabled (true
        static binding — each worker executes exactly its stripe; the
        comparator the straggler benchmark measures against), and ``False``
        keeps the legacy one-task-per-shard fan-out.  All four produce
        bit-identical results.
    borrow_slabs:
        Streaming-path option (forwarded by the engine's block-stream
        dispatch): hand consumers read-only borrowed views of ring slots
        instead of copies.  See :func:`iter_similarity_blocks_sharded`.
    pin_workers:
        Pin each pool worker to one CPU core via ``os.sched_setaffinity``
        (no-op on platforms without it).  Execution-only: results are
        identical, scheduling jitter shrinks.
    inject_shard_fault:
        Fault-injection hook: the shard with this id raises
        :class:`InjectedShardFault` mid-stream.  Exists so the failure path
        is testable through real process boundaries.
    """

    name = "sharded-blocked"
    exact = True
    measures = ("cosine", "jaccard", "dot")
    #: These change how the search executes, never what it returns, so sweep
    #: caches must not fragment on them (see ``CachedApssEngine._key``).
    #: ``inject_shard_fault`` is deliberately NOT here: it changes the
    #: outcome (the search raises), so a cached sweep must not swallow it.
    execution_options = ("n_workers", "shards_per_worker", "partition_strategy",
                         "executor_factory", "use_shared_memory", "steal",
                         "borrow_slabs", "pin_workers")

    def __init__(self, n_workers: int | None = None,
                 block_rows: int | None = None,
                 memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
                 shards_per_worker: int = 2,
                 partition_strategy: str = "striped",
                 executor_factory=None,
                 use_shared_memory: bool = True,
                 steal=None,
                 borrow_slabs: bool = True,
                 pin_workers: bool = False,
                 inject_shard_fault: int | None = None) -> None:
        if block_rows is not None and block_rows <= 0:
            raise ValueError("block_rows must be positive")
        if memory_budget_mb <= 0:
            raise ValueError("memory_budget_mb must be positive")
        if shards_per_worker < 1:
            raise ValueError("shards_per_worker must be at least 1")
        if steal not in (None, True, False, "bound"):
            raise ValueError(f"steal must be None, True, False or 'bound', "
                             f"got {steal!r}")
        self.n_workers = resolve_worker_count(n_workers)
        self.block_rows = block_rows
        self.memory_budget_mb = float(memory_budget_mb)
        self.shards_per_worker = int(shards_per_worker)
        self.partition_strategy = partition_strategy
        self.executor_factory = executor_factory
        self.use_shared_memory = bool(use_shared_memory)
        self.steal = steal
        self.borrow_slabs = bool(borrow_slabs)
        self.pin_workers = bool(pin_workers)
        self.inject_shard_fault = inject_shard_fault
        # Validate eagerly so typos fail at construction, not mid-search.
        partition_blocks(2, 1, 1, strategy=partition_strategy)

    def _steal_mode(self) -> str | None:
        """Resolve the scheduling discipline: ``"steal"``, ``"bound"`` or ``None``.

        ``None`` means the legacy one-task-per-shard fan-out.  Single-worker
        searches never use the queue — there is nobody to steal from and the
        inline path has no pool to schedule.
        """
        if self.n_workers <= 1:
            return None
        if self.steal is None or self.steal is True:
            return "steal"
        if self.steal == "bound":
            return "bound"
        return None

    @classmethod
    def parity_variants(cls) -> list[dict]:
        """Parity-check the scheduling seams: worker counts, scheduling, transports.

        The full stealing on/off x borrowing on/off cross at 2 workers, both
        scheduling disciplines at 4 workers, the static-bound queue mode, and
        a stealing pass with the shared-memory transport disabled — every
        combination must produce byte-identical pair lists.
        """
        return [{"n_workers": 1},
                {"n_workers": 2, "steal": False, "borrow_slabs": False},
                {"n_workers": 2, "steal": False, "borrow_slabs": True},
                {"n_workers": 2, "steal": True, "borrow_slabs": False},
                {"n_workers": 2, "steal": True, "borrow_slabs": True},
                {"n_workers": 2, "steal": "bound"},
                {"n_workers": 4, "steal": False},
                {"n_workers": 4, "steal": True},
                {"n_workers": 2, "steal": True, "use_shared_memory": False}]

    def plan(self, n_rows: int) -> list[BlockShard]:
        """The deterministic shard plan for an *n_rows* dataset."""
        rows_per_block = resolve_block_rows(n_rows, self.block_rows,
                                            self.memory_budget_mb)
        return partition_blocks(n_rows, rows_per_block,
                                self.n_workers * self.shards_per_worker,
                                strategy=self.partition_strategy)

    # ------------------------------------------------------------------ #
    def search(self, dataset: VectorDataset, threshold: float,
               measure: str = "cosine") -> BackendOutput:
        """Find pairs at or above *threshold* by fanning shards over workers."""
        self.check_measure(measure)
        n = dataset.n_rows
        if n < 2:
            return BackendOutput(pairs=[], n_candidates=0)
        shards = self.plan(n)
        if self.inject_shard_fault is not None and not (
                0 <= self.inject_shard_fault < len(shards)):
            # A fault-injection hook that silently misses its target would
            # make fault tests vacuously green; fail loudly instead.
            raise ValueError(
                f"inject_shard_fault={self.inject_shard_fault} is out of "
                f"range: the plan for {n} rows has {len(shards)} shard(s)")
        payload = _shard_payload(dataset, measure,
                                 self.use_shared_memory and self.n_workers > 1)
        executor, owned = _resolve_executor(self.n_workers,
                                            self.executor_factory,
                                            self.pin_workers)
        pinned = payload[0] == "shm" and payload[1].fingerprint
        if pinned:
            shm.pin_dataset(pinned)
        steal_mode = self._steal_mode()
        claims: dict[int, int] | None = None
        queue = None
        try:
            if steal_mode is not None:
                queue = stealing.ShardQueue(len(shards), self.n_workers)
                futures = [
                    (slot, executor.submit(
                        _steal_search_worker, payload, queue.descriptor(),
                        tuple(shards), float(threshold), slot,
                        steal_mode == "steal", self.inject_shard_fault,
                        claim_gate=None))
                    for slot in range(self.n_workers)]
                results = _gather_steal(
                    futures, owned_executor=executor if owned else None)
                claims = _check_claim_coverage(results, shards)
                chunks = [chunk for _, _, chunk in results]
            else:
                futures = [
                    (shard, executor.submit(
                        _search_shard, payload, shard, float(threshold),
                        shard.shard_id == self.inject_shard_fault))
                    for shard in shards]
                chunks = list(_gather(
                    futures, owned_executor=executor if owned else None))
        finally:
            if queue is not None:
                queue.close()
            if pinned:
                shm.unpin_dataset(pinned)
            if owned:
                executor.shutdown(wait=False, cancel_futures=True)
        # Canonical (first, second) order: the merged pair list is identical
        # regardless of shard layout, scheduling discipline or completion
        # order, so parity checks and cache fingerprints cannot observe the
        # scheduler.
        pairs = _canonical_pair_list(chunks)
        return BackendOutput(
            pairs=pairs, n_candidates=n * (n - 1) // 2,
            details={"n_workers": self.n_workers, "n_shards": len(shards),
                     "partition_strategy": self.partition_strategy,
                     "shared_memory": payload[0] == "shm",
                     "steal": steal_mode or "static",
                     "claims": claims,
                     "block_rows": resolve_block_rows(
                         n, self.block_rows, self.memory_budget_mb)})


def _quiesce_futures(futures, timeout: float = 10.0) -> None:
    """Cancel what can be cancelled; wait (bounded) for what cannot.

    The close-quiesce step of an abandoned stream: a worker may be mid-write
    into a ring slot, and unlinking the segment under it would rip the
    mapping out from under ``write_slab``.  Cancellation removes queued
    tasks; already-running writers are waited for (with a generous timeout
    so a wedged pool cannot hang generator cleanup forever) before the
    caller unlinks the ring.
    """
    live = [future for future in futures
            if not future.cancel() and not future.cancelled()]
    if live:
        _wait_futures(live, timeout=timeout)


def iter_similarity_blocks_sharded(
        dataset: VectorDataset, measure: str = "cosine", *,
        n_workers: int | None = None, block_rows: int | None = None,
        memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
        executor_factory=None, max_pending: int | None = None,
        use_shared_memory: bool = True,
        borrow_slabs: bool = True,
        pin_workers: bool = False,
        inject_block_fault: int | None = None,
) -> Iterator[tuple[range, np.ndarray]]:
    """Sharded drop-in for :func:`repro.similarity.streaming.iter_similarity_blocks`.

    Full-width slabs are computed in worker processes but yielded strictly in
    row order: a bounded window (``max_pending``, default ``2 * n_workers``)
    of block tasks is kept in flight and the generator blocks on the
    next-in-order future, so out-of-order completions are absorbed by the
    window rather than reordering the stream.  Multi-worker streams return
    their slabs through a shared-memory ring of ``max_pending`` slots (one
    per in-flight task) unless *use_shared_memory* is off or segment creation
    fails, in which case slabs fall back to pickled returns.

    With *borrow_slabs* (the default) the yielded slab is a **read-only
    borrowed view** of its ring slot — zero-copy from the worker's Gram
    kernel to the consumer — valid until the next iteration step (the
    generator releases the borrow when resumed, and the slot is then
    rewritten by a later block).  Consumers that retain slabs across
    iterations must copy them, or pass ``borrow_slabs=False`` to get
    owned copies (the untrusted-consumer fallback; also the behaviour
    whenever the ring is unavailable).

    A failed block raises :class:`ShardExecutionError` after every earlier
    block was yielded; blocks after the failure are cancelled, and in-flight
    writers are quiesced before the ring is unlinked — an abandoned stream
    never tears a slot out from under a mid-write worker.  With one worker
    and no injected executor this degrades to the plain in-process generator.
    """
    if measure not in STREAMING_MEASURES:
        raise ValueError(f"unsupported streaming measure {measure!r}; "
                         f"supported: {list(STREAMING_MEASURES)}")
    n = dataset.n_rows
    if n == 0:
        return
    n_workers = resolve_worker_count(n_workers)
    rows_per_block = resolve_block_rows(n, block_rows, memory_budget_mb)
    ranges = block_ranges(n, rows_per_block)
    if inject_block_fault is not None and not (
            0 <= inject_block_fault < len(ranges)):
        # Same loud failure as the search path: a fault hook that silently
        # misses its target makes fault tests vacuously green.
        raise ValueError(
            f"inject_block_fault={inject_block_fault} is out of range: the "
            f"stream for {n} rows has {len(ranges)} block(s)")
    if n_workers == 1 and executor_factory is None and inject_block_fault is None:
        from repro.similarity.streaming import iter_similarity_blocks
        yield from iter_similarity_blocks(dataset, measure,
                                          block_rows=rows_per_block)
        return
    window = (max_pending if max_pending is not None
              else shm.default_ring_slots(n_workers))
    window = max(1, int(window))
    use_shm = use_shared_memory and n_workers > 1
    payload = _shard_payload(dataset, measure, use_shm)
    ring = None
    if use_shm and payload[0] == "shm":
        try:
            ring = shm.SlabRing(window, rows_per_block * n * 8)
        except OSError:
            ring = None  # fall back to pickled slab returns
    executor, owned = _resolve_executor(n_workers, executor_factory,
                                        pin_workers)
    # Pin for the stream's whole lifetime: other datasets published while
    # this generator is suspended must not LRU-evict its segments.
    pinned = payload[0] == "shm" and payload[1].fingerprint
    if pinned:
        shm.pin_dataset(pinned)
    pending: deque[tuple[tuple[int, int], Future]] = deque()
    next_to_submit = 0
    try:
        while next_to_submit < len(ranges) or pending:
            while (next_to_submit < len(ranges) and len(pending) < window
                   and not (ring is not None
                            and ring.is_borrowed(next_to_submit))):
                # The borrow check is belt-and-braces: the window guarantees
                # the slot was consumed, and a consumed-but-still-borrowed
                # slot (possible only if this loop moved) must never be
                # handed to a writer.
                start, stop = ranges[next_to_submit]
                slot = (ring.slot_name(next_to_submit)
                        if ring is not None else None)
                pending.append(((start, stop), executor.submit(
                    _stream_block, payload, start, stop,
                    next_to_submit == inject_block_fault, slot)))
                next_to_submit += 1
            (start, stop), future = pending.popleft()
            result = next(_gather([((start, stop), future)]))
            if ring is not None:
                shape = (stop - start, n)
                if tuple(result) != shape:
                    raise ShardExecutionError(
                        f"streamed block [{start}, {stop}) returned shape "
                        f"{tuple(result)}, expected {shape}",
                        block=(start, stop))
                task_index = start // rows_per_block
                if borrow_slabs:
                    # Zero-copy: the consumer reads the slot in place; the
                    # borrow is released when the consumer asks for the next
                    # block, at which point the slot may be rewritten.
                    slab = ring.borrow(task_index, shape)
                    try:
                        yield range(start, stop), slab
                    finally:
                        # Runs on normal resume AND on generator close /
                        # consumer crash, so an abandoned stream cannot leave
                        # a slot borrowed forever.
                        ring.release(task_index)
                    continue
                # Copy fallback: consume the slot before reuse.
                slab = ring.read(task_index, shape)
            else:
                slab = result
            yield range(start, stop), slab
    finally:
        if ring is not None:
            # Quiesce before unlink: a cancelled future stays cancelled, but
            # a worker already writing its slab must finish (bounded) before
            # the segment under it disappears.
            _quiesce_futures([future for _, future in pending])
            ring.close()
        else:
            for _, future in pending:
                future.cancel()
        if pinned:
            shm.unpin_dataset(pinned)
        if owned:
            executor.shutdown(wait=False, cancel_futures=True)


def run_delta_shards(child: VectorDataset, delta: DatasetDelta,
                     threshold: float | None, measure: str, *,
                     reducer_specs: dict | None = None,
                     n_workers: int | None = None,
                     block_rows: int | None = None,
                     memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
                     shards_per_worker: int = 2,
                     partition_strategy: str = "striped",
                     executor_factory=None,
                     use_shared_memory: bool = True,
                     steal=None,
                     pin_workers: bool = False,
                     inject_shard_fault: int | None = None,
                     ) -> tuple[list[SimilarPair], dict[str, list]]:
    """Fan the ``Δn x n`` append cross block over the shared worker pool.

    The ingest twin of :meth:`ShardedBlockedBackend.search`: the appended
    row range of *delta* is partitioned by
    :func:`~repro.similarity.partition.partition_delta_blocks`, each shard
    scores its blocks against every column ``j < row`` (exactly the new
    pairs), and the shard results merge canonically.  Scheduling follows the
    same *steal* discipline as search — multi-worker ingest claims shards
    from a work-stealing :class:`~repro.similarity.stealing.ShardQueue` by
    default (``steal=False`` keeps the one-task-per-shard fan-out,
    ``"bound"`` the static-binding queue mode).  Returns
    ``(pairs, states)`` — the new pairs at or above *threshold* in
    ``(first, second)`` order (empty when *threshold* is ``None``) and, per
    reducer kind in *reducer_specs*, the list of shard-local ``state()``
    payloads for the caller to fold in through ``merge()`` (commutative, so
    claim order is invisible in the folded result).  Callers are expected to
    have validated the delta against the child dataset already (see
    :class:`repro.store.delta.DeltaApssBackend`).
    """
    if steal not in (None, True, False, "bound"):
        raise ValueError(f"steal must be None, True, False or 'bound', "
                         f"got {steal!r}")
    n_workers = resolve_worker_count(n_workers)
    rows_per_block = resolve_block_rows(child.n_rows, block_rows,
                                        memory_budget_mb)
    shards = partition_delta_blocks(delta.parent_rows, child.n_rows,
                                    rows_per_block,
                                    n_workers * shards_per_worker,
                                    strategy=partition_strategy)
    states: dict[str, list] = {kind: [] for kind in (reducer_specs or ())}
    if not shards:
        return [], states
    if inject_shard_fault is not None and not (
            0 <= inject_shard_fault < len(shards)):
        raise ValueError(
            f"inject_shard_fault={inject_shard_fault} is out of range: the "
            f"delta plan has {len(shards)} shard(s)")
    if n_workers <= 1:
        steal_mode = None
    elif steal is None or steal is True:
        steal_mode = "steal"
    elif steal == "bound":
        steal_mode = "bound"
    else:
        steal_mode = None
    payload = _shard_payload(child, measure,
                             use_shared_memory and n_workers > 1)
    executor, owned = _resolve_executor(n_workers, executor_factory,
                                        pin_workers)
    pinned = payload[0] == "shm" and payload[1].fingerprint
    if pinned:
        shm.pin_dataset(pinned)
    queue = None
    try:
        if steal_mode is not None:
            queue = stealing.ShardQueue(len(shards), n_workers)
            futures = [
                (slot, executor.submit(
                    _steal_delta_worker, payload, queue.descriptor(),
                    tuple(shards),
                    None if threshold is None else float(threshold),
                    reducer_specs, slot, steal_mode == "steal",
                    inject_shard_fault, claim_gate=None))
                for slot in range(n_workers)]
            results = _gather_steal(
                futures, owned_executor=executor if owned else None)
            _check_claim_coverage(results, shards)
            # One pair chunk per runner; per-shard reducer states are
            # folded directly (merge is commutative, so runner/claim
            # order is invisible in the folded result).
            chunks = [(chunk[0], chunk[1], chunk[2], {})
                      for _, _, chunk, _ in results]
            for _, _, _, states_list in results:
                for shard_states in states_list:
                    for kind, state in shard_states.items():
                        states[kind].append(state)
        else:
            futures = [
                (shard, executor.submit(
                    _delta_shard, payload, shard,
                    None if threshold is None else float(threshold),
                    reducer_specs, shard.shard_id == inject_shard_fault))
                for shard in shards]
            chunks = list(_gather(
                futures, owned_executor=executor if owned else None))
    finally:
        if queue is not None:
            queue.close()
        if pinned:
            shm.unpin_dataset(pinned)
        if owned:
            executor.shutdown(wait=False, cancel_futures=True)
    for *_, shard_states in chunks:
        for kind, state in shard_states.items():
            states[kind].append(state)
    pairs = ([] if threshold is None
             else _canonical_pair_list([c[:3] for c in chunks]))
    return pairs, states
