"""Backend protocol and registry for the pluggable APSS engine.

Every backend answers the same question — "which pairs of rows have
similarity at least *threshold*?" — with its own time/space/accuracy
trade-off.  Backends self-register with :func:`register_backend` so that the
engine (and the cross-backend parity test harness) can enumerate them by
name without hard-coding the roster anywhere.

Adding a backend
----------------
1. Subclass :class:`ApssBackend`, set ``name``, ``exact`` and ``measures``.
2. Implement ``search(dataset, threshold, measure) -> BackendOutput``.
3. Decorate the class with ``@register_backend`` and import the module from
   :mod:`repro.similarity.backends` so registration runs.
4. The parity suite in ``tests/similarity/test_engine_parity.py`` picks the
   backend up automatically and checks it against ``exact-loop``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import ClassVar

from repro.datasets.vectors import VectorDataset
from repro.similarity.types import SimilarPair

__all__ = ["BackendOutput", "ApssBackend", "register_backend", "make_backend",
           "get_backend_class", "available_backends"]


@dataclass
class BackendOutput:
    """What a backend hands back to the engine.

    ``n_candidates`` counts the pairs the backend actually scored or
    verified; ``n_pruned`` the pairs it discarded without a full similarity
    computation.  ``details`` carries backend-specific extras (e.g. the
    full :class:`~repro.lsh.bayeslsh.ApssResult` for the LSH backend).
    """

    pairs: list[SimilarPair]
    n_candidates: int = 0
    n_pruned: int = 0
    details: dict = field(default_factory=dict)


class ApssBackend(ABC):
    """One strategy for thresholded all-pairs similarity search.

    Class attributes
    ----------------
    name:
        Registry key, also used in CLI/benchmark output.
    exact:
        Whether the backend returns the exact pair set (vs. an estimate).
    measures:
        Tuple of supported measure names, or ``None`` for "any measure
        registered in :mod:`repro.similarity.measures`".
    """

    name: ClassVar[str]
    exact: ClassVar[bool] = True
    measures: ClassVar[tuple[str, ...] | None] = None
    #: Constructor options that change *how* a search executes (worker
    #: counts, injected executors, fault hooks) but never *what* it returns.
    #: Sweep caches strip these from their keys so e.g. a 4-worker pass can
    #: serve a threshold first searched with 1 worker.
    execution_options: ClassVar[tuple[str, ...]] = ()

    @classmethod
    def parity_variants(cls) -> list[dict]:
        """Option sets the cross-backend parity suite must cover.

        The default is one variant with default options.  Backends whose
        correctness depends on configuration seams (e.g. the sharded
        backend's worker count) override this so the parity suite exercises
        each seam automatically — new variants get tested for free.
        """
        return [{}]

    def supports(self, measure: str) -> bool:
        """Whether this backend can evaluate *measure*."""
        return self.measures is None or measure in self.measures

    def check_measure(self, measure: str) -> None:
        """Raise ``ValueError`` when *measure* is outside this backend's set."""
        if not self.supports(measure):
            raise ValueError(
                f"backend {self.name!r} does not support measure {measure!r}; "
                f"supported: {list(self.measures or ())}")

    @abstractmethod
    def search(self, dataset: VectorDataset, threshold: float,
               measure: str = "cosine") -> BackendOutput:
        """Return every pair with similarity >= *threshold* (per the backend's
        accuracy contract)."""


_REGISTRY: dict[str, type[ApssBackend]] = {}


def register_backend(cls: type[ApssBackend]) -> type[ApssBackend]:
    """Class decorator adding *cls* to the backend registry under ``cls.name``."""
    name = getattr(cls, "name", None)
    if not name:
        raise ValueError("backend classes must define a non-empty 'name'")
    _REGISTRY[name] = cls
    return cls


def get_backend_class(name: str) -> type[ApssBackend]:
    """Look up a backend class by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown APSS backend {name!r}; "
                       f"known: {available_backends()}") from None


def make_backend(name: str, **options) -> ApssBackend:
    """Instantiate the backend registered under *name* with *options*."""
    return get_backend_class(name)(**options)


def available_backends() -> list[str]:
    """Sorted names of every registered backend."""
    return sorted(_REGISTRY)
