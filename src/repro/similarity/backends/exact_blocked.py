"""Blocked, vectorised exact APSS over the CSR arrays.

The dataset is wrapped (zero-copy) in a ``scipy.sparse`` CSR matrix and the
Gram matrix is computed one row-block at a time: ``block @ X.T`` yields every
inner product of the block's rows against the whole dataset in one sparse
matmul, after which thresholding and pair extraction are pure numpy.  The
block size is derived from a configurable memory budget so peak memory stays
flat regardless of dataset size — the FDB-style "batched operator" shape that
later sharding/async PRs can split across workers.

Measure support:

* ``cosine`` — rows are L2-normalised once; the product *is* the similarity.
* ``jaccard`` — rows are binarised; the product counts feature intersections
  and unions follow from per-row feature counts.
* ``dot`` — the raw product.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.datasets.vectors import VectorDataset
from repro.similarity.backends.base import ApssBackend, BackendOutput, register_backend
from repro.similarity.types import SimilarPair

__all__ = ["ExactBlockedBackend"]


@register_backend
class ExactBlockedBackend(ApssBackend):
    """NumPy/SciPy blocked Gram-matrix kernel.

    Parameters
    ----------
    block_rows:
        Rows per block.  Defaults to whatever fits the memory budget.
    memory_budget_mb:
        Approximate cap on the scratch memory of one block (the densified
        ``block_rows x n_rows`` similarity slab plus jaccard temporaries).
    """

    name = "exact-blocked"
    exact = True
    measures = ("cosine", "jaccard", "dot")

    def __init__(self, block_rows: int | None = None,
                 memory_budget_mb: float = 64.0) -> None:
        if block_rows is not None and block_rows <= 0:
            raise ValueError("block_rows must be positive")
        if memory_budget_mb <= 0:
            raise ValueError("memory_budget_mb must be positive")
        self.block_rows = block_rows
        self.memory_budget_mb = float(memory_budget_mb)

    # ------------------------------------------------------------------ #
    def _resolve_block_rows(self, n_rows: int) -> int:
        if self.block_rows is not None:
            return min(self.block_rows, max(1, n_rows))
        # One block densifies to block_rows * n_rows float64s; keep roughly
        # four such slabs (product, union, mask, scratch) inside the budget.
        budget_bytes = self.memory_budget_mb * 1024 * 1024
        rows = int(budget_bytes // (8 * 4 * max(1, n_rows)))
        return max(16, min(max(1, n_rows), rows))

    @staticmethod
    def _prepared_matrix(dataset: VectorDataset, measure: str) -> sparse.csr_matrix:
        matrix = sparse.csr_matrix(
            (dataset.data, dataset.indices, dataset.indptr),
            shape=(dataset.n_rows, dataset.n_features), copy=False)
        if measure == "cosine":
            row_sq = np.asarray(matrix.multiply(matrix).sum(axis=1)).ravel()
            norms = np.sqrt(row_sq)
            scale = np.where(norms > 0, 1.0 / np.where(norms > 0, norms, 1.0), 1.0)
            data = matrix.data * np.repeat(scale, np.diff(dataset.indptr))
            matrix = sparse.csr_matrix(
                (data, dataset.indices, dataset.indptr),
                shape=matrix.shape, copy=False)
        elif measure == "jaccard":
            matrix = sparse.csr_matrix(
                (np.ones_like(dataset.data), dataset.indices, dataset.indptr),
                shape=matrix.shape, copy=False)
        return matrix

    # ------------------------------------------------------------------ #
    def search(self, dataset: VectorDataset, threshold: float,
               measure: str = "cosine") -> BackendOutput:
        self.check_measure(measure)
        n = dataset.n_rows
        if n < 2:
            return BackendOutput(pairs=[], n_candidates=0)
        matrix = self._prepared_matrix(dataset, measure)
        transposed = matrix.T.tocsc()
        sizes = np.diff(dataset.indptr).astype(np.float64)
        block_rows = self._resolve_block_rows(n)
        column_ids = np.arange(n)

        pairs: list[SimilarPair] = []
        for start in range(0, n, block_rows):
            stop = min(start + block_rows, n)
            # Dense (stop-start, n) slab: implicit zeros become explicit 0.0
            # similarities, which keeps thresholds <= 0 exact as well.
            slab = (matrix[start:stop] @ transposed).toarray()
            if measure == "jaccard":
                union = sizes[start:stop, None] + sizes[None, :] - slab
                with np.errstate(invalid="ignore", divide="ignore"):
                    slab = np.where(union > 0, slab / np.where(union > 0, union, 1.0), 0.0)
            # Keep only the strict upper triangle (j > i, in global ids).
            keep = (slab >= threshold) & (column_ids[None, :] > np.arange(start, stop)[:, None])
            rows_local, cols = np.nonzero(keep)
            values = slab[rows_local, cols]
            for i, j, sim in zip((rows_local + start).tolist(), cols.tolist(),
                                 values.tolist()):
                pairs.append(SimilarPair(i, j, float(sim)))
        total_pairs = n * (n - 1) // 2
        return BackendOutput(pairs=pairs, n_candidates=total_pairs,
                             details={"block_rows": block_rows})
