"""Blocked, vectorised exact APSS over the CSR arrays.

The dataset is wrapped (zero-copy) in a ``scipy.sparse`` CSR matrix and the
Gram matrix is computed one row-block at a time: ``block @ X.T`` yields every
inner product of the block's rows against the whole dataset in one sparse
matmul, after which thresholding and pair extraction are pure numpy.  The
slab production itself lives in :mod:`repro.similarity.streaming`
(:func:`~repro.similarity.streaming.iter_similarity_blocks`), so this backend
and the streaming reducers (histogram, quantile, top-k) share one kernel —
the FDB-style "batched operator" shape that later sharding/async PRs can
split across workers.

Measure support:

* ``cosine`` — rows are L2-normalised once; the product *is* the similarity.
* ``jaccard`` — rows are binarised; the product counts feature intersections
  and unions follow from per-row feature counts.
* ``dot`` — the raw product.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.vectors import VectorDataset
from repro.similarity.backends.base import ApssBackend, BackendOutput, register_backend
from repro.similarity.streaming import iter_similarity_blocks, resolve_block_rows
from repro.similarity.types import SimilarPair

__all__ = ["ExactBlockedBackend"]


@register_backend
class ExactBlockedBackend(ApssBackend):
    """NumPy/SciPy blocked Gram-matrix kernel.

    Parameters
    ----------
    block_rows:
        Rows per block.  Defaults to whatever fits the memory budget.
    memory_budget_mb:
        Hard cap on the scratch memory of one block (the densified
        ``block_rows x n_rows`` similarity slab plus jaccard temporaries).
        The block size is floored at a single row, so the cap only yields
        when one row's slab is by itself larger than the budget.
    """

    name = "exact-blocked"
    exact = True
    measures = ("cosine", "jaccard", "dot")

    def __init__(self, block_rows: int | None = None,
                 memory_budget_mb: float = 64.0) -> None:
        if block_rows is not None and block_rows <= 0:
            raise ValueError("block_rows must be positive")
        if memory_budget_mb <= 0:
            raise ValueError("memory_budget_mb must be positive")
        self.block_rows = block_rows
        self.memory_budget_mb = float(memory_budget_mb)

    def _resolve_block_rows(self, n_rows: int) -> int:
        return resolve_block_rows(n_rows, self.block_rows, self.memory_budget_mb)

    # ------------------------------------------------------------------ #
    def search(self, dataset: VectorDataset, threshold: float,
               measure: str = "cosine") -> BackendOutput:
        """Extract pairs at or above *threshold* from streamed dense slabs."""
        self.check_measure(measure)
        n = dataset.n_rows
        if n < 2:
            return BackendOutput(pairs=[], n_candidates=0)
        block_rows = self._resolve_block_rows(n)
        column_ids = np.arange(n)

        pairs: list[SimilarPair] = []
        for rows, slab in iter_similarity_blocks(dataset, measure,
                                                 block_rows=block_rows):
            # Keep only the strict upper triangle (j > i, in global ids).
            row_ids = np.arange(rows.start, rows.stop)
            keep = (slab >= threshold) & (column_ids[None, :] > row_ids[:, None])
            rows_local, cols = np.nonzero(keep)
            values = slab[rows_local, cols]
            for i, j, sim in zip((rows_local + rows.start).tolist(),
                                 cols.tolist(), values.tolist()):
                pairs.append(SimilarPair(i, j, float(sim)))
        total_pairs = n * (n - 1) // 2
        return BackendOutput(pairs=pairs, n_candidates=total_pairs,
                             details={"block_rows": block_rows})
