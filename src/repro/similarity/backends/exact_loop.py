"""The seed brute-force APSS loop, kept verbatim as the reference backend.

Every other backend is tested against this one: it applies the measure
function to each of the O(n^2) pairs with no vectorisation, no filtering and
no estimation, so its output *is* the specification.
"""

from __future__ import annotations

from repro.datasets.vectors import VectorDataset
from repro.similarity.backends.base import ApssBackend, BackendOutput, register_backend
from repro.similarity.measures import get_measure
from repro.similarity.types import SimilarPair

__all__ = ["ExactLoopBackend"]


@register_backend
class ExactLoopBackend(ApssBackend):
    """Per-pair Python loop over ``dataset.row(i)`` (the original seed code)."""

    name = "exact-loop"
    exact = True
    measures = None  # any registered measure function works

    def search(self, dataset: VectorDataset, threshold: float,
               measure: str = "cosine") -> BackendOutput:
        """Score every pair with the registered measure function, one by one."""
        func = get_measure(measure)
        rows = [dataset.row(i) for i in range(dataset.n_rows)]
        pairs: list[SimilarPair] = []
        n_candidates = 0
        for i in range(dataset.n_rows):
            for j in range(i + 1, dataset.n_rows):
                n_candidates += 1
                similarity = func(rows[i], rows[j])
                if similarity >= threshold:
                    pairs.append(SimilarPair(i, j, similarity))
        return BackendOutput(pairs=pairs, n_candidates=n_candidates)
