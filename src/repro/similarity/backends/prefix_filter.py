"""Sorted-feature prefix filtering (AllPairs-style candidate pruning).

Features are globally ordered by ascending document frequency (rarest
first).  For each row only a *prefix* of its ordered features is inserted
into an inverted index — the minimal prefix such that a pair sharing **no**
prefix feature provably cannot reach the threshold:

* cosine (rows L2-normalised): if the overlap is confined to the suffix,
  ``sim <= ||suffix||``, so the prefix ends once the suffix norm drops
  below the threshold.
* jaccard (feature sets of size ``s``): ``sim <= (s - k) / s`` when the
  first ``k`` features are missed, so the prefix holds the first
  ``floor(s * (1 - t)) + 1`` features.

Surviving candidates are verified with the *exact same* per-pair measure
functions as the ``exact-loop`` backend, so results are bit-identical for
pairs that pass — the filter only skips hopeless pairs.  This is the
single-level analogue of the signature schemes used for stable set
similarity joins.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.datasets.vectors import VectorDataset
from repro.similarity.backends.base import ApssBackend, BackendOutput, register_backend
from repro.similarity.measures import get_measure
from repro.similarity.types import SimilarPair

__all__ = ["PrefixFilterBackend"]

#: Safety margin pushing borderline prefix cut-offs toward *longer* prefixes,
#: so floating-point noise can only ever cost extra candidates, never recall.
_PREFIX_EPS = 1e-9


@register_backend
class PrefixFilterBackend(ApssBackend):
    """Inverted-index prefix filter with exact verification."""

    name = "prefix-filter"
    exact = True
    measures = ("cosine", "jaccard")

    def search(self, dataset: VectorDataset, threshold: float,
               measure: str = "cosine") -> BackendOutput:
        """Prefix-prune hopeless pairs, exactly verify the survivors."""
        self.check_measure(measure)
        n = dataset.n_rows
        total_pairs = n * (n - 1) // 2
        if n < 2:
            return BackendOutput(pairs=[], n_candidates=0)
        if threshold <= 0.0:
            # No pair is hopeless at a non-positive threshold; fall back to
            # the blocked kernel rather than degenerating to all-pairs here.
            from repro.similarity.backends.exact_blocked import ExactBlockedBackend

            output = ExactBlockedBackend().search(dataset, threshold, measure)
            output.details["fallback"] = "exact-blocked"
            return output

        func = get_measure(measure)
        rows = [dataset.row(i) for i in range(n)]

        # Global feature order: ascending document frequency, so prefixes are
        # made of rare features and postings stay short.
        frequency = np.zeros(dataset.n_features, dtype=np.int64)
        np.add.at(frequency, dataset.indices, 1)
        rank = np.empty(dataset.n_features, dtype=np.int64)
        rank[np.argsort(frequency, kind="stable")] = np.arange(dataset.n_features)

        index: dict[int, list[int]] = defaultdict(list)
        pairs: list[SimilarPair] = []
        n_candidates = 0
        for i in range(n):
            idx, vals = rows[i]
            if len(idx) == 0:
                continue  # empty rows cannot reach a positive threshold
            order = np.argsort(rank[idx], kind="stable")
            ordered_features = idx[order]

            candidates: set[int] = set()
            for feature in ordered_features.tolist():
                candidates.update(index.get(feature, ()))
            for j in sorted(candidates):
                n_candidates += 1
                similarity = func(rows[j], rows[i])
                if similarity >= threshold:
                    pairs.append(SimilarPair(j, i, similarity))

            prefix_len = self._prefix_length(vals[order], threshold, measure)
            for feature in ordered_features[:prefix_len].tolist():
                index[feature].append(i)

        pairs.sort(key=lambda p: (p.first, p.second))
        return BackendOutput(pairs=pairs, n_candidates=n_candidates,
                             n_pruned=total_pairs - n_candidates)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _prefix_length(ordered_values: np.ndarray, threshold: float,
                       measure: str) -> int:
        size = len(ordered_values)
        if measure == "jaccard":
            return min(size, int(np.floor(size * (1.0 - threshold) + _PREFIX_EPS)) + 1)
        # cosine: find the first cut k where the *normalised* suffix norm is
        # safely below the threshold.
        norm = float(np.sqrt(np.sum(ordered_values ** 2)))
        if norm == 0.0:
            return 0  # zero row: cosine with anything is 0 < threshold
        squares = (ordered_values / norm) ** 2
        # suffix_sq[k] = ||row[k:]||^2 after normalisation, k = 1..size
        suffix_sq = np.concatenate([np.cumsum(squares[::-1])[::-1][1:], [0.0]])
        below = np.nonzero(np.sqrt(suffix_sq) < threshold - _PREFIX_EPS)[0]
        if len(below) == 0:
            return size
        return int(below[0]) + 1
