"""Pluggable APSS backends.

Importing this package registers every built-in backend:

* ``exact-loop``     — the seed per-pair Python loop (reference semantics).
* ``exact-blocked``  — blocked sparse Gram-matrix kernel (fast exact default).
* ``prefix-filter``  — sorted-feature prefix filtering + exact verification.
* ``bayeslsh``       — sketch + BayesLSH Bayesian prune/concentrate (approximate).
* ``sharded-blocked`` — the blocked kernel sharded across worker processes.

See :mod:`repro.similarity.backends.base` for the registry API and the
checklist for adding a new backend.
"""

from repro.similarity.backends.base import (
    ApssBackend,
    BackendOutput,
    available_backends,
    get_backend_class,
    make_backend,
    register_backend,
)
from repro.similarity.backends.exact_loop import ExactLoopBackend
from repro.similarity.backends.exact_blocked import ExactBlockedBackend
from repro.similarity.backends.prefix_filter import PrefixFilterBackend
from repro.similarity.backends.bayeslsh import BayesLshBackend
from repro.similarity.backends.sharded import (
    InlineShardExecutor,
    ShardedBlockedBackend,
    ShardExecutionError,
    iter_similarity_blocks_sharded,
    reset_shared_pools,
    run_delta_shards,
)

__all__ = [
    "ApssBackend",
    "BackendOutput",
    "available_backends",
    "get_backend_class",
    "make_backend",
    "register_backend",
    "ExactLoopBackend",
    "ExactBlockedBackend",
    "PrefixFilterBackend",
    "BayesLshBackend",
    "ShardedBlockedBackend",
    "ShardExecutionError",
    "InlineShardExecutor",
    "iter_similarity_blocks_sharded",
    "reset_shared_pools",
    "run_delta_shards",
]
