"""BayesLSH candidate generation + Bayesian verification as an engine backend.

Wraps the existing :mod:`repro.lsh` pipeline — sketch construction,
candidate generation (all-pairs or LSH banding) and the BayesLSH
prune/concentrate verification loop — behind the same ``search`` interface
as the exact backends.  The backend is *approximate*: retained pairs carry
posterior MAP estimates, and recall is governed by the ``epsilon`` false
negative budget of :class:`~repro.lsh.bayeslsh.BayesLSHConfig` — every
result tags ``details["recall_bound"] = 1 - epsilon``, the contract the
tiered serving layer surfaces to interactive probes.

:class:`PlasmaSession` drives the same machinery through :meth:`verify`,
passing its own long-lived sketch store, knowledge cache, empirical prior
and progress callbacks — that method is the one seam between the
interactive session and the APSS engine.

Two seams mirror the exact path so the approximate tier is a first-class
citizen rather than a dead-end:

* ``candidate_strategy="auto"`` (the default) switches from all-pairs to
  LSH banding at :data:`BANDED_DEFAULT_MIN_ROWS` rows, so large corpora get
  near-linear candidate generation without callers opting in.
* :meth:`extend` grows an approximate parent result across an append on the
  same seam as :class:`~repro.store.delta.DeltaApssBackend.extend` — sketch
  only the new rows, candidate only new-vs-all pairs, verify only those —
  giving the approximate tier the same O(Δn·n) append cost as the exact
  tier.
"""

from __future__ import annotations

from repro.datasets.vectors import DatasetDelta, VectorDataset
from repro.similarity.backends.base import ApssBackend, BackendOutput, register_backend

__all__ = ["BayesLshBackend", "BANDED_DEFAULT_MIN_ROWS"]

#: Row count at which ``candidate_strategy="auto"`` switches from all-pairs
#: to LSH banding.  Below this the quadratic candidate set is small enough
#: that banding's bucketing overhead (and its recall dependence on band
#: geometry) isn't worth it; above it the all-pairs set dominates runtime.
BANDED_DEFAULT_MIN_ROWS = 1024

_STRATEGIES = ("auto", "all", "banded")


@register_backend
class BayesLshBackend(ApssBackend):
    """Sketch -> candidates -> BayesLSH verification.

    Parameters
    ----------
    n_hashes:
        Sketch length (and per-pair hash budget).
    seed:
        Seed for sketch construction.
    config:
        Stopping-rule parameters; defaults to ``BayesLSHConfig`` with
        ``max_hashes=n_hashes``.
    candidate_strategy:
        ``"all"`` (every pair), ``"banded"`` (LSH banding) or ``"auto"``
        (banded at or above *banded_min_rows* rows, all-pairs below).
    band_size, max_bucket:
        Banding parameters (ignored for ``candidate_strategy="all"``).
    banded_min_rows:
        Auto-switch threshold; defaults to :data:`BANDED_DEFAULT_MIN_ROWS`.
    """

    name = "bayeslsh"
    exact = False
    measures = ("cosine", "jaccard")

    def __init__(self, n_hashes: int = 256, seed: int = 0, config=None,
                 candidate_strategy: str = "auto", band_size: int = 8,
                 max_bucket: int | None = 2000,
                 banded_min_rows: int | None = None) -> None:
        if candidate_strategy not in _STRATEGIES:
            raise ValueError(
                f"candidate_strategy must be one of {_STRATEGIES}")
        self.n_hashes = int(n_hashes)
        self.seed = seed
        self.config = config
        self.candidate_strategy = candidate_strategy
        self.band_size = band_size
        self.max_bucket = max_bucket
        self.banded_min_rows = (BANDED_DEFAULT_MIN_ROWS if banded_min_rows is None
                                else int(banded_min_rows))

    @classmethod
    def parity_variants(cls) -> list[dict]:
        """Cover both candidate-generation strategies in the shared suites."""
        return [{"candidate_strategy": "all"},
                {"candidate_strategy": "banded"}]

    # ------------------------------------------------------------------ #
    def _config(self, store):
        from repro.lsh.bayeslsh import BayesLSHConfig

        if self.config is not None:
            return self.config
        return BayesLSHConfig(max_hashes=store.n_hashes)

    def resolve_strategy(self, n_rows: int) -> str:
        """The concrete strategy ``"all"``/``"banded"`` used for *n_rows*."""
        if self.candidate_strategy != "auto":
            return self.candidate_strategy
        return "banded" if n_rows >= self.banded_min_rows else "all"

    def _candidates(self, store, n_rows: int,
                    new_rows: range | None = None) -> tuple[list, str]:
        from repro.lsh.candidates import all_pair_candidates, banded_candidates

        strategy = self.resolve_strategy(n_rows)
        if strategy == "all":
            return list(all_pair_candidates(n_rows, new_rows=new_rows)), strategy
        return banded_candidates(store.sketches, band_size=self.band_size,
                                 max_bucket=self.max_bucket,
                                 new_rows=new_rows), strategy

    def verify(self, store, candidates, threshold: float, *, cache=None,
               prior=None, progress_callback=None, progress_every: int = 0):
        """Run BayesLSH verification over *candidates* using *store*.

        This is the session-facing seam: the caller owns the sketch store
        (so it is built once per session, not per probe), the knowledge
        cache and the prior.  Returns the full
        :class:`~repro.lsh.bayeslsh.ApssResult`.
        """
        from repro.lsh.bayeslsh import BayesLSH

        verifier = BayesLSH(store, self._config(store), prior=prior)
        return verifier.run(candidates, threshold, cache=cache,
                            progress_callback=progress_callback,
                            progress_every=progress_every)

    # ------------------------------------------------------------------ #
    def search(self, dataset: VectorDataset, threshold: float,
               measure: str = "cosine") -> BackendOutput:
        """Sketch the dataset, then BayesLSH-verify the candidate pairs."""
        self.check_measure(measure)
        if dataset.n_rows < 2:
            return BackendOutput(pairs=[], n_candidates=0)
        from repro.lsh.sketches import build_sketch_store

        store = build_sketch_store(dataset, kind=measure,
                                   n_hashes=self.n_hashes, seed=self.seed)
        candidates, strategy = self._candidates(store, dataset.n_rows)
        result = self.verify(store, candidates, threshold)
        epsilon = float(self._config(store).epsilon)
        return BackendOutput(pairs=list(result.pairs),
                             n_candidates=result.n_candidates,
                             n_pruned=result.n_pruned,
                             details={"apss": result,
                                      "sketch_seconds": store.build_seconds,
                                      "hash_comparisons": result.hash_comparisons,
                                      "candidate_strategy": strategy,
                                      "epsilon": epsilon,
                                      "recall_bound": 1.0 - epsilon,
                                      "sketch_store": store})

    # ------------------------------------------------------------------ #
    def extend(self, parent, child: VectorDataset,
               delta: DatasetDelta | None = None, *,
               sketch_store=None, cache=None, prior=None,
               verify_fingerprint: bool = True):
        """Extend an approximate parent result across an append.

        The mirror of :meth:`repro.store.delta.DeltaApssBackend.extend` for
        the sketch tier: only the appended rows are sketched (via
        ``SketchStore.extend_rows`` when *sketch_store* is passed, or a
        seed-identical rebuild otherwise), only new-vs-all candidate pairs
        are generated, and only those are verified — O(Δn·n) total, never
        re-verifying the parent's pairs.

        Parameters
        ----------
        parent:
            An *approximate* :class:`~repro.similarity.engine.EngineResult`
            produced by this backend (exact parents belong to
            ``DeltaApssBackend``; splicing estimated new pairs into an exact
            pair set would match neither contract).
        child:
            The appended dataset.
        delta:
            Defaults to ``child.parent_delta``.
        sketch_store:
            A session's long-lived :class:`~repro.lsh.sketches.SketchStore`.
            If it covers only the parent rows it is extended in place; if
            omitted, a full store is rebuilt from the same seed (identical
            sketches, just O(n) instead of O(Δn) sketch work).
        cache, prior:
            Passed through to :meth:`verify` (session knowledge reuse).

        Returns
        -------
        A new approximate :class:`EngineResult` for the child at the
        parent's threshold floor; the parent is not mutated.
        """
        from repro.lsh.sketches import build_sketch_store
        from repro.similarity.engine import EngineResult
        from repro.utils.timers import Stopwatch

        if delta is None:
            delta = child.parent_delta
        if delta is None:
            raise ValueError("child dataset carries no parent delta; pass one "
                             "explicitly or use VectorDataset.append_rows")
        if parent.exact:
            raise ValueError(
                "cannot bayeslsh-extend exact results; use DeltaApssBackend "
                "for the exact tier")
        if parent.n_rows != delta.parent_rows:
            raise ValueError(
                f"parent result covers {parent.n_rows} rows, delta expects "
                f"{delta.parent_rows}")
        if child.n_rows != delta.child_rows:
            raise ValueError(
                f"delta describes {delta.child_rows} rows, dataset has "
                f"{child.n_rows}")
        if verify_fingerprint and child.fingerprint() != delta.child_fingerprint:
            raise ValueError(
                "dataset content does not match the delta's child fingerprint; "
                "refusing to extend stale similarity state")
        self.check_measure(parent.measure)

        watch = Stopwatch()
        watch.start()
        if sketch_store is None:
            store = build_sketch_store(child, kind=parent.measure,
                                       n_hashes=self.n_hashes, seed=self.seed)
        else:
            store = sketch_store
            if store.n_rows == delta.parent_rows:
                store.extend_rows(child, delta, verify_fingerprint=False)
            elif store.n_rows != child.n_rows:
                raise ValueError(
                    f"sketch store covers {store.n_rows} rows; expected "
                    f"{delta.parent_rows} (parent) or {child.n_rows} (child)")
        candidates, strategy = self._candidates(store, child.n_rows,
                                                new_rows=delta.new_rows)
        result = self.verify(store, candidates, parent.threshold,
                             cache=cache, prior=prior)
        merged = sorted(parent.pairs + list(result.pairs),
                        key=lambda p: (p.first, p.second))
        epsilon = float(self._config(store).epsilon)
        return EngineResult(
            backend=parent.backend, measure=parent.measure,
            threshold=parent.threshold, n_rows=child.n_rows, pairs=merged,
            exact=False, seconds=watch.stop(),
            n_candidates=result.n_candidates, n_pruned=result.n_pruned,
            details={"apss": result,
                     "hash_comparisons": result.hash_comparisons,
                     "candidate_strategy": strategy,
                     "epsilon": epsilon,
                     "recall_bound": 1.0 - epsilon,
                     "sketch_store": store,
                     "delta": {"parent_rows": delta.parent_rows,
                               "new_rows": delta.n_new,
                               "new_pairs": len(result.pairs)}})
