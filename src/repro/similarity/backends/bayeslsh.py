"""BayesLSH candidate generation + Bayesian verification as an engine backend.

Wraps the existing :mod:`repro.lsh` pipeline — sketch construction,
candidate generation (all-pairs or LSH banding) and the BayesLSH
prune/concentrate verification loop — behind the same ``search`` interface
as the exact backends.  The backend is *approximate*: retained pairs carry
posterior MAP estimates, and recall is governed by the ``epsilon`` false
negative budget of :class:`~repro.lsh.bayeslsh.BayesLSHConfig`.

:class:`PlasmaSession` drives the same machinery through :meth:`verify`,
passing its own long-lived sketch store, knowledge cache, empirical prior
and progress callbacks — that method is the one seam between the
interactive session and the APSS engine.
"""

from __future__ import annotations

from repro.datasets.vectors import VectorDataset
from repro.similarity.backends.base import ApssBackend, BackendOutput, register_backend

__all__ = ["BayesLshBackend"]


@register_backend
class BayesLshBackend(ApssBackend):
    """Sketch -> candidates -> BayesLSH verification.

    Parameters
    ----------
    n_hashes:
        Sketch length (and per-pair hash budget).
    seed:
        Seed for sketch construction.
    config:
        Stopping-rule parameters; defaults to ``BayesLSHConfig`` with
        ``max_hashes=n_hashes``.
    candidate_strategy:
        ``"all"`` (every pair) or ``"banded"`` (LSH banding).
    band_size, max_bucket:
        Banding parameters (ignored for ``candidate_strategy="all"``).
    """

    name = "bayeslsh"
    exact = False
    measures = ("cosine", "jaccard")

    def __init__(self, n_hashes: int = 256, seed: int = 0, config=None,
                 candidate_strategy: str = "all", band_size: int = 8,
                 max_bucket: int | None = 2000) -> None:
        if candidate_strategy not in ("all", "banded"):
            raise ValueError("candidate_strategy must be 'all' or 'banded'")
        self.n_hashes = int(n_hashes)
        self.seed = seed
        self.config = config
        self.candidate_strategy = candidate_strategy
        self.band_size = band_size
        self.max_bucket = max_bucket

    # ------------------------------------------------------------------ #
    def _config(self, store):
        from repro.lsh.bayeslsh import BayesLSHConfig

        if self.config is not None:
            return self.config
        return BayesLSHConfig(max_hashes=store.n_hashes)

    def verify(self, store, candidates, threshold: float, *, cache=None,
               prior=None, progress_callback=None, progress_every: int = 0):
        """Run BayesLSH verification over *candidates* using *store*.

        This is the session-facing seam: the caller owns the sketch store
        (so it is built once per session, not per probe), the knowledge
        cache and the prior.  Returns the full
        :class:`~repro.lsh.bayeslsh.ApssResult`.
        """
        from repro.lsh.bayeslsh import BayesLSH

        verifier = BayesLSH(store, self._config(store), prior=prior)
        return verifier.run(candidates, threshold, cache=cache,
                            progress_callback=progress_callback,
                            progress_every=progress_every)

    # ------------------------------------------------------------------ #
    def search(self, dataset: VectorDataset, threshold: float,
               measure: str = "cosine") -> BackendOutput:
        """Sketch the dataset, then BayesLSH-verify the candidate pairs."""
        self.check_measure(measure)
        if dataset.n_rows < 2:
            return BackendOutput(pairs=[], n_candidates=0)
        from repro.lsh.candidates import all_pair_candidates, banded_candidates
        from repro.lsh.sketches import build_sketch_store

        store = build_sketch_store(dataset, kind=measure,
                                   n_hashes=self.n_hashes, seed=self.seed)
        if self.candidate_strategy == "all":
            candidates = list(all_pair_candidates(dataset.n_rows))
        else:
            candidates = banded_candidates(store.sketches,
                                           band_size=self.band_size,
                                           max_bucket=self.max_bucket)
        result = self.verify(store, candidates, threshold)
        return BackendOutput(pairs=list(result.pairs),
                             n_candidates=result.n_candidates,
                             n_pruned=result.n_pruned,
                             details={"apss": result,
                                      "sketch_seconds": store.build_seconds,
                                      "hash_comparisons": result.hash_comparisons})
