"""Similarity measures over sparse vectors.

PLASMA-HD only requires a pairwise similarity function; the dissertation uses
cosine similarity for weighted data and Jaccard similarity for unweighted data
(e.g. Orkut).  All measures here operate on the ``(indices, values)`` row
representation exposed by :class:`repro.datasets.VectorDataset` and return a
value in [0, 1] for non-negative inputs (cosine of z-normed data may be
negative; the thresholded-graph builders clip at the user threshold).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.vectors import VectorDataset

__all__ = [
    "cosine_similarity",
    "jaccard_similarity",
    "dot_similarity",
    "get_measure",
    "pairwise_similarity_matrix",
]


def _sparse_dot(idx_a: np.ndarray, val_a: np.ndarray,
                idx_b: np.ndarray, val_b: np.ndarray) -> float:
    """Dot product of two sparse rows given as sorted index/value arrays."""
    i = j = 0
    total = 0.0
    len_a, len_b = len(idx_a), len(idx_b)
    while i < len_a and j < len_b:
        a, b = idx_a[i], idx_b[j]
        if a == b:
            total += val_a[i] * val_b[j]
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return float(total)


def cosine_similarity(row_a, row_b) -> float:
    """Cosine similarity between two ``(indices, values)`` sparse rows."""
    idx_a, val_a = row_a
    idx_b, val_b = row_b
    denom = np.sqrt(np.sum(val_a ** 2)) * np.sqrt(np.sum(val_b ** 2))
    if denom == 0:
        return 0.0
    return _sparse_dot(idx_a, val_a, idx_b, val_b) / denom


def jaccard_similarity(row_a, row_b) -> float:
    """Jaccard similarity of the *feature sets* of two sparse rows."""
    set_a = set(row_a[0].tolist())
    set_b = set(row_b[0].tolist())
    if not set_a and not set_b:
        return 0.0
    union = len(set_a | set_b)
    if union == 0:
        return 0.0
    return len(set_a & set_b) / union


def dot_similarity(row_a, row_b) -> float:
    """Raw dot product (useful for pre-normalised rows)."""
    return _sparse_dot(row_a[0], row_a[1], row_b[0], row_b[1])


_MEASURES = {
    "cosine": cosine_similarity,
    "jaccard": jaccard_similarity,
    "dot": dot_similarity,
}


def get_measure(name: str):
    """Look up a similarity measure by name ('cosine', 'jaccard', 'dot')."""
    try:
        return _MEASURES[name]
    except KeyError:
        raise KeyError(f"unknown similarity measure {name!r}; "
                       f"known: {sorted(_MEASURES)}") from None


def pairwise_similarity_matrix(dataset: VectorDataset,
                               measure: str = "cosine") -> np.ndarray:
    """Dense ``n x n`` similarity matrix (exact, quadratic; small data only).

    For cosine the computation is vectorised through a dense materialisation;
    for other measures it falls back to per-pair evaluation.
    """
    n = dataset.n_rows
    if measure == "cosine":
        dense = dataset.to_dense()
        norms = np.linalg.norm(dense, axis=1)
        nonzero = norms > 0
        norms[~nonzero] = 1.0
        normalized = dense / norms[:, None]
        sims = normalized @ normalized.T
        # A zero row has cosine 0.0 with everything — itself included, per
        # cosine_similarity(row, row) — so only nonzero rows get the exact
        # 1.0 diagonal.
        sims[np.arange(n), np.arange(n)] = np.where(nonzero, 1.0, 0.0)
        return np.clip(sims, -1.0, 1.0)
    func = get_measure(measure)
    sims = np.zeros((n, n))
    rows = [dataset.row(i) for i in range(n)]
    for i in range(n):
        # The diagonal comes from the measure itself so the matrix agrees
        # with per-pair calls everywhere: empty rows get jaccard/cosine 0.0
        # (not a fabricated 1.0) and dot gets the true squared norm.
        sims[i, i] = func(rows[i], rows[i])
        for j in range(i + 1, n):
            value = func(rows[i], rows[j])
            sims[i, j] = value
            sims[j, i] = value
    return sims
