"""Shared result types for all-pairs similarity search.

``SimilarPair`` historically lived in :mod:`repro.similarity.allpairs`; it is
defined here so that the engine backends, the LSH verification layer and the
exact baselines can all share it without import cycles.  ``allpairs`` keeps a
backward-compatible re-export.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SimilarPair"]


@dataclass(frozen=True)
class SimilarPair:
    """A pair of row ids together with their (exact or estimated) similarity."""

    first: int
    second: int
    similarity: float

    def as_tuple(self) -> tuple[int, int, float]:
        """The pair as a plain ``(first, second, similarity)`` tuple."""
        return (self.first, self.second, self.similarity)
