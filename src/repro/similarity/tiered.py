"""Two-tier HTAP serving: approximate answers now, exact refinement behind.

The paper's interactivity thesis is that an analyst should get a
bounded-error answer *immediately* and an exact one *eventually* — without
managing two systems.  :class:`TieredApssEngine` implements that over the
existing cache/store substrate:

* **Sketch tier (fast path)** — a probe is answered from LSH sketches via
  the ``bayeslsh`` backend, tagged with its recall bound ``1 − ε`` (the
  backend's false-negative budget).  Appended datasets extend the tier's
  floors in O(Δn·n) through :meth:`BayesLshBackend.extend`, and the
  resulting estimate floor is *parked* in the store under the exact tier's
  cache key so any process sharing the store can serve it.
* **Exact tier (slow path)** — each sketch answer schedules a background
  exact sweep of the same probe on the wrapped engine's exact backend.
  When it lands, :meth:`SimilarityStore.land_result` upgrades the parked
  estimate entry in place — the same upgrade-only lattice as
  :class:`~repro.core.knowledge_cache.KnowledgeCache` (exact replaces
  estimate regardless of threshold; estimate never replaces exact) — and
  subsequent probes transparently re-serve exact.

One store, one entry per key, monotone quality: the entry under the exact
key only ever moves estimate → exact, proven by the hypothesis interleaving
suite in ``tests/store/test_tier_upgrade.py``.

Snapshot interplay: the exact tier honours a pinned
:class:`~repro.store.StoreSnapshot` when the wrapped cache carries one, but
parked estimates and freshly-landed refinements are read from the *live*
entry dir — the sketch tier is freshness-first by design (estimates never
enter the MVCC lineage, so there is no version to pin them to).  A session
that wants its pinned view to advance past an upgrade steps its pin
(:meth:`PlasmaSession.await_refinement` does exactly that).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.datasets.vectors import VectorDataset
from repro.similarity.cache import CachedApssEngine
from repro.similarity.engine import EngineResult

__all__ = ["TieredAnswer", "TieredApssEngine", "DEFAULT_MAX_PENDING"]

_REFINE_MODES = ("background", "sync", "off")

#: Default bound on distinct refinement keys in flight at once.  A server
#: probing many datasets schedules one refinement per key; past this bound
#: :meth:`TieredApssEngine._schedule` blocks on the oldest in-flight
#: refinement (backpressure) instead of letting the queue — and the dict
#: tracking it — grow without limit.
DEFAULT_MAX_PENDING = 64


@dataclass
class TieredAnswer:
    """One tiered probe answer: a result, which tier served it, and how good.

    Attributes
    ----------
    result:
        The served :class:`~repro.similarity.engine.EngineResult`.
    tier:
        ``"exact"`` or ``"sketch"``.
    bound:
        Recall lower bound for the served pair set: ``1.0`` for the exact
        tier, ``1 − ε`` for the sketch tier.
    refinement:
        The pending exact-refinement future for this probe's key, or
        ``None`` when nothing is (or needs to be) in flight.
    """

    result: EngineResult
    tier: str
    bound: float
    refinement: Future | None = field(default=None, repr=False)

    @property
    def exact(self) -> bool:
        """Whether the served result is exact."""
        return self.tier == "exact"

    def __iter__(self):
        """Unpack as ``(result, tier, bound)`` — the session probe contract."""
        yield self.result
        yield self.tier
        yield self.bound


class TieredApssEngine:
    """Serve probes from sketches immediately; refine to exact behind.

    Parameters
    ----------
    cache:
        The exact-tier :class:`CachedApssEngine` (possibly snapshot-pinned).
        Built from *engine*/*store*/*snapshot* when omitted.
    engine, store, snapshot:
        Convenience constructor arguments for the exact-tier cache
        (mutually exclusive with passing *cache*).
    exact_backend, exact_options:
        Backend name/options for the refinement sweeps; defaults to the
        wrapped engine's default backend.
    sketch_options:
        Options for the sketch tier's ``bayeslsh`` backend (``n_hashes``,
        ``seed``, ``config``, ``candidate_strategy``, …), merged over
        ``{"n_hashes": 128, "seed": 0, "candidate_strategy": "auto"}``.
        They key the tier's own floors, so two tiered engines sharing a
        store reuse each other's sketch work only when their options agree.
    refine:
        ``"background"`` (default: schedule the exact sweep on a worker
        thread), ``"sync"`` (run it inline before returning — the sketch
        answer is still what the probe reports, but the store is upgraded
        by the time it returns), or ``"off"`` (never refine).
    max_pending:
        Bound on distinct refinement keys in flight at once
        (:data:`DEFAULT_MAX_PENDING`).  Scheduling past the bound blocks
        on the oldest in-flight refinement first, so a long-lived server
        probing many datasets holds at most this many queued sweeps.

    Notes
    -----
    Both tiers run on the *same* underlying :class:`ApssEngine`, so its
    ``search_calls`` counter audits every kernel invocation across tiers —
    the acceptance tests count it to prove serve paths stay kernel-free.

    Lifecycle: :meth:`close` drains the refinement worker and leaves the
    queue empty (``pending_refinements == 0``); a closed engine refuses
    :meth:`probe` rather than silently respawning its worker thread.
    """

    def __init__(self, cache: CachedApssEngine | None = None, *,
                 engine=None, store=None, snapshot=None,
                 exact_backend: str | None = None,
                 exact_options: dict | None = None,
                 sketch_options: dict | None = None,
                 refine: str = "background",
                 max_pending: int = DEFAULT_MAX_PENDING) -> None:
        if refine not in _REFINE_MODES:
            raise ValueError(f"refine must be one of {_REFINE_MODES}")
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if cache is not None and (engine is not None or store is not None
                                  or snapshot is not None):
            raise ValueError("pass either a cache or engine/store/snapshot, "
                             "not both")
        if cache is None:
            cache = CachedApssEngine(engine=engine, store=store,
                                     snapshot=snapshot)
        self.cache = cache
        # The sketch tier shares the cache's engine (one search_calls audit
        # stream) and live store, but never its snapshot: estimates live
        # outside the MVCC lineage, so the pinned manifest cannot serve them.
        self.sketch_cache = CachedApssEngine(
            engine=cache.engine,
            store=cache.store if cache.store is not None else False)
        self.exact_backend = exact_backend
        self.exact_options = dict(exact_options or {})
        self.sketch_options = {"n_hashes": 128, "seed": 0,
                               "candidate_strategy": "auto"}
        self.sketch_options.update(sketch_options or {})
        self.refine = refine
        self.max_pending = int(max_pending)
        self.sketch_answers = 0
        self.exact_answers = 0
        self.refinements = 0
        self._pending: dict[tuple, Future] = {}
        self._lock = threading.Lock()
        self._executor: ThreadPoolExecutor | None = None
        self._closed = False

    # ------------------------------------------------------------------ #
    @property
    def store(self):
        """The shared :class:`~repro.store.SimilarityStore` (or ``None``)."""
        return self.cache.store

    @property
    def epsilon(self) -> float:
        """The sketch tier's false-negative budget ε."""
        config = self.sketch_options.get("config")
        if config is not None:
            return float(config.epsilon)
        from repro.lsh.bayeslsh import BayesLSHConfig

        return float(BayesLSHConfig().epsilon)

    @property
    def recall_bound(self) -> float:
        """The sketch tier's recall contract, ``1 − ε``."""
        return 1.0 - self.epsilon

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (a closed engine refuses probes)."""
        return self._closed

    @property
    def pending_refinements(self) -> int:
        """Refinements genuinely in flight right now.

        Settled futures are pruned before counting, so a long-serving
        engine's health check reads the true queue depth — not every
        refinement it ever scheduled.  A drained (closed) engine reports 0.
        """
        with self._lock:
            self._prune_pending()
            return len(self._pending)

    def _exact_key(self, fingerprint: str, measure: str) -> tuple:
        return self.cache.cache_key(fingerprint, measure, self.exact_backend,
                                    **self.exact_options)

    # ------------------------------------------------------------------ #
    def probe(self, dataset: VectorDataset, threshold: float,
              measure: str = "cosine") -> TieredAnswer:
        """Answer *threshold* now; make it exact eventually.

        Serving order:

        1. the exact tier's floors (memory, pinned snapshot, or store) —
           kernel-free, ``tier="exact"``;
        2. the entry parked under the exact key in the *live* store — a
           freshly-landed refinement (``tier="exact"``, even when the
           pinned snapshot predates it) or a previously parked estimate
           (``tier="sketch"``);
        3. a sketch-tier answer: the ``bayeslsh`` floor for this dataset
           (cached/stored/delta-extended, else freshly computed), parked
           under the exact key and returned with ``bound = 1 − ε``.

        Every sketch answer schedules exact refinement per the *refine*
        mode; the returned :class:`TieredAnswer` carries the pending
        future so callers can await exactness explicitly.

        A closed engine raises ``RuntimeError``: serving again would have
        to respawn the refinement worker behind the caller's back, and a
        server-managed lifecycle cannot tolerate zombie worker threads.
        Build a fresh engine (over the same cache/store) to resume.
        """
        if self._closed:
            raise RuntimeError(
                "TieredApssEngine is closed; probe() after close() would "
                "respawn the refinement worker — build a fresh engine over "
                "the same store to resume serving")
        threshold = float(threshold)
        served = self.cache.peek(dataset, threshold, measure,
                                 self.exact_backend, **self.exact_options)
        if served is None and self.store is not None:
            # The live view of the same key: refinements landed after the
            # pinned snapshot, or a parked estimate from any process.
            served = self.sketch_cache.peek(
                dataset, threshold, measure, self.exact_backend,
                accept_approximate=True, **self.exact_options)
        if served is not None and served.exact:
            self.exact_answers += 1
            return TieredAnswer(served, "exact", 1.0, None)
        if served is None:
            served = self._sketch_search(dataset, threshold, measure)
        self.sketch_answers += 1
        bound = float(served.details.get("recall_bound", self.recall_bound))
        refinement = self._schedule(dataset, threshold, measure)
        return TieredAnswer(served, "sketch", bound, refinement)

    def _sketch_search(self, dataset: VectorDataset, threshold: float,
                       measure: str) -> EngineResult:
        """Compute (or reuse) the sketch tier's floor and park it."""
        served = self.sketch_cache.search(dataset, threshold, measure,
                                          backend="bayeslsh",
                                          **self.sketch_options)
        if self.store is not None:
            bayes_key = self.sketch_cache.cache_key(
                dataset.fingerprint(), measure, "bayeslsh",
                **self.sketch_options)
            floor, _, _ = self.sketch_cache._lookup_floor(
                bayes_key, threshold, install=False)
            # Park the loosest known estimate floor under the exact key so
            # sibling processes answer from it too; land_result refuses the
            # write if an exact floor already landed there (benign race).
            self.store.land_result(self._exact_key(dataset.fingerprint(),
                                                   measure),
                                   floor if floor is not None else served)
        return served

    # ------------------------------------------------------------------ #
    def _prune_pending(self) -> None:
        """Drop settled futures from the pending map (caller holds the lock).

        Settled refinements already surfaced through their own futures (the
        :class:`TieredAnswer` carries them) or a :meth:`wait` that overlapped
        them; keeping them would grow the map one entry per dataset ever
        probed and re-raise long-settled failures forever.
        """
        for key in [k for k, f in self._pending.items() if f.done()]:
            del self._pending[key]

    def _schedule(self, dataset: VectorDataset, threshold: float,
                  measure: str) -> Future | None:
        """Ensure one exact refinement is in flight for this probe's key.

        The pending map is pruned of settled futures on every call and
        bounded by ``max_pending``: once that many keys are in flight, the
        scheduler blocks on the oldest one (backpressure) before admitting
        a new sweep, so sustained serving over rotating datasets holds a
        bounded queue instead of leaking one future per dataset.
        """
        if self.refine == "off":
            return None
        key = self._exact_key(dataset.fingerprint(), measure)
        if self.refine == "sync":
            self._refine(dataset, threshold, measure)
            return None
        while True:
            with self._lock:
                if self._closed:
                    raise RuntimeError(
                        "TieredApssEngine is closed; cannot schedule "
                        "refinements")
                self._prune_pending()
                pending = self._pending.get(key)
                if pending is not None:
                    return pending
                if len(self._pending) < self.max_pending:
                    if self._executor is None:
                        self._executor = ThreadPoolExecutor(
                            max_workers=1, thread_name_prefix="apss-refine")
                    future = self._executor.submit(self._refine, dataset,
                                                   threshold, measure)
                    self._pending[key] = future
                    return future
                oldest = next(iter(self._pending.values()))
            # Backpressure, outside the lock so in-flight work can settle:
            # failures are not this probe's to raise — they surface through
            # the failed probe's own future (and any wait() that covers it).
            try:
                oldest.result()
            except Exception:
                pass

    def _refine(self, dataset: VectorDataset, threshold: float,
                measure: str) -> EngineResult:
        """The exact sweep whose landing upgrades the parked estimate."""
        result = self.cache.search(dataset, threshold, measure,
                                   backend=self.exact_backend,
                                   **self.exact_options)
        self.refinements += 1
        return result

    def wait(self, timeout: float | None = None) -> list[EngineResult]:
        """Block until this call's in-flight refinements finish.

        Returns the results of exactly the refinements pending when the
        call was made — later probes' sweeps are not waited for — and
        *consumes* them from the queue: a refinement is reported by at most
        one ``wait``, so a failure raises here once (the caller asked for
        exactness) and never again from ``wait``\\ s of probes long past.
        Futures still running at *timeout* stay queued for the next call.
        """
        from concurrent.futures import wait as wait_futures

        with self._lock:
            snapshot = dict(self._pending)
        wait_futures(list(snapshot.values()), timeout=timeout)
        with self._lock:
            for key, future in snapshot.items():
                if future.done() and self._pending.get(key) is future:
                    del self._pending[key]
        return [f.result() for f in snapshot.values() if f.done()]

    def close(self) -> None:
        """Drain pending refinements, stop the worker, leave a clean queue.

        Idempotent.  Every queued refinement still runs to completion (its
        store landing is not lost); once drained the pending map is cleared
        so a server health check reads ``pending_refinements == 0``.  After
        close, :meth:`probe` raises instead of respawning the worker.
        """
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        with self._lock:
            # Everything settled during shutdown(wait=True); failures have
            # already surfaced through their futures or an earlier wait().
            self._pending.clear()

    def __enter__(self) -> "TieredApssEngine":
        """Context-manager entry: the engine itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: drain refinements."""
        self.close()
