"""Two-tier HTAP serving: approximate answers now, exact refinement behind.

The paper's interactivity thesis is that an analyst should get a
bounded-error answer *immediately* and an exact one *eventually* — without
managing two systems.  :class:`TieredApssEngine` implements that over the
existing cache/store substrate:

* **Sketch tier (fast path)** — a probe is answered from LSH sketches via
  the ``bayeslsh`` backend, tagged with its recall bound ``1 − ε`` (the
  backend's false-negative budget).  Appended datasets extend the tier's
  floors in O(Δn·n) through :meth:`BayesLshBackend.extend`, and the
  resulting estimate floor is *parked* in the store under the exact tier's
  cache key so any process sharing the store can serve it.
* **Exact tier (slow path)** — each sketch answer schedules a background
  exact sweep of the same probe on the wrapped engine's exact backend.
  When it lands, :meth:`SimilarityStore.land_result` upgrades the parked
  estimate entry in place — the same upgrade-only lattice as
  :class:`~repro.core.knowledge_cache.KnowledgeCache` (exact replaces
  estimate regardless of threshold; estimate never replaces exact) — and
  subsequent probes transparently re-serve exact.

One store, one entry per key, monotone quality: the entry under the exact
key only ever moves estimate → exact, proven by the hypothesis interleaving
suite in ``tests/store/test_tier_upgrade.py``.

Snapshot interplay: the exact tier honours a pinned
:class:`~repro.store.StoreSnapshot` when the wrapped cache carries one, but
parked estimates and freshly-landed refinements are read from the *live*
entry dir — the sketch tier is freshness-first by design (estimates never
enter the MVCC lineage, so there is no version to pin them to).  A session
that wants its pinned view to advance past an upgrade steps its pin
(:meth:`PlasmaSession.await_refinement` does exactly that).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.datasets.vectors import VectorDataset
from repro.similarity.cache import CachedApssEngine
from repro.similarity.engine import EngineResult

__all__ = ["TieredAnswer", "TieredApssEngine"]

_REFINE_MODES = ("background", "sync", "off")


@dataclass
class TieredAnswer:
    """One tiered probe answer: a result, which tier served it, and how good.

    Attributes
    ----------
    result:
        The served :class:`~repro.similarity.engine.EngineResult`.
    tier:
        ``"exact"`` or ``"sketch"``.
    bound:
        Recall lower bound for the served pair set: ``1.0`` for the exact
        tier, ``1 − ε`` for the sketch tier.
    refinement:
        The pending exact-refinement future for this probe's key, or
        ``None`` when nothing is (or needs to be) in flight.
    """

    result: EngineResult
    tier: str
    bound: float
    refinement: Future | None = field(default=None, repr=False)

    @property
    def exact(self) -> bool:
        """Whether the served result is exact."""
        return self.tier == "exact"

    def __iter__(self):
        """Unpack as ``(result, tier, bound)`` — the session probe contract."""
        yield self.result
        yield self.tier
        yield self.bound


class TieredApssEngine:
    """Serve probes from sketches immediately; refine to exact behind.

    Parameters
    ----------
    cache:
        The exact-tier :class:`CachedApssEngine` (possibly snapshot-pinned).
        Built from *engine*/*store*/*snapshot* when omitted.
    engine, store, snapshot:
        Convenience constructor arguments for the exact-tier cache
        (mutually exclusive with passing *cache*).
    exact_backend, exact_options:
        Backend name/options for the refinement sweeps; defaults to the
        wrapped engine's default backend.
    sketch_options:
        Options for the sketch tier's ``bayeslsh`` backend (``n_hashes``,
        ``seed``, ``config``, ``candidate_strategy``, …), merged over
        ``{"n_hashes": 128, "seed": 0, "candidate_strategy": "auto"}``.
        They key the tier's own floors, so two tiered engines sharing a
        store reuse each other's sketch work only when their options agree.
    refine:
        ``"background"`` (default: schedule the exact sweep on a worker
        thread), ``"sync"`` (run it inline before returning — the sketch
        answer is still what the probe reports, but the store is upgraded
        by the time it returns), or ``"off"`` (never refine).

    Notes
    -----
    Both tiers run on the *same* underlying :class:`ApssEngine`, so its
    ``search_calls`` counter audits every kernel invocation across tiers —
    the acceptance tests count it to prove serve paths stay kernel-free.
    """

    def __init__(self, cache: CachedApssEngine | None = None, *,
                 engine=None, store=None, snapshot=None,
                 exact_backend: str | None = None,
                 exact_options: dict | None = None,
                 sketch_options: dict | None = None,
                 refine: str = "background") -> None:
        if refine not in _REFINE_MODES:
            raise ValueError(f"refine must be one of {_REFINE_MODES}")
        if cache is not None and (engine is not None or store is not None
                                  or snapshot is not None):
            raise ValueError("pass either a cache or engine/store/snapshot, "
                             "not both")
        if cache is None:
            cache = CachedApssEngine(engine=engine, store=store,
                                     snapshot=snapshot)
        self.cache = cache
        # The sketch tier shares the cache's engine (one search_calls audit
        # stream) and live store, but never its snapshot: estimates live
        # outside the MVCC lineage, so the pinned manifest cannot serve them.
        self.sketch_cache = CachedApssEngine(
            engine=cache.engine,
            store=cache.store if cache.store is not None else False)
        self.exact_backend = exact_backend
        self.exact_options = dict(exact_options or {})
        self.sketch_options = {"n_hashes": 128, "seed": 0,
                               "candidate_strategy": "auto"}
        self.sketch_options.update(sketch_options or {})
        self.refine = refine
        self.sketch_answers = 0
        self.exact_answers = 0
        self.refinements = 0
        self._pending: dict[tuple, Future] = {}
        self._lock = threading.Lock()
        self._executor: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------ #
    @property
    def store(self):
        """The shared :class:`~repro.store.SimilarityStore` (or ``None``)."""
        return self.cache.store

    @property
    def epsilon(self) -> float:
        """The sketch tier's false-negative budget ε."""
        config = self.sketch_options.get("config")
        if config is not None:
            return float(config.epsilon)
        from repro.lsh.bayeslsh import BayesLSHConfig

        return float(BayesLSHConfig().epsilon)

    @property
    def recall_bound(self) -> float:
        """The sketch tier's recall contract, ``1 − ε``."""
        return 1.0 - self.epsilon

    def _exact_key(self, fingerprint: str, measure: str) -> tuple:
        return self.cache._key(fingerprint, measure, self.exact_backend,
                               self.exact_options)

    # ------------------------------------------------------------------ #
    def probe(self, dataset: VectorDataset, threshold: float,
              measure: str = "cosine") -> TieredAnswer:
        """Answer *threshold* now; make it exact eventually.

        Serving order:

        1. the exact tier's floors (memory, pinned snapshot, or store) —
           kernel-free, ``tier="exact"``;
        2. the entry parked under the exact key in the *live* store — a
           freshly-landed refinement (``tier="exact"``, even when the
           pinned snapshot predates it) or a previously parked estimate
           (``tier="sketch"``);
        3. a sketch-tier answer: the ``bayeslsh`` floor for this dataset
           (cached/stored/delta-extended, else freshly computed), parked
           under the exact key and returned with ``bound = 1 − ε``.

        Every sketch answer schedules exact refinement per the *refine*
        mode; the returned :class:`TieredAnswer` carries the pending
        future so callers can await exactness explicitly.
        """
        threshold = float(threshold)
        served = self.cache.peek(dataset, threshold, measure,
                                 self.exact_backend, **self.exact_options)
        if served is None and self.store is not None:
            # The live view of the same key: refinements landed after the
            # pinned snapshot, or a parked estimate from any process.
            served = self.sketch_cache.peek(
                dataset, threshold, measure, self.exact_backend,
                accept_approximate=True, **self.exact_options)
        if served is not None and served.exact:
            self.exact_answers += 1
            return TieredAnswer(served, "exact", 1.0, None)
        if served is None:
            served = self._sketch_search(dataset, threshold, measure)
        self.sketch_answers += 1
        bound = float(served.details.get("recall_bound", self.recall_bound))
        refinement = self._schedule(dataset, threshold, measure)
        return TieredAnswer(served, "sketch", bound, refinement)

    def _sketch_search(self, dataset: VectorDataset, threshold: float,
                       measure: str) -> EngineResult:
        """Compute (or reuse) the sketch tier's floor and park it."""
        served = self.sketch_cache.search(dataset, threshold, measure,
                                          backend="bayeslsh",
                                          **self.sketch_options)
        if self.store is not None:
            bayes_key = self.sketch_cache._key(dataset.fingerprint(), measure,
                                               "bayeslsh", self.sketch_options)
            floor, _, _ = self.sketch_cache._lookup_floor(
                bayes_key, threshold, install=False)
            # Park the loosest known estimate floor under the exact key so
            # sibling processes answer from it too; land_result refuses the
            # write if an exact floor already landed there (benign race).
            self.store.land_result(self._exact_key(dataset.fingerprint(),
                                                   measure),
                                   floor if floor is not None else served)
        return served

    # ------------------------------------------------------------------ #
    def _schedule(self, dataset: VectorDataset, threshold: float,
                  measure: str) -> Future | None:
        """Ensure one exact refinement is in flight for this probe's key."""
        if self.refine == "off":
            return None
        key = self._exact_key(dataset.fingerprint(), measure)
        if self.refine == "sync":
            self._refine(dataset, threshold, measure)
            return None
        with self._lock:
            pending = self._pending.get(key)
            if pending is not None and not pending.done():
                return pending
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="apss-refine")
            future = self._executor.submit(self._refine, dataset, threshold,
                                           measure)
            self._pending[key] = future
        return future

    def _refine(self, dataset: VectorDataset, threshold: float,
                measure: str) -> EngineResult:
        """The exact sweep whose landing upgrades the parked estimate."""
        result = self.cache.search(dataset, threshold, measure,
                                   backend=self.exact_backend,
                                   **self.exact_options)
        self.refinements += 1
        return result

    def wait(self, timeout: float | None = None) -> list[EngineResult]:
        """Block until in-flight refinements finish; return their results.

        Raises the first refinement failure (a failed refinement must not
        pass silently — the probe answer stays servable either way, but the
        caller asked for exactness).
        """
        from concurrent.futures import wait as wait_futures

        with self._lock:
            futures = list(self._pending.values())
        wait_futures(futures, timeout=timeout)
        return [f.result() for f in futures if f.done()]

    def close(self) -> None:
        """Drain pending refinements and stop the worker thread."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "TieredApssEngine":
        """Context-manager entry: the engine itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: drain refinements."""
        self.close()
