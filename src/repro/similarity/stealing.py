"""Work-stealing shard queue for the sharded APSS backend.

The balanced partition plan (:mod:`repro.similarity.partition`) decides *what*
the shards are; this module decides *who executes them*, at runtime, under a
work-stealing discipline: every worker owns a striped subset of the shard
index space and claims its own shards first, and a worker that drains its own
stripe steals the remaining work of the most-loaded peer instead of idling at
the barrier.  One slow worker therefore straggles at most the shard it is
currently computing — everything it has not yet claimed is stolen out from
under it.

The queue is a directory of *claim files*: claiming shard ``k`` is an
``O_CREAT | O_EXCL`` create of ``claim-<k>``, which the filesystem makes
atomic across processes — exactly-once without locks, pickling live handles,
or shared-memory atomics (which CPython cannot express portably).  The winner
writes its worker slot into the file, so the parent can audit *who executed
what* after the fact (:meth:`ShardQueue.claims`).  The directory lives under
``/dev/shm`` when available and carries the shared-memory transport's
segment prefix, so the existing leak oracle (``own_shm_entries`` in the test
harness) audits queue lifetimes for free.

Determinism seam: :class:`ShardQueueClient` accepts a ``claim_gate`` — an
object whose ``acquire(worker_slot)`` is called before each claim attempt and
whose ``claimed(worker_slot, item)`` is called after each successful claim.
The test harness's ``StealOrderReplayExecutor`` injects a gate that
serialises claims into adversarial orders, simulates stragglers in virtual
time, and injects per-shard failures — making steal scheduling replayable
instead of a scheduler accident.
"""

from __future__ import annotations

import atexit
import itertools
import os
import shutil
import tempfile
from dataclasses import dataclass

from repro.similarity.partition import shard_owner

__all__ = [
    "ClaimFault",
    "ShardQueue",
    "ShardQueueClient",
    "ShardQueueDescriptor",
    "release_queues",
]

_generation = itertools.count()

#: Live parent-side queues, so interpreter exit reclaims abandoned claim
#: directories even when a search never ran its ``finally``.
_QUEUES: list["ShardQueue"] = []


def _reset_after_fork() -> None:  # pragma: no cover - exercised via children
    """Disown inherited queue handles in a forked child.

    The claim directories belong to the *parent*: a forked worker removing
    them at exit would tear the queue out from under the search that created
    it.  Children start with an empty registry instead.
    """
    _QUEUES.clear()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_after_fork)


def release_queues() -> None:
    """Remove every live claim directory (idempotent; wired to interpreter exit)."""
    while _QUEUES:
        _QUEUES.pop().close()


atexit.register(release_queues)


def _queue_base_dir() -> str:
    """Where claim directories live: ``/dev/shm`` when present, else tmp.

    Putting the directory on the same tmpfs as the shared-memory segments
    keeps claims memory-speed *and* inside the blast radius of the
    ``/dev/shm`` leak oracle the shm tests already run.
    """
    if os.path.isdir("/dev/shm") and os.access("/dev/shm", os.W_OK):
        return "/dev/shm"
    return tempfile.gettempdir()


@dataclass(frozen=True)
class ShardQueueDescriptor:
    """Everything a worker needs to claim from a queue (picklable, tiny)."""

    path: str
    n_items: int
    n_slots: int


class ClaimFault(Exception):
    """An injected claim-time failure, tagged with the item just claimed.

    Raised by :meth:`ShardQueueClient.claim` when the claim gate's
    ``claimed`` hook raises: the claim file already exists at that point, so
    the exception must carry *which* item died for the parent to attribute
    the failure to a shard.  ``args`` carry both fields, keeping the
    exception picklable across process boundaries.
    """

    def __init__(self, item: int, cause: BaseException) -> None:
        super().__init__(item, cause)
        self.item = item
        self.cause = cause


def _scan_claims(path: str, n_items: int) -> dict[int, int]:
    """Read the claim directory into ``{item: worker_slot}`` (slot -1 = unknown)."""
    claimed: dict[int, int] = {}
    for name in os.listdir(path):
        if not name.startswith("claim-"):
            continue
        try:
            item = int(name[len("claim-"):])
        except ValueError:
            continue
        if not 0 <= item < n_items:
            continue
        try:
            with open(os.path.join(path, name), encoding="ascii") as handle:
                text = handle.read().strip()
            claimed[item] = int(text) if text else -1
        except (OSError, ValueError):
            claimed[item] = -1  # mid-write or removed; still claimed
    return claimed


class ShardQueue:
    """Parent-side handle owning one work-stealing claim directory.

    ``n_items`` shards are up for grabs by ``n_slots`` workers.  Ownership is
    striped (:func:`repro.similarity.partition.shard_owner`): shard ``k``
    belongs to slot ``k % n_slots``, which matches the ``striped`` partition
    strategy's cost balancing, so the no-contention fast path degenerates to
    the static plan.  The queue itself holds no ordering state — the claim
    files *are* the state — so any number of clients in any process may claim
    concurrently.
    """

    def __init__(self, n_items: int, n_slots: int) -> None:
        if n_items < 0:
            raise ValueError("n_items must be non-negative")
        if n_slots < 1:
            raise ValueError("n_slots must be at least 1")
        from repro.similarity import shm

        self.n_items = int(n_items)
        self.n_slots = int(n_slots)
        self._path = os.path.join(
            _queue_base_dir(),
            f"{shm.SEGMENT_PREFIX}-{next(_generation):x}-q")
        os.mkdir(self._path)
        _QUEUES.append(self)

    @property
    def path(self) -> str:
        """The claim directory (one ``claim-<item>`` file per claimed shard)."""
        return self._path

    def descriptor(self) -> ShardQueueDescriptor:
        """The picklable handle workers build their clients from."""
        return ShardQueueDescriptor(path=self._path, n_items=self.n_items,
                                    n_slots=self.n_slots)

    def claimed_by(self) -> dict[int, int]:
        """``{item: worker_slot}`` for every claimed item (audit view)."""
        return _scan_claims(self._path, self.n_items)

    def claims(self) -> dict[int, int]:
        """Per-worker claim counters: ``{worker_slot: items_claimed}``.

        Every slot appears (zero-claim workers included) — the audit surface
        the backend publishes in its search details.
        """
        counts = {slot: 0 for slot in range(self.n_slots)}
        for slot in self.claimed_by().values():
            if slot in counts:
                counts[slot] += 1
        return counts

    def unclaimed(self) -> list[int]:
        """Items nobody has claimed yet, ascending."""
        claimed = self.claimed_by()
        return [item for item in range(self.n_items) if item not in claimed]

    def close(self) -> None:
        """Remove the claim directory (idempotent).

        Clients racing a close see ``FileNotFoundError`` on their next scan
        and treat the queue as drained — a cancelled search quiesces its
        surviving workers instead of crashing them.
        """
        if self in _QUEUES:
            _QUEUES.remove(self)
        shutil.rmtree(self._path, ignore_errors=True)


class ShardQueueClient:
    """Worker-side claimant over a :class:`ShardQueueDescriptor`.

    Claim policy (deterministic given the set of already-claimed items):

    1. **Own first** — the lowest unclaimed item of this worker's stripe
       (``item % n_slots == worker_slot``), preserving the plan's locality.
    2. **Steal** (when ``steal=True``) — from the victim with the most
       unclaimed items (ties to the lowest slot), taking the victim's *last*
       unclaimed item: LIFO stealing keeps the victim's own next claim — the
       item it would take first — untouched as long as possible.

    With ``steal=False`` the client executes exactly its own stripe: true
    static binding, the comparator the straggler benchmark measures stealing
    against.
    """

    def __init__(self, descriptor: ShardQueueDescriptor, worker_slot: int,
                 steal: bool = True, claim_gate=None) -> None:
        if not 0 <= worker_slot < descriptor.n_slots:
            raise ValueError(f"worker_slot {worker_slot} out of range for "
                             f"{descriptor.n_slots} slot(s)")
        self._descriptor = descriptor
        self._slot = int(worker_slot)
        self._steal = bool(steal)
        self._gate = claim_gate

    def _candidate(self, claimed: dict[int, int]) -> int | None:
        spec = self._descriptor
        remaining = [item for item in range(spec.n_items)
                     if item not in claimed]
        if not remaining:
            return None
        stripes: dict[int, list[int]] = {}
        for item in remaining:
            stripes.setdefault(shard_owner(item, spec.n_slots), []).append(item)
        own = stripes.get(self._slot)
        if own:
            return own[0]
        if not self._steal:
            return None
        victim = max(stripes, key=lambda slot: (len(stripes[slot]), -slot))
        return stripes[victim][-1]

    def claim(self) -> int | None:
        """Claim the next item for this worker, or ``None`` when drained.

        Exactly-once is the filesystem's guarantee: losing the
        ``O_CREAT | O_EXCL`` race just rescans.  A queue closed underneath
        the client (cancelled search) reads as drained, not as an error.
        """
        spec = self._descriptor
        while True:
            if self._gate is not None:
                acquire = getattr(self._gate, "acquire", None)
                if acquire is not None:
                    acquire(self._slot)
            try:
                item = self._candidate(_scan_claims(spec.path, spec.n_items))
            except FileNotFoundError:
                return None  # queue closed: treat as drained
            if item is None:
                return None
            try:
                fd = os.open(os.path.join(spec.path, f"claim-{item}"),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue  # lost the race; rescan
            except FileNotFoundError:
                return None  # queue closed mid-claim
            try:
                os.write(fd, str(self._slot).encode("ascii"))
            finally:
                os.close(fd)
            if self._gate is not None:
                hook = getattr(self._gate, "claimed", None)
                if hook is not None:
                    try:
                        hook(self._slot, item)
                    except BaseException as exc:
                        raise ClaimFault(item, exc) from exc
            return item

    def __iter__(self):
        """Iterate claims until the queue drains."""
        while True:
            item = self.claim()
            if item is None:
                return
            yield item
