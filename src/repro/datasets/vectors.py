"""Sparse vector dataset container used throughout the library.

PLASMA-HD treats every input record as a sparse non-negative weighted vector
(TF/IDF weighted text, z-normed UCI attributes, adjacency lists, ...).  The
container stores rows in a compressed sparse row layout built on numpy arrays,
which keeps memory predictable and lets similarity kernels and LSH sketch
construction run vectorised.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["DatasetDelta", "VectorDataset"]


@dataclass(frozen=True)
class DatasetDelta:
    """Provenance of an append: which rows are new relative to which parent.

    Produced by :meth:`VectorDataset.append_rows` and consumed by the delta
    ingest path (:mod:`repro.store.delta`): the fingerprints tie the delta to
    exact dataset *contents*, so stale or mismatched state can be rejected
    instead of silently merged.
    """

    parent_fingerprint: str
    child_fingerprint: str
    parent_rows: int
    child_rows: int

    @property
    def n_new(self) -> int:
        """How many rows the append added."""
        return self.child_rows - self.parent_rows

    @property
    def new_rows(self) -> range:
        """The row ids the append introduced (always a suffix)."""
        return range(self.parent_rows, self.child_rows)


class VectorDataset:
    """A collection of sparse vectors sharing one feature space.

    Parameters
    ----------
    indptr, indices, data:
        Standard CSR arrays.  Row ``i`` owns ``indices[indptr[i]:indptr[i+1]]``
        with weights ``data[indptr[i]:indptr[i+1]]``.
    n_features:
        Dimensionality of the feature space.
    labels:
        Optional per-row class labels (used by the compressed-analytics
        classification experiments and by stratified sampling).
    name:
        Human-readable dataset name.
    """

    def __init__(self, indptr, indices, data, n_features, labels=None,
                 name: str = "dataset") -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        self.n_features = int(n_features)
        self.name = name
        if self.indptr.ndim != 1 or self.indptr[0] != 0:
            raise ValueError("indptr must be 1-D and start at 0")
        if self.indptr[-1] != len(self.indices):
            raise ValueError("indptr[-1] must equal len(indices)")
        if len(self.indices) != len(self.data):
            raise ValueError("indices and data must have equal length")
        if len(self.indices) and self.indices.max(initial=0) >= self.n_features:
            raise ValueError("feature index out of range")
        self.labels = None if labels is None else np.asarray(labels)
        if self.labels is not None and len(self.labels) != self.n_rows:
            raise ValueError("labels must have one entry per row")
        #: Set by :meth:`append_rows` on the dataset it returns; ``None`` for
        #: datasets that were not produced by an append.
        self.parent_delta: DatasetDelta | None = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_rows(cls, rows: Sequence[dict[int, float] | Iterable[tuple[int, float]]],
                  n_features: int | None = None, labels=None,
                  name: str = "dataset") -> "VectorDataset":
        """Build a dataset from per-row ``{feature: weight}`` mappings."""
        indptr = [0]
        indices: list[int] = []
        data: list[float] = []
        max_feature = -1
        for row in rows:
            items = row.items() if isinstance(row, dict) else row
            pairs = sorted((int(k), float(v)) for k, v in items)
            seen = set()
            for feature, weight in pairs:
                if feature < 0:
                    raise ValueError("feature indices must be non-negative")
                if feature in seen:
                    raise ValueError(f"duplicate feature {feature} in a row")
                seen.add(feature)
                indices.append(feature)
                data.append(weight)
                max_feature = max(max_feature, feature)
            indptr.append(len(indices))
        if n_features is None:
            n_features = max_feature + 1
        return cls(indptr, indices, data, n_features, labels=labels, name=name)

    @classmethod
    def from_dense(cls, matrix, labels=None, name: str = "dataset",
                   prune_zeros: bool = True) -> "VectorDataset":
        """Build a dataset from a dense ``(n_rows, n_features)`` matrix."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("matrix must be 2-D")
        n_rows, n_features = matrix.shape
        indptr = [0]
        indices: list[int] = []
        data: list[float] = []
        for i in range(n_rows):
            row = matrix[i]
            if prune_zeros:
                nz = np.nonzero(row)[0]
            else:
                nz = np.arange(n_features)
            indices.extend(nz.tolist())
            data.extend(row[nz].tolist())
            indptr.append(len(indices))
        return cls(indptr, indices, data, n_features, labels=labels, name=name)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        return len(self.indptr) - 1

    @property
    def nnz(self) -> int:
        """Total number of stored (non-zero) entries."""
        return len(self.indices)

    @property
    def average_length(self) -> float:
        """Average number of non-zeros per row ("Avg. len" in Table 2.1)."""
        if self.n_rows == 0:
            return 0.0
        return self.nnz / self.n_rows

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(indices, weights)`` views for row *i*."""
        start, stop = self.indptr[i], self.indptr[i + 1]
        return self.indices[start:stop], self.data[start:stop]

    def row_dict(self, i: int) -> dict[int, float]:
        """Return row *i* as a ``{feature: weight}`` dict (copy)."""
        idx, vals = self.row(i)
        return dict(zip(idx.tolist(), vals.tolist()))

    def row_set(self, i: int) -> frozenset[int]:
        """Return the set of features present in row *i* (for Jaccard)."""
        idx, _ = self.row(i)
        return frozenset(idx.tolist())

    def fingerprint(self) -> str:
        """Stable content hash of the dataset (shape plus CSR arrays).

        Used as a cache key by sweep caches such as
        :class:`repro.similarity.cache.CachedApssEngine`; two datasets with
        identical rows and feature space share a fingerprint regardless of
        their ``name`` or labels.
        """
        digest = hashlib.sha1()
        digest.update(np.int64([self.n_rows, self.n_features]).tobytes())
        digest.update(self.indptr.tobytes())
        digest.update(self.indices.tobytes())
        digest.update(self.data.tobytes())
        return digest.hexdigest()

    def __len__(self) -> int:
        return self.n_rows

    def __iter__(self):
        for i in range(self.n_rows):
            yield self.row(i)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"VectorDataset(name={self.name!r}, rows={self.n_rows}, "
                f"features={self.n_features}, nnz={self.nnz})")

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Materialise the dataset as a dense numpy array."""
        out = np.zeros((self.n_rows, self.n_features))
        for i in range(self.n_rows):
            idx, vals = self.row(i)
            out[i, idx] = vals
        return out

    def l2_normalized(self) -> "VectorDataset":
        """Return a copy with every row scaled to unit Euclidean norm.

        Rows that are entirely zero are left untouched.
        """
        data = self.data.copy()
        for i in range(self.n_rows):
            start, stop = self.indptr[i], self.indptr[i + 1]
            norm = np.sqrt(np.sum(data[start:stop] ** 2))
            if norm > 0:
                data[start:stop] /= norm
        return VectorDataset(self.indptr.copy(), self.indices.copy(), data,
                             self.n_features, labels=self.labels,
                             name=self.name)

    def z_normalized(self) -> "VectorDataset":
        """Z-normalise each feature column (the Chapter 3 preprocessing).

        The result is dense in the sense that previously-zero entries of a
        column with non-zero mean become explicit values, so this is intended
        for the moderate-dimensional UCI-style datasets, not huge corpora.
        """
        dense = self.to_dense()
        mean = dense.mean(axis=0)
        std = dense.std(axis=0)
        std[std == 0] = 1.0
        dense = (dense - mean) / std
        return VectorDataset.from_dense(dense, labels=self.labels,
                                        name=self.name, prune_zeros=False)

    def subset(self, row_ids: Sequence[int], name: str | None = None) -> "VectorDataset":
        """Return a new dataset containing only *row_ids* (in that order)."""
        row_ids = list(row_ids)
        indptr = [0]
        indices: list[np.ndarray] = []
        data: list[np.ndarray] = []
        for i in row_ids:
            idx, vals = self.row(int(i))
            indices.append(idx)
            data.append(vals)
            indptr.append(indptr[-1] + len(idx))
        labels = None if self.labels is None else self.labels[row_ids]
        merged_idx = np.concatenate(indices) if indices else np.empty(0, dtype=np.int64)
        merged_data = np.concatenate(data) if data else np.empty(0)
        return VectorDataset(indptr, merged_idx, merged_data, self.n_features,
                             labels=labels,
                             name=name or f"{self.name}[{len(row_ids)} rows]")

    def append_rows(self, rows, labels=None,
                    name: str | None = None) -> "VectorDataset":
        """Return a new dataset with *rows* appended, carrying a delta record.

        The append-only ingest primitive of the persistent knowledge store:
        the parent is left untouched, and the returned child carries a
        :class:`DatasetDelta` on ``child.parent_delta`` tying the parent and
        child *content fingerprints* together, so downstream similarity state
        (pair sets, reducer state, sessions) can be extended with an
        O(new x total) delta pass instead of a full quadratic recompute.

        Parameters
        ----------
        rows:
            Either another :class:`VectorDataset` sharing this feature space,
            or a sequence of per-row ``{feature: weight}`` mappings /
            ``(feature, weight)`` iterables as accepted by :meth:`from_rows`.
        labels:
            Labels for the new rows.  Required when the parent has labels
            (a half-labelled dataset is rejected), forbidden when appending a
            :class:`VectorDataset` that carries its own labels.
        name:
            Name of the child; defaults to ``"<parent-name>+<k> rows"``.
        """
        if isinstance(rows, VectorDataset):
            if rows.n_features != self.n_features:
                raise ValueError(
                    f"appended rows have {rows.n_features} features, "
                    f"dataset has {self.n_features}")
            if labels is not None and rows.labels is not None:
                raise ValueError("pass labels via the appended dataset or the "
                                 "labels argument, not both")
            tail = rows
            if labels is None:
                labels = rows.labels
        else:
            tail = VectorDataset.from_rows(rows, n_features=self.n_features)
        if self.labels is not None and labels is None and tail.n_rows:
            raise ValueError("parent has labels; appended rows need labels too")
        if self.labels is None and labels is not None:
            raise ValueError("parent has no labels; appended labels would "
                             "leave earlier rows unlabelled")
        merged_labels = None
        if self.labels is not None:
            # labels may legitimately be absent here only for an empty
            # append (the guard above rejects unlabelled non-empty tails).
            merged_labels = (self.labels.copy() if labels is None
                             else np.concatenate([self.labels,
                                                  np.asarray(labels)]))
        child = VectorDataset(
            np.concatenate([self.indptr,
                            self.indptr[-1] + tail.indptr[1:]]),
            np.concatenate([self.indices, tail.indices]),
            np.concatenate([self.data, tail.data]),
            self.n_features, labels=merged_labels,
            name=name or f"{self.name}+{tail.n_rows} rows")
        child.parent_delta = DatasetDelta(
            parent_fingerprint=self.fingerprint(),
            child_fingerprint=child.fingerprint(),
            parent_rows=self.n_rows, child_rows=child.n_rows)
        return child

    def binarized(self) -> "VectorDataset":
        """Return a copy with all stored weights replaced by 1.0."""
        return VectorDataset(self.indptr.copy(), self.indices.copy(),
                             np.ones_like(self.data), self.n_features,
                             labels=self.labels, name=self.name)

    def characteristics(self) -> dict[str, float]:
        """Summary row matching the dataset tables in the dissertation."""
        return {
            "name": self.name,
            "vectors": self.n_rows,
            "dimensions": self.n_features,
            "avg_len": round(self.average_length, 2),
            "nnz": self.nnz,
        }
