"""Named dataset registry mirroring the dissertation's dataset tables.

The registry maps the dataset names used in Tables 2.1, 3.1, 4.3, 4.4, 4.6
and 5.1 to synthetic generator configurations.  ``load_dataset`` and
``load_transactions`` return scaled-down instances suitable for laptop-scale
benchmarking; the ``scale`` argument controls the fraction of the documented
row count that is generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.synthetic import UCI_PROFILES, make_uci_like
from repro.datasets.text import make_sparse_corpus
from repro.datasets.transactions import (
    TransactionDatabase,
    make_planted_transactions,
    make_weblike_graph_transactions,
)
from repro.datasets.vectors import VectorDataset

__all__ = ["DatasetSpec", "available_datasets", "dataset_spec",
           "load_dataset", "load_transactions"]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of a named dataset: its paper-reported shape and its kind.

    Attributes
    ----------
    name:
        Registry key.
    kind:
        ``"uci"`` (dense moderate-dimensional vectors), ``"corpus"``
        (sparse TF/IDF vectors), ``"transactions"`` (market-basket) or
        ``"webgraph"`` (adjacency-list transactions).
    paper_rows, paper_dims:
        Shape documented in the dissertation (before scaling).
    params:
        Extra generator keyword arguments.
    """

    name: str
    kind: str
    paper_rows: int
    paper_dims: int
    params: dict = field(default_factory=dict)


_SPECS: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    _SPECS[spec.name] = spec


# UCI-style dense datasets (Tables 2.1, 3.1, 5.1).
for _name, _profile in UCI_PROFILES.items():
    _register(DatasetSpec(name=_name, kind="uci", paper_rows=_profile["n_rows"],
                          paper_dims=_profile["n_features"]))

# Sparse corpora / large graphs as vectors (Tables 2.1 and 4.6).
_register(DatasetSpec("twitter", "corpus", paper_rows=146_170, paper_dims=146_170,
                      params={"avg_doc_length": 120, "n_topics": 24}))
_register(DatasetSpec("rcv1", "corpus", paper_rows=804_414, paper_dims=47_326,
                      params={"avg_doc_length": 76, "n_topics": 30}))
_register(DatasetSpec("wikiwords200", "corpus", paper_rows=494_244, paper_dims=344_352,
                      params={"avg_doc_length": 90, "n_topics": 40}))
_register(DatasetSpec("wikiwords500", "corpus", paper_rows=100_528, paper_dims=344_352,
                      params={"avg_doc_length": 150, "n_topics": 40}))
_register(DatasetSpec("wikilinks", "corpus", paper_rows=1_815_914, paper_dims=1_815_914,
                      params={"avg_doc_length": 24, "n_topics": 50}))
_register(DatasetSpec("orkut", "corpus", paper_rows=3_072_626, paper_dims=3_072_626,
                      params={"avg_doc_length": 38, "n_topics": 60, "tfidf": False}))

# FIMI-style transaction databases (Table 4.4).
_TRANSACTION_PROFILES = {
    "accidents": {"rows": 340_183, "labels": 468, "density": "dense"},
    "adult_trans": {"rows": 48_842, "labels": 130, "density": "moderate"},
    "anneal": {"rows": 898, "labels": 110, "density": "moderate"},
    "breast": {"rows": 699, "labels": 45, "density": "dense"},
    "mushroom_trans": {"rows": 8_124, "labels": 120, "density": "dense"},
    "kosarak": {"rows": 990_002, "labels": 41_000, "density": "sparse"},
    "iris_trans": {"rows": 150, "labels": 20, "density": "dense"},
    "pageblocks": {"rows": 5_473, "labels": 55, "density": "moderate"},
    "twitter_wcs": {"rows": 1_264, "labels": 900, "density": "sparse"},
    "tictactoe": {"rows": 958, "labels": 29, "density": "moderate"},
}
for _name, _profile in _TRANSACTION_PROFILES.items():
    _register(DatasetSpec(_name, "transactions", paper_rows=_profile["rows"],
                          paper_dims=_profile["labels"],
                          params={"density": _profile["density"]}))

# Web graphs viewed as adjacency transactions (Tables 4.3 and 4.6).
_WEBGRAPH_PROFILES = {
    "eu2005": {"nodes": 862_664, "avg_degree": 22},
    "it2004": {"nodes": 41_291_594, "avg_degree": 28},
    "arabic2005": {"nodes": 22_744_080, "avg_degree": 28},
    "sk2005": {"nodes": 50_636_154, "avg_degree": 38},
    "uk2006": {"nodes": 77_741_046, "avg_degree": 38},
}
for _name, _profile in _WEBGRAPH_PROFILES.items():
    _register(DatasetSpec(_name, "webgraph", paper_rows=_profile["nodes"],
                          paper_dims=_profile["nodes"],
                          params={"avg_degree": _profile["avg_degree"]}))


def available_datasets(kind: str | None = None) -> list[str]:
    """Names of registered datasets, optionally filtered by kind."""
    if kind is None:
        return sorted(_SPECS)
    return sorted(name for name, spec in _SPECS.items() if spec.kind == kind)


def dataset_spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` registered under *name*."""
    try:
        return _SPECS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(_SPECS)}") from None


def _scaled_rows(spec: DatasetSpec, scale: float, max_rows: int | None) -> int:
    rows = max(30, int(round(spec.paper_rows * scale)))
    if max_rows is not None:
        rows = min(rows, max_rows)
    return rows


def load_dataset(name: str, *, scale: float = 1.0, max_rows: int | None = 2000,
                 seed: int = 0) -> VectorDataset:
    """Load a vector dataset by registry name.

    UCI-style datasets are generated at ``scale`` times their documented row
    count; corpora are additionally capped at *max_rows* (the paper's corpora
    have hundreds of thousands to millions of rows, far beyond what the
    benchmark harness needs to reproduce the reported trends).
    """
    spec = dataset_spec(name)
    if spec.kind == "uci":
        return make_uci_like(name, scale=scale, seed=seed)
    if spec.kind == "corpus":
        rows = _scaled_rows(spec, scale if scale < 1.0 else 0.002, max_rows)
        vocab = max(200, min(spec.paper_dims, 20 * rows))
        params = dict(spec.params)
        return make_sparse_corpus(rows, vocab, seed=seed, name=name, **params)
    raise ValueError(f"dataset {name!r} is of kind {spec.kind!r}; "
                     "use load_transactions() for transactional data")


def load_transactions(name: str, *, scale: float = 1.0,
                      max_rows: int | None = 3000,
                      seed: int = 0) -> TransactionDatabase:
    """Load a transaction database by registry name (FIMI-style or web graph)."""
    spec = dataset_spec(name)
    if spec.kind == "transactions":
        rows = _scaled_rows(spec, scale if scale < 1.0 else 0.05, max_rows)
        labels = min(spec.paper_dims, max(30, rows // 2))
        return make_planted_transactions(rows, labels, seed=seed, name=name,
                                         **spec.params)
    if spec.kind == "webgraph":
        rows = _scaled_rows(spec, scale if scale < 1.0 else 0.0005, max_rows)
        return make_weblike_graph_transactions(rows, seed=seed, name=name,
                                               **spec.params)
    raise ValueError(f"dataset {name!r} is of kind {spec.kind!r}; "
                     "use load_dataset() for vector data")
