"""Synthetic sparse TF/IDF-like corpora.

Stand-ins for the large sparse datasets of Tables 2.1 and 4.6 (Twitter
follower vectors, RCV1 news articles, Wikipedia words/links, Orkut
friendships).  Documents are generated from a topic model with a Zipfian
vocabulary, which yields the two properties the PLASMA-HD experiments rely
on: heavy-tailed feature frequencies (so LSH sketches and min-hash
localization behave realistically) and latent topical clusters (so pair
counts, triangles and compressibility change sharply with the similarity
threshold).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.vectors import VectorDataset
from repro.datasets.synthetic import seeded_name
from repro.utils.random_state import ensure_rng, resolve_seed
from repro.utils.validation import check_positive_int

__all__ = ["make_sparse_corpus"]


def _zipf_weights(vocabulary_size: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, vocabulary_size + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def make_sparse_corpus(n_docs: int, vocabulary_size: int, *,
                       avg_doc_length: int = 40, n_topics: int = 8,
                       topic_concentration: float = 0.85,
                       zipf_exponent: float = 1.1, tfidf: bool = True,
                       seed=None, name: str | None = None) -> VectorDataset:
    """Generate a sparse document-term dataset with latent topics.

    Parameters
    ----------
    n_docs, vocabulary_size:
        Corpus shape.
    avg_doc_length:
        Mean number of distinct terms per document (Poisson distributed).
    n_topics:
        Number of latent topics; each topic owns a disjoint slice of the
        vocabulary plus a shared background.
    topic_concentration:
        Probability that a term is drawn from the document's own topic slice
        rather than the global background distribution.  Higher values make
        documents from the same topic more similar.
    zipf_exponent:
        Skew of the within-slice term distribution.
    tfidf:
        If True, weight each term by ``tf * log(n_docs / df)`` and
        L2-normalise rows, matching the corpora used in the dissertation.
    """
    check_positive_int(n_docs, "n_docs")
    check_positive_int(vocabulary_size, "vocabulary_size")
    check_positive_int(n_topics, "n_topics")
    if avg_doc_length <= 0:
        raise ValueError("avg_doc_length must be positive")
    if not 0.0 <= topic_concentration <= 1.0:
        raise ValueError("topic_concentration must lie in [0, 1]")
    seed = resolve_seed(seed)
    name = seeded_name("corpus", seed, name)
    rng = ensure_rng(seed)

    slice_size = max(1, vocabulary_size // n_topics)
    background = _zipf_weights(vocabulary_size, zipf_exponent)

    topic_term_weights = []
    for topic in range(n_topics):
        start = topic * slice_size
        stop = vocabulary_size if topic == n_topics - 1 else (topic + 1) * slice_size
        weights = _zipf_weights(stop - start, zipf_exponent)
        topic_term_weights.append((start, stop, weights))

    doc_topics = rng.integers(0, n_topics, size=n_docs)
    term_counts: list[dict[int, int]] = []
    document_frequency = np.zeros(vocabulary_size, dtype=np.int64)

    for doc in range(n_docs):
        length = max(2, rng.poisson(avg_doc_length))
        start, stop, weights = topic_term_weights[doc_topics[doc]]
        counts: dict[int, int] = {}
        from_topic = rng.random(length) < topic_concentration
        n_topic_terms = int(from_topic.sum())
        if n_topic_terms:
            topical = rng.choice(np.arange(start, stop), size=n_topic_terms, p=weights)
            for term in topical:
                counts[int(term)] = counts.get(int(term), 0) + 1
        n_background = length - n_topic_terms
        if n_background:
            global_terms = rng.choice(vocabulary_size, size=n_background, p=background)
            for term in global_terms:
                counts[int(term)] = counts.get(int(term), 0) + 1
        term_counts.append(counts)
        for term in counts:
            document_frequency[term] += 1

    rows = []
    for counts in term_counts:
        if tfidf:
            row = {}
            for term, tf in counts.items():
                idf = np.log((1.0 + n_docs) / (1.0 + document_frequency[term])) + 1.0
                row[term] = tf * idf
        else:
            row = {term: float(tf) for term, tf in counts.items()}
        rows.append(row)

    dataset = VectorDataset.from_rows(rows, n_features=vocabulary_size,
                                      labels=doc_topics, name=name)
    if tfidf:
        dataset = dataset.l2_normalized()
    return dataset
