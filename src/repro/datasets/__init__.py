"""Datasets: sparse/dense vector data, transaction databases and generators.

The dissertation evaluates on UCI machine-learning datasets (wine, abalone,
mushroom, image segmentation, ...), large sparse text/graph corpora (Twitter,
RCV1, Wikipedia, Orkut, web graphs) and FIMI transaction databases.  None of
those can be downloaded in this offline environment, so this package provides
deterministic synthetic generators whose *shape* (record count, dimensionality,
sparsity, cluster structure, weighting scheme) matches the documented
characteristics, scaled to laptop size.  Every generator takes a ``seed`` so
experiments are reproducible.
"""

from repro.datasets.vectors import DatasetDelta, VectorDataset
from repro.datasets.synthetic import (
    make_clustered_vectors,
    make_toy_dataset,
    make_uci_like,
)
from repro.datasets.text import make_sparse_corpus
from repro.datasets.transactions import (
    TransactionDatabase,
    make_planted_transactions,
    make_weblike_graph_transactions,
    make_labeled_transactions,
)
from repro.datasets.registry import (
    DatasetSpec,
    available_datasets,
    dataset_spec,
    load_dataset,
    load_transactions,
)

__all__ = [
    "DatasetDelta",
    "VectorDataset",
    "make_clustered_vectors",
    "make_toy_dataset",
    "make_uci_like",
    "make_sparse_corpus",
    "TransactionDatabase",
    "make_planted_transactions",
    "make_weblike_graph_transactions",
    "make_labeled_transactions",
    "DatasetSpec",
    "available_datasets",
    "dataset_spec",
    "load_dataset",
    "load_transactions",
]
