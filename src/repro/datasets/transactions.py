"""Transaction databases: the input format of LAM and its baselines.

A transaction database maps row ids to sets of integer item labels.  It is
the representation Chapter 4 uses both for FIMI-style market-basket data
(Table 4.4) and for web graphs viewed as adjacency-list transactions
(Tables 4.3 and 4.6).  The generators here plant overlapping frequent
patterns and power-law item frequencies so that compression behaviour (code
tables, pattern-length distributions, compressibility phase shifts) matches
the qualitative shape of the paper's datasets.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.utils.random_state import ensure_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "TransactionDatabase",
    "make_planted_transactions",
    "make_weblike_graph_transactions",
    "make_labeled_transactions",
]


class TransactionDatabase:
    """An immutable list of transactions over integer item labels.

    Parameters
    ----------
    transactions:
        Iterable of item collections.  Items within a transaction are stored
        as a sorted tuple of unique non-negative integers.
    n_labels:
        Size of the label universe ``L``; defaults to ``max item + 1``.
    labels:
        Optional per-transaction class labels (for compressed analytics).
    name:
        Human-readable name.
    """

    def __init__(self, transactions: Iterable[Iterable[int]],
                 n_labels: int | None = None, labels=None,
                 name: str = "transactions") -> None:
        rows: list[tuple[int, ...]] = []
        max_item = -1
        for transaction in transactions:
            items = tuple(sorted({int(i) for i in transaction}))
            if items and items[0] < 0:
                raise ValueError("item labels must be non-negative")
            if items:
                max_item = max(max_item, items[-1])
            rows.append(items)
        self._rows = rows
        self.n_labels = int(n_labels) if n_labels is not None else max_item + 1
        if max_item >= self.n_labels:
            raise ValueError("n_labels smaller than largest item label")
        self.name = name
        self.labels = None if labels is None else list(labels)
        if self.labels is not None and len(self.labels) != len(rows):
            raise ValueError("labels must have one entry per transaction")

    # ------------------------------------------------------------------ #
    @property
    def n_transactions(self) -> int:
        return len(self._rows)

    @property
    def size(self) -> int:
        """Database size |D|: the sum of transaction lengths."""
        return sum(len(row) for row in self._rows)

    @property
    def average_length(self) -> float:
        if not self._rows:
            return 0.0
        return self.size / len(self._rows)

    def transaction(self, i: int) -> tuple[int, ...]:
        return self._rows[i]

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    def __getitem__(self, i: int) -> tuple[int, ...]:
        return self._rows[i]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TransactionDatabase(name={self.name!r}, "
                f"transactions={self.n_transactions}, labels={self.n_labels}, "
                f"size={self.size})")

    # ------------------------------------------------------------------ #
    def support(self, itemset: Iterable[int]) -> int:
        """Exact frequency nu(I): number of transactions containing *itemset*."""
        target = frozenset(int(i) for i in itemset)
        if not target:
            return self.n_transactions
        return sum(1 for row in self._rows if target.issubset(row))

    def item_frequencies(self) -> dict[int, int]:
        """Frequency of every individual item present in the database."""
        counts: dict[int, int] = {}
        for row in self._rows:
            for item in row:
                counts[item] = counts.get(item, 0) + 1
        return counts

    def subset(self, row_ids: Sequence[int], name: str | None = None) -> "TransactionDatabase":
        """Return a new database containing only *row_ids* (in that order)."""
        rows = [self._rows[int(i)] for i in row_ids]
        labels = None
        if self.labels is not None:
            labels = [self.labels[int(i)] for i in row_ids]
        return TransactionDatabase(rows, n_labels=self.n_labels, labels=labels,
                                   name=name or f"{self.name}[{len(rows)} rows]")

    def sample(self, fraction: float, seed=None) -> "TransactionDatabase":
        """Uniform random sample of a *fraction* of the transactions."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must lie in (0, 1]")
        rng = ensure_rng(seed)
        n_keep = max(1, int(round(fraction * self.n_transactions)))
        keep = rng.choice(self.n_transactions, size=n_keep, replace=False)
        return self.subset(sorted(int(i) for i in keep),
                           name=f"{self.name}[{fraction:.0%} sample]")

    def characteristics(self) -> dict[str, float]:
        """Summary row matching Tables 4.3 / 4.4 / 4.6."""
        return {
            "name": self.name,
            "transactions": self.n_transactions,
            "labels": self.n_labels,
            "avg_len": round(self.average_length, 2),
            "size": self.size,
        }

    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph_adjacency(cls, adjacency: dict[int, Iterable[int]],
                             n_nodes: int | None = None,
                             name: str = "graph") -> "TransactionDatabase":
        """View a graph as a transactional matrix (one row per node).

        This is the graph-to-transactions mapping Chapter 4 uses: dense areas
        of the graph correspond to frequent patterns in the matrix.
        """
        if n_nodes is None:
            n_nodes = 0
            for node, neighbors in adjacency.items():
                n_nodes = max(n_nodes, node + 1,
                              max((n + 1 for n in neighbors), default=0))
        rows = [sorted(adjacency.get(node, ())) for node in range(n_nodes)]
        return cls(rows, n_labels=n_nodes, name=name)


# --------------------------------------------------------------------------- #
# Generators
# --------------------------------------------------------------------------- #
def make_planted_transactions(n_transactions: int, n_labels: int, *,
                              n_patterns: int = 10,
                              pattern_length: tuple[int, int] = (4, 12),
                              pattern_support: tuple[float, float] = (0.02, 0.15),
                              noise_items: int = 4, density: str = "moderate",
                              seed=None, name: str = "planted") -> TransactionDatabase:
    """Generate transactions containing planted frequent itemsets plus noise.

    Each planted pattern is a random itemset of length drawn from
    *pattern_length*; it is embedded into a random *pattern_support* fraction
    of the transactions.  Remaining items per transaction are drawn from a
    Zipfian background.  ``density`` scales how many background items each
    transaction carries ("sparse", "moderate" or "dense"), mirroring the
    density column of Table 4.4.
    """
    check_positive_int(n_transactions, "n_transactions")
    check_positive_int(n_labels, "n_labels")
    rng = ensure_rng(seed)

    density_to_noise = {"sparse": noise_items,
                        "moderate": noise_items * 2,
                        "dense": noise_items * 4}
    if density not in density_to_noise:
        raise ValueError("density must be 'sparse', 'moderate' or 'dense'")
    background_per_row = density_to_noise[density]

    ranks = np.arange(1, n_labels + 1, dtype=float)
    background = ranks ** -1.05
    background /= background.sum()

    patterns: list[tuple[int, ...]] = []
    for _ in range(n_patterns):
        length = int(rng.integers(pattern_length[0], pattern_length[1] + 1))
        length = min(length, n_labels)
        pattern = tuple(sorted(rng.choice(n_labels, size=length, replace=False).tolist()))
        patterns.append(pattern)

    rows: list[set[int]] = [set() for _ in range(n_transactions)]
    for pattern in patterns:
        support = rng.uniform(*pattern_support)
        n_hits = max(2, int(round(support * n_transactions)))
        hits = rng.choice(n_transactions, size=min(n_hits, n_transactions),
                          replace=False)
        for row_id in hits:
            rows[int(row_id)].update(pattern)

    for row in rows:
        n_background = max(1, rng.poisson(background_per_row))
        extra = rng.choice(n_labels, size=n_background, p=background)
        row.update(int(i) for i in extra)

    return TransactionDatabase(rows, n_labels=n_labels, name=name)


def make_weblike_graph_transactions(n_nodes: int, *, avg_degree: int = 20,
                                    n_communities: int = 12,
                                    within_community: float = 0.85,
                                    seed=None,
                                    name: str = "webgraph") -> TransactionDatabase:
    """Generate a power-law, community-structured graph as adjacency transactions.

    Stands in for the web graphs of Table 4.3 (EU2005, UK2006, ...): node
    degrees are heavy tailed, and most edges stay within a community so the
    adjacency-list transactions contain many repeated dense blocks (the link
    farms / near-cliques LAM compresses well).
    """
    check_positive_int(n_nodes, "n_nodes")
    check_positive_int(n_communities, "n_communities")
    rng = ensure_rng(seed)

    community = rng.integers(0, n_communities, size=n_nodes)
    members: list[np.ndarray] = [np.where(community == c)[0] for c in range(n_communities)]
    # Heavy-tailed target degrees (Pareto), clipped to the node count.
    degrees = np.minimum(
        (rng.pareto(2.0, size=n_nodes) + 1.0) * avg_degree / 2.0,
        n_nodes - 1,
    ).astype(int)

    adjacency: dict[int, set[int]] = {node: set() for node in range(n_nodes)}
    for node in range(n_nodes):
        own = members[community[node]]
        for _ in range(max(1, degrees[node])):
            if rng.random() < within_community and len(own) > 1:
                target = int(own[rng.integers(len(own))])
            else:
                target = int(rng.integers(n_nodes))
            if target != node:
                adjacency[node].add(target)
    return TransactionDatabase.from_graph_adjacency(adjacency, n_nodes=n_nodes,
                                                    name=name)


def make_labeled_transactions(n_transactions: int, n_labels: int, n_classes: int, *,
                              patterns_per_class: int = 4,
                              pattern_length: tuple[int, int] = (3, 8),
                              class_pattern_support: float = 0.6,
                              noise_items: int = 5, seed=None,
                              name: str = "labeled") -> TransactionDatabase:
    """Generate transactions whose classes are defined by discriminative patterns.

    Used by the compressed-analytics classification experiment (Figure 4.9):
    each class owns a handful of characteristic itemsets, each transaction of
    that class contains a random subset of them plus background noise, so a
    classifier built from class-specific compressing patterns can recover the
    label.
    """
    check_positive_int(n_classes, "n_classes")
    rng = ensure_rng(seed)

    class_patterns: list[list[tuple[int, ...]]] = []
    for _ in range(n_classes):
        patterns = []
        for _ in range(patterns_per_class):
            length = int(rng.integers(pattern_length[0], pattern_length[1] + 1))
            pattern = tuple(sorted(
                rng.choice(n_labels, size=min(length, n_labels), replace=False).tolist()))
            patterns.append(pattern)
        class_patterns.append(patterns)

    rows: list[set[int]] = []
    labels: list[int] = []
    for _ in range(n_transactions):
        cls = int(rng.integers(n_classes))
        row: set[int] = set()
        for pattern in class_patterns[cls]:
            if rng.random() < class_pattern_support:
                row.update(pattern)
        n_background = max(1, rng.poisson(noise_items))
        row.update(int(i) for i in rng.integers(0, n_labels, size=n_background))
        rows.append(row)
        labels.append(cls)
    return TransactionDatabase(rows, n_labels=n_labels, labels=labels, name=name)
