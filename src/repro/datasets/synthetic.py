"""Synthetic dense/moderate-dimensional vector datasets.

These generators stand in for the UCI datasets the dissertation evaluates on
(wine, abalone, adult, image segmentation, ...).  They produce mixtures of
Gaussian clusters with controllable separation, per-cluster covariance scale
and background noise, which is the property that actually drives every
reported trend: well-separated clusters make the thresholded similarity graph
show clear community structure at intermediate thresholds, produce triangle
and compressibility "phase shifts", and give parallel-coordinates clusters to
de-clutter.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.vectors import VectorDataset
from repro.utils.random_state import ensure_rng, resolve_seed
from repro.utils.validation import check_positive_int

__all__ = ["make_clustered_vectors", "make_toy_dataset", "make_uci_like",
           "seeded_name"]


def seeded_name(base: str, seed, name: str | None = None) -> str:
    """The dataset name to use: *name* if given, else *base* tagged with *seed*.

    Tagging the **resolved** seed (see
    :func:`repro.utils.random_state.resolve_seed`) into the default name means
    a failing test that prints its dataset always prints enough to rebuild it
    — even when the caller never chose a seed.
    """
    if name is not None:
        return name
    tag = seed if not isinstance(seed, np.random.Generator) else "external-rng"
    return f"{base}[seed={tag}]"


def make_clustered_vectors(n_rows: int, n_features: int, n_clusters: int, *,
                           separation: float = 4.0, cluster_std: float = 1.0,
                           noise_fraction: float = 0.0, weights=None,
                           seed=None, name: str | None = None) -> VectorDataset:
    """Generate a Gaussian-mixture dataset with known cluster labels.

    Parameters
    ----------
    n_rows, n_features, n_clusters:
        Size of the dataset.
    separation:
        Distance scale between cluster centroids; larger values give cleaner
        community structure in the induced similarity graph.
    cluster_std:
        Standard deviation of points around their centroid.
    noise_fraction:
        Fraction of rows drawn uniformly from the bounding box instead of any
        cluster (label ``-1``).
    weights:
        Optional relative cluster sizes (defaults to balanced clusters).
    seed:
        Seed or generator for reproducibility.  ``None`` draws (and reports)
        a fresh concrete seed rather than an unrecoverable stream.
    name:
        Dataset name; when omitted, the default name embeds the resolved
        seed (``clustered[seed=NNN]``) so failures reproduce from the name.
    """
    check_positive_int(n_rows, "n_rows")
    check_positive_int(n_features, "n_features")
    check_positive_int(n_clusters, "n_clusters")
    if not 0.0 <= noise_fraction < 1.0:
        raise ValueError("noise_fraction must lie in [0, 1)")
    seed = resolve_seed(seed)
    name = seeded_name("clustered", seed, name)
    rng = ensure_rng(seed)

    if weights is None:
        weights = np.full(n_clusters, 1.0 / n_clusters)
    else:
        weights = np.asarray(weights, dtype=float)
        if len(weights) != n_clusters:
            raise ValueError("weights must have one entry per cluster")
        weights = weights / weights.sum()

    centroids = rng.normal(scale=separation, size=(n_clusters, n_features))
    n_noise = int(round(noise_fraction * n_rows))
    n_clustered = n_rows - n_noise

    assignments = rng.choice(n_clusters, size=n_clustered, p=weights)
    points = centroids[assignments] + rng.normal(
        scale=cluster_std, size=(n_clustered, n_features))
    labels = assignments.astype(np.int64)

    if n_noise:
        low = points.min(axis=0) if n_clustered else -separation * np.ones(n_features)
        high = points.max(axis=0) if n_clustered else separation * np.ones(n_features)
        noise = rng.uniform(low=low, high=high, size=(n_noise, n_features))
        points = np.vstack([points, noise])
        labels = np.concatenate([labels, np.full(n_noise, -1, dtype=np.int64)])

    order = rng.permutation(n_rows)
    return VectorDataset.from_dense(points[order], labels=labels[order],
                                    name=name, prune_zeros=False)


def make_toy_dataset(seed: int = 7) -> VectorDataset:
    """The 50-record, 3-attribute toy dataset of Figure 2.2.

    Three attributes in [0, 1] with three latent groups whose cosine
    similarities are arranged so the figure's thresholds behave as described:
    t = 0.8 leaves the data too sparsely connected, t = 0.5 reveals the
    community structure, and t = 0.2 over-connects it.
    """
    rng = ensure_rng(seed)
    directions = np.array([
        [1.0, 0.1, 0.1],
        [0.1, 1.0, 0.1],
        [0.1, 0.1, 1.0],
    ])
    rows = []
    labels = []
    for i in range(50):
        cluster = i % 3
        point = directions[cluster] + rng.normal(scale=0.16, size=3)
        scale = rng.uniform(0.4, 0.95)
        rows.append(np.clip(point * scale, 0.01, 0.99))
        labels.append(cluster)
    return VectorDataset.from_dense(np.array(rows), labels=np.array(labels),
                                    name="d1-toy", prune_zeros=False)


# --------------------------------------------------------------------------- #
# UCI-style dataset profiles
# --------------------------------------------------------------------------- #
#: Documented characteristics of the UCI datasets used across Chapters 2, 3
#: and 5 (attribute count, row count, and a rough number of latent classes).
#: Row counts are the paper's; ``load_dataset`` scales them down by default.
UCI_PROFILES: dict[str, dict[str, int]] = {
    "wine": {"n_rows": 178, "n_features": 13, "n_clusters": 3},
    "credit": {"n_rows": 690, "n_features": 39, "n_clusters": 2},
    "abalone": {"n_rows": 4177, "n_features": 8, "n_clusters": 3},
    "adult": {"n_rows": 8000, "n_features": 5, "n_clusters": 2},
    "image_segmentation": {"n_rows": 2100, "n_features": 18, "n_clusters": 7},
    "letter_recognition": {"n_rows": 8000, "n_features": 16, "n_clusters": 26},
    "mushroom": {"n_rows": 8000, "n_features": 21, "n_clusters": 2},
    "online_news": {"n_rows": 8000, "n_features": 57, "n_clusters": 5},
    "spambase": {"n_rows": 4601, "n_features": 57, "n_clusters": 2},
    "statlog": {"n_rows": 4435, "n_features": 36, "n_clusters": 6},
    "waveform": {"n_rows": 5000, "n_features": 21, "n_clusters": 3},
    "wine_quality_red": {"n_rows": 1599, "n_features": 11, "n_clusters": 6},
    "wine_quality_white": {"n_rows": 4898, "n_features": 11, "n_clusters": 7},
    "yeast": {"n_rows": 1484, "n_features": 8, "n_clusters": 10},
    "forestfires": {"n_rows": 517, "n_features": 10, "n_clusters": 6},
    "water_treatment": {"n_rows": 527, "n_features": 38, "n_clusters": 3},
    "wdbc": {"n_rows": 569, "n_features": 30, "n_clusters": 4},
    "parkinsons": {"n_rows": 195, "n_features": 22, "n_clusters": 4},
    "pima_indians_diabetes": {"n_rows": 768, "n_features": 8, "n_clusters": 10},
    "eighthr": {"n_rows": 2534, "n_features": 72, "n_clusters": 2},
    "iris": {"n_rows": 150, "n_features": 4, "n_clusters": 3},
}


def make_uci_like(profile_name: str, *, scale: float = 1.0, seed=None,
                  separation: float = 3.5, cluster_std: float = 1.0,
                  noise_fraction: float = 0.05) -> VectorDataset:
    """Generate a synthetic stand-in for the named UCI dataset.

    Parameters
    ----------
    profile_name:
        One of the keys of :data:`UCI_PROFILES`.
    scale:
        Multiplier on the documented row count (use < 1 to keep experiments
        fast; dimensionality and cluster count are kept as documented).
    """
    if profile_name not in UCI_PROFILES:
        raise KeyError(f"unknown UCI profile {profile_name!r}; known: "
                       f"{sorted(UCI_PROFILES)}")
    profile = UCI_PROFILES[profile_name]
    n_rows = max(profile["n_clusters"] * 4, int(round(profile["n_rows"] * scale)))
    return make_clustered_vectors(
        n_rows=n_rows,
        n_features=profile["n_features"],
        n_clusters=profile["n_clusters"],
        separation=separation,
        cluster_std=cluster_std,
        noise_fraction=noise_fraction,
        seed=seed,
        name=profile_name,
    )
