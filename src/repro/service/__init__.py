"""Similarity-as-a-service: a long-lived concurrent session server.

Everything below this package is library-call-per-process; this layer is the
front-end the "millions of users" story needs.  One
:class:`SimilarityService` owns the shared process pools, shared-memory
segments and one :class:`~repro.store.SimilarityStore`, and serves many
concurrent tenant sessions with:

* **sweep coalescing** (:class:`CoalescingScheduler`) — concurrent probes of
  the same dataset/measure/threshold share one kernel pass, audited via
  ``ApssEngine.search_calls``;
* **per-tenant namespaces** (:class:`StoreNamespace`) — each tenant owns a
  disjoint slice of the store's entry dirs *and* its MVCC manifest;
* **admission control** (:class:`AdmissionController`) — isolated probe and
  ingest lanes with bounded queues, so writers never block sweepers (and
  vice versa), backpressure surfacing as :class:`ServiceOverloadError`;
* **a managed lifecycle** — ``serving → draining → closed``, with every
  pooled resource (refinement worker, process pools, shm segments, snapshot
  leases) drained and released exactly once.
"""

from repro.service.admission import (
    AdmissionController,
    LaneGate,
    ServiceOverloadError,
)
from repro.service.namespaces import NamespacedSnapshot, StoreNamespace
from repro.service.scheduler import CoalescingScheduler
from repro.service.server import ServiceClosedError, ServiceSession, SimilarityService

__all__ = [
    "AdmissionController",
    "CoalescingScheduler",
    "LaneGate",
    "NamespacedSnapshot",
    "ServiceClosedError",
    "ServiceOverloadError",
    "ServiceSession",
    "SimilarityService",
    "StoreNamespace",
]
