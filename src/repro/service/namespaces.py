"""Per-tenant store namespaces layered on the MVCC manifest.

One :class:`~repro.store.SimilarityStore` serves every tenant of a
:class:`~repro.service.SimilarityService`; isolation is by *key rewriting*,
not by separate stores.  A :class:`StoreNamespace` prefixes the leading key
component — the fingerprint for pair/sketch/lineage entries, the literal
kind tag for session entries — with ``"{tenant}::"``, so each tenant owns a
disjoint slice of the entry directories *and* of the versioned manifest
(generations are keyed by the namespaced fingerprint, so one tenant's
append lineage never collides with another's, even over identical data).

The namespace quacks like the store: every persistence method the engine
layer calls (``load_result``/``land_result``/``publish_floor``/…) exists
here with the same signature, so a namespace can be handed to
:class:`~repro.similarity.cache.CachedApssEngine`,
:class:`~repro.similarity.tiered.TieredApssEngine` or
:class:`~repro.core.session.PlasmaSession` wherever a store is expected.
Snapshots work the same way: :meth:`StoreNamespace.open_snapshot` pins the
*shared* manifest version (one lease, store-wide consistency) but reads
through a :class:`NamespacedSnapshot` that rewrites keys, so a pinned
reader still only sees its own tenant's floors.
"""

from __future__ import annotations

from repro.store.similarity_store import SimilarityStore, StoreSnapshot

__all__ = ["NamespacedSnapshot", "StoreNamespace"]

#: Separator between tenant id and the wrapped key head.  Tenant ids must
#: not contain it — ``"a::b"`` would alias tenant ``"a"``'s key space.
NAMESPACE_SEP = "::"


def _valid_tenant(tenant: str) -> str:
    if not isinstance(tenant, str) or not tenant:
        raise ValueError("tenant id must be a non-empty string")
    if NAMESPACE_SEP in tenant:
        raise ValueError(
            f"tenant id may not contain {NAMESPACE_SEP!r}: {tenant!r}")
    return tenant


class StoreNamespace:
    """A tenant's view of a shared :class:`SimilarityStore`.

    Every key passed in has its head rewritten to
    ``f"{tenant}::{key[0]}"`` before it reaches the store, and every
    fingerprint likewise.  The wrapped store is shared and unaware; two
    namespaces over the same store with different tenants are fully
    disjoint, and the bare store (no namespace) is a third, also-disjoint
    tenant — handy for service-internal bookkeeping.
    """

    def __init__(self, store: SimilarityStore, tenant: str) -> None:
        self.store = store
        self.tenant = _valid_tenant(tenant)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StoreNamespace({self.tenant!r} @ {self.store.root})"

    # ------------------------------------------------------------------ #
    # Key rewriting
    # ------------------------------------------------------------------ #
    def namespaced(self, key: tuple) -> tuple:
        """*key* with its head moved into this tenant's namespace."""
        if not key:
            raise ValueError("store keys must be non-empty tuples")
        return (self.namespaced_fingerprint(str(key[0])),) + tuple(key[1:])

    def namespaced_fingerprint(self, fingerprint: str) -> str:
        """A fingerprint (or key head) moved into this tenant's namespace."""
        return f"{self.tenant}{NAMESPACE_SEP}{fingerprint}"

    # ------------------------------------------------------------------ #
    # Store facade (same signatures as SimilarityStore)
    # ------------------------------------------------------------------ #
    def save_result(self, key, result):
        """Persist a floor under the tenant-rewritten *key*."""
        return self.store.save_result(self.namespaced(key), result)

    def load_result(self, key):
        """Restore the tenant's floor for *key*, or ``None`` on miss."""
        return self.store.load_result(self.namespaced(key))

    def load_pairset(self, key):
        """The tenant's floor for *key* in streamable (factorised) form.

        The zero-materialisation read behind
        :meth:`~repro.service.server.ServiceSession.top_k_join`; see
        :meth:`SimilarityStore.load_pairset`.
        """
        return self.store.load_pairset(self.namespaced(key))

    def land_result(self, key, result, **kwargs):
        """Upgrade-only landing of a floor in the tenant's key space."""
        return self.store.land_result(self.namespaced(key), result, **kwargs)

    def publish_floor(self, key, result, delta=None, **kwargs):
        """Land a floor in the tenant's slice of the versioned lineage.

        The delta's fingerprints are the tenant's un-namespaced ones and
        would no longer match the rewritten key head; dropping it only
        costs the delta-encoding optimisation, never correctness
        (publish_floor falls back to a full floor entry).
        """
        return self.store.publish_floor(self.namespaced(key), result,
                                        None, **kwargs)

    def publish_generation(self, fingerprint, *, parent, n_rows,
                           parent_rows=None):
        """Record a (possibly floor-less) tenant generation in the lineage."""
        return self.store.publish_generation(
            self.namespaced_fingerprint(str(fingerprint)),
            parent=(None if parent is None
                    else self.namespaced_fingerprint(str(parent))),
            n_rows=n_rows, parent_rows=parent_rows)

    def save_reducer(self, key, state):
        """Persist a mergeable reducer state under the tenant's key."""
        return self.store.save_reducer(self.namespaced(key), state)

    def load_reducer(self, key):
        """Restore the tenant's reducer state, or ``None`` on miss."""
        return self.store.load_reducer(self.namespaced(key))

    def save_sketches(self, key, sketches):
        """Persist an LSH sketch matrix under the tenant's key."""
        return self.store.save_sketches(self.namespaced(key), sketches)

    def load_sketches(self, key):
        """Restore the tenant's sketch matrix, or ``None`` on miss."""
        return self.store.load_sketches(self.namespaced(key))

    def save_session(self, key, state):
        """Persist a knowledge-cache payload under the tenant's key."""
        return self.store.save_session(self.namespaced(key), state)

    def load_session(self, key):
        """Restore the tenant's session state, or ``None`` on miss."""
        return self.store.load_session(self.namespaced(key))

    def delete(self, kind, key):
        """Drop one tenant entry (missing entries are fine)."""
        return self.store.delete(kind, self.namespaced(key))

    def open_snapshot(self, *, pin: bool = True) -> "NamespacedSnapshot":
        """A pinned read view of the shared manifest, scoped to the tenant.

        The pin lease is store-wide (snapshot consistency is a property of
        the one shared manifest), but every read through the returned
        snapshot is key-rewritten, so the tenant only ever sees its own
        floors and generations.
        """
        return NamespacedSnapshot(self, self.store.open_snapshot(pin=pin))


class NamespacedSnapshot:
    """A :class:`StoreSnapshot` read through a tenant's namespace.

    Duck-compatible with :class:`StoreSnapshot` where the engine layer
    needs it (``load_result``/``version``/``pinned``/``close``/context
    manager); ``store`` points back at the *namespace*, so code that
    follows ``snapshot.store`` for writes stays inside the tenant.
    """

    def __init__(self, namespace: StoreNamespace,
                 snapshot: StoreSnapshot) -> None:
        self.store = namespace
        self._snapshot = snapshot

    @property
    def version(self) -> int:
        """The pinned (store-wide) manifest version."""
        return self._snapshot.version

    @property
    def pinned(self) -> bool:
        """Whether the underlying snapshot holds a live pin lease."""
        return self._snapshot.pinned

    def fingerprints(self) -> list[str]:
        """The tenant's fingerprints in the pinned manifest, un-namespaced."""
        prefix = self.store.tenant + NAMESPACE_SEP
        return [f[len(prefix):] for f in self._snapshot.fingerprints()
                if f.startswith(prefix)]

    def generation(self, fingerprint: str):
        """The tenant's pinned generation record, or ``None``."""
        return self._snapshot.generation(
            self.store.namespaced_fingerprint(str(fingerprint)))

    def load_result(self, key):
        """The tenant's pinned floor for *key*, or ``None``."""
        return self._snapshot.load_result(self.store.namespaced(key))

    def close(self) -> None:
        """Release the underlying pin lease (idempotent)."""
        self._snapshot.close()

    def __enter__(self) -> "NamespacedSnapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NamespacedSnapshot({self.store.tenant!r}, {self._snapshot!r})"
