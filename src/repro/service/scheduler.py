"""Request coalescing: concurrent identical sweeps share one kernel pass.

A server fronting many tenants sees the same probe again and again — two
dashboards watching one corpus, N replicas of a client retrying.  The sweep
cache already makes *sequential* repeats free; this scheduler closes the
*concurrent* window: while a kernel pass for a key is in flight, every
other request for the same key parks on its future instead of launching a
duplicate pass.  The audit is the engine's ``search_calls`` counter — N
concurrent identical probes bump it exactly once.

Coalescing keys extend the sweep-cache floor key
(:meth:`CachedApssEngine.cache_key`) with the requested threshold: probes
of the same dataset/measure/backend at *different* thresholds stay
independent flights (the later one is usually served by the first one's
floor anyway, via the cache).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future

from repro.datasets.vectors import VectorDataset
from repro.similarity.cache import CachedApssEngine
from repro.similarity.engine import EngineResult

__all__ = ["CoalescingScheduler"]


class CoalescingScheduler:
    """One in-flight computation per request key; later callers join it.

    Parameters
    ----------
    cache:
        The shared compute cache every coalesced sweep runs through.  It is
        deliberately the *one* compute path for all tenants: sequential
        repeats hit its sweep cache, concurrent repeats hit this
        scheduler's in-flight map.

    Attributes
    ----------
    kernel_passes:
        Requests this scheduler computed itself (at most one per key at a
        time).
    coalesced:
        Requests that joined another caller's in-flight pass instead of
        computing — the serving work the scheduler saved.

    Notes
    -----
    The owner-computes discipline keeps the scheduler thread-pool-free: the
    first caller for a key runs the sweep on its own thread and everyone
    else blocks on the flight's future, so a failure propagates to every
    joined caller and the flight is always removed — no leak on either
    path.  Results are shared objects; callers must treat them as
    immutable, exactly as they must with cache hits.
    """

    def __init__(self, cache: CachedApssEngine) -> None:
        self.cache = cache
        self._inflight: dict[tuple, Future] = {}
        self._lock = threading.Lock()
        self.kernel_passes = 0
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def coalesce(self, key: tuple, compute):
        """Run *compute* once per concurrent *key*; joiners share the result.

        The generic primitive behind :meth:`search` (and the service's
        tiered probe path): whoever installs the flight computes, everyone
        arriving while it is in flight waits on the same future.  Raises
        whatever *compute* raised, to the owner and every joiner alike.
        """
        with self._lock:
            flight = self._inflight.get(key)
            joined = flight is not None
            if not joined:
                flight = Future()
                self._inflight[key] = flight
            else:
                self.coalesced += 1
        if joined:
            return flight.result()
        try:
            result = compute()
        except BaseException as exc:
            with self._lock:
                self._inflight.pop(key, None)
            flight.set_exception(exc)
            raise
        # Remove the flight before publishing: a request arriving now
        # starts fresh and is served by the sweep cache the compute
        # already warmed; joiners holding the future settle either way.
        # Counters move under the lock so concurrent owners/joiners
        # never lose an update in the audit the health check reports.
        with self._lock:
            self._inflight.pop(key, None)
            self.kernel_passes += 1
        flight.set_result(result)
        return result

    def request_key(self, dataset: VectorDataset, threshold: float,
                    measure: str = "cosine", backend: str | None = None,
                    **options) -> tuple:
        """The coalescing key: the sweep-cache floor key plus the threshold."""
        return self.cache.cache_key(dataset.fingerprint(), measure, backend,
                                    **options) + (float(threshold),)

    def search(self, dataset: VectorDataset, threshold: float,
               measure: str = "cosine", backend: str | None = None,
               **options) -> EngineResult:
        """A coalesced :meth:`CachedApssEngine.search` of the shared cache.

        Sequential repeats are served by the sweep cache (kernel-free);
        concurrent repeats join the in-flight pass.  Either way the
        engine's ``search_calls`` counter moves at most once per distinct
        (key, threshold) burst.
        """
        key = self.request_key(dataset, threshold, measure, backend,
                               **options)
        return self.coalesce(
            key, lambda: self.cache.search(dataset, threshold, measure,
                                           backend=backend, **options))
