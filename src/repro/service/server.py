"""The concurrent session server: one process, many tenants, shared pools.

:class:`SimilarityService` is the long-lived front-end that turns the
library layers below into a serving system.  It owns, exactly once per
process:

* one :class:`~repro.similarity.engine.ApssEngine` (and through it the
  shared worker pools and shm segments the sharded backend manages);
* one shared in-memory sweep cache + :class:`CoalescingScheduler`, so both
  sequential *and* concurrent duplicate probes cost one kernel pass;
* one :class:`~repro.similarity.tiered.TieredApssEngine` for two-tier
  probes (sketch answer now, exact refinement behind);
* one :class:`~repro.store.SimilarityStore`, handed to tenants as
  :class:`~repro.service.namespaces.StoreNamespace` slices;
* one :class:`~repro.service.admission.AdmissionController` with isolated
  probe/ingest lanes.

Tenants interact through :class:`ServiceSession` handles from
:meth:`SimilarityService.open_session`.  Compute results are shared across
tenants — they are content-addressed by dataset fingerprint, so a tenant
can only ever "see" results for data it already holds — while durable
artifacts (landed floors, published generations, saved sessions) go to the
tenant's own namespace.

Lifecycle is ``serving → draining → closed`` and strictly forward:
:meth:`~SimilarityService.drain` stops admitting, waits for both lanes to
empty and for every queued refinement to land; :meth:`~SimilarityService.
close` then stops the refinement worker and (optionally) tears down the
process-global pools and shm segments.  Every entry point raises
:class:`ServiceClosedError` once the service has left ``serving``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.datasets.vectors import VectorDataset
from repro.service.admission import AdmissionController
from repro.service.namespaces import StoreNamespace
from repro.service.scheduler import CoalescingScheduler
from repro.similarity.cache import CachedApssEngine
from repro.similarity.engine import DEFAULT_BACKEND, ApssEngine, EngineResult
from repro.similarity.partition import resolve_worker_count
from repro.similarity.shm import default_ring_slots
from repro.similarity.tiered import DEFAULT_MAX_PENDING, TieredApssEngine

__all__ = ["ServiceClosedError", "ServiceSession", "SimilarityService",
           "TopKJoinResult"]


class ServiceClosedError(RuntimeError):
    """The service is draining or closed and admits no new work."""


@dataclass(frozen=True)
class TopKJoinResult:
    """Outcome of one :meth:`ServiceSession.top_k_join` request.

    ``pairs`` holds the *k* most similar pairs at or above the request
    threshold, descending, ties broken by ``(first, second)`` — identical
    to running a raw-floor
    :class:`~repro.similarity.streaming.TopKReducer` pass.  ``source``
    records how the floor was obtained (``"store-factorized"`` /
    ``"store-raw"`` for a zero-kernel serve from the tenant's landed
    floor, ``"kernel"`` for a fresh coalesced sweep) and ``floor_pairs``
    how many pairs the serving floor held in total.
    """

    k: int
    threshold: float
    measure: str
    pairs: list
    source: str
    floor_pairs: int


class SimilarityService:
    """A long-lived similarity server multiplexing many tenant sessions.

    Parameters
    ----------
    store:
        The shared :class:`~repro.store.SimilarityStore` (or a path to
        open one at).  ``None`` runs a memory-only service: sessions still
        coalesce and probe, but nothing is durable and namespaces are
        unavailable.
    backend, backend_options:
        Forwarded to the shared :class:`ApssEngine`.
    n_workers:
        Worker budget used to size the probe lane; resolved like the
        sharded backend resolves it (explicit → ``REPRO_APSS_WORKERS`` →
        CPU count).
    probe_slots / ingest_slots:
        Lane widths; ``probe_slots`` defaults to the slab-ring budget
        ``default_ring_slots(n_workers)`` so admission never outruns the
        transport.
    max_pending:
        Refinement-queue bound forwarded to the tiered engine.
    refine:
        Refinement mode forwarded to the tiered engine
        (``"background"``/``"sync"``/``"off"``).
    cache_entries:
        Capacity of the shared in-memory sweep cache.  Size it to the hot
        working set across *all* tenants — an evicted floor costs a full
        kernel pass to rebuild.
    """

    def __init__(self, store=None, *, backend: str | None = None,
                 n_workers: int | None = None,
                 probe_slots: int | None = None, ingest_slots: int = 2,
                 max_pending: int = DEFAULT_MAX_PENDING,
                 refine: str = "background", cache_entries: int = 128,
                 **backend_options) -> None:
        if isinstance(store, (str, bytes)) or hasattr(store, "__fspath__"):
            from repro.store import SimilarityStore

            store = SimilarityStore(store)
        self.store = store
        self.engine = ApssEngine(backend or DEFAULT_BACKEND,
                                 **backend_options)
        # The shared compute cache is deliberately memory-only
        # (store=False): durable floors are a per-tenant concern and land
        # through each session's namespace, never through the shared path.
        # Its capacity is a serving knob, not the library default: the
        # working set is every hot (dataset, measure, options) floor across
        # all tenants, and an evicted floor is a full kernel pass to rebuild.
        self.compute = CachedApssEngine(engine=self.engine, store=False,
                                        max_entries=cache_entries)
        self.scheduler = CoalescingScheduler(self.compute)
        self.tiered = TieredApssEngine(
            engine=self.engine, store=store if store is not None else False,
            max_pending=max_pending, refine=refine)
        self.n_workers = resolve_worker_count(n_workers)
        self.admission = AdmissionController(
            probe_slots=(probe_slots if probe_slots is not None
                         else default_ring_slots(self.n_workers)),
            ingest_slots=ingest_slots)
        self._state = "serving"
        self._state_lock = threading.Lock()
        self._sessions: dict[int, "ServiceSession"] = {}
        self._session_seq = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        """``"serving"``, ``"draining"`` or ``"closed"`` — forward-only."""
        return self._state

    def _check_serving(self) -> None:
        if self._state != "serving":
            raise ServiceClosedError(
                f"service is {self._state}; no new work is admitted")

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting, finish everything already admitted.

        Moves to ``draining`` (new requests and sessions are refused from
        that instant), waits for both admission lanes to empty, then waits
        for queued refinements to land in the store.  *timeout* is one
        overall budget across all stages, not per-stage: the refinement
        wait gets whatever the lane drains left of it, and refinements
        still running at the deadline stay queued (they are finished by
        :meth:`close`, whose tiered shutdown drains them fully).  Returns
        whether the lanes emptied within *timeout*.  Idempotent, and
        implied by :meth:`close`.
        """
        with self._state_lock:
            if self._state == "serving":
                self._state = "draining"
        deadline = None if timeout is None else time.monotonic() + timeout
        emptied = self.admission.drain(timeout=timeout)
        if not self.tiered.closed:
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            self.tiered.wait(timeout=remaining)
        return emptied

    def close(self, *, release_pools: bool = False,
              timeout: float | None = None) -> None:
        """Drain, stop the refinement worker, optionally release pools.

        With ``release_pools=True`` the process-global worker pools and
        shared-memory segments are also torn down
        (:func:`repro.similarity.backends.sharded.reset_shared_pools`) —
        correct for process shutdown, wasteful if another service instance
        will be started in the same process.  Idempotent.
        """
        if self._state == "closed":
            return
        try:
            self.drain(timeout=timeout)
        finally:
            # A refinement failure surfacing through drain's wait still
            # raises to the caller — but only after every pooled resource
            # is released and the state is terminal.
            self.tiered.close()
            for session in list(self._sessions.values()):
                session.close()
            with self._state_lock:
                self._state = "closed"
            if release_pools:
                from repro.similarity.backends.sharded import (
                    reset_shared_pools,
                )

                reset_shared_pools(wait=True)

    def __enter__(self) -> "SimilarityService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Sessions
    # ------------------------------------------------------------------ #
    def open_session(self, tenant: str) -> "ServiceSession":
        """Open a tenant session (refused once draining/closed).

        Two sessions for the same tenant share that tenant's namespace —
        tenancy, not the session handle, is the isolation boundary.
        """
        self._check_serving()
        with self._state_lock:
            self._session_seq += 1
            session = ServiceSession(self, tenant, self._session_seq)
            self._sessions[session.session_id] = session
        return session

    def _forget_session(self, session: "ServiceSession") -> None:
        with self._state_lock:
            self._sessions.pop(session.session_id, None)

    @property
    def sessions(self) -> int:
        """Open session count (a health metric, not an iteration API)."""
        return len(self._sessions)

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """One structured snapshot for monitoring and the soak tests.

        ``store`` is :meth:`SimilarityStore.stats` for the shared store
        (``None`` on a storeless service): per-kind entry and byte counts,
        so the raw-vs-factorised floor split — the compression win — is
        observable in serving, not just in benchmarks.
        """
        return {
            "state": self._state,
            "sessions": self.sessions,
            "kernel_passes": self.scheduler.kernel_passes,
            "coalesced": self.scheduler.coalesced,
            "inflight": len(self.scheduler),
            "search_calls": self.engine.search_calls,
            "pending_refinements": (0 if self.tiered.closed
                                    else self.tiered.pending_refinements),
            "lanes": self.admission.stats(),
            "store": (self.store.stats() if self.store is not None
                      else None),
        }


class ServiceSession:
    """One tenant's handle on the service; cheap, many per tenant allowed.

    Built by :meth:`SimilarityService.open_session` — not directly.  All
    compute goes through the service's shared scheduler (coalesced, lane-
    admitted); all durable writes go through the tenant's
    :class:`StoreNamespace` (``None`` for a storeless service).
    """

    def __init__(self, service: SimilarityService, tenant: str,
                 session_id: int) -> None:
        self.service = service
        self.tenant = tenant
        self.session_id = session_id
        self.namespace = (StoreNamespace(service.store, tenant)
                          if service.store is not None else None)
        self._closed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ServiceSession(tenant={self.tenant!r}, "
                f"id={self.session_id}, state={self.service.state})")

    @property
    def closed(self) -> bool:
        """Whether this session handle has been closed (service may live on)."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceClosedError("session is closed")
        self.service._check_serving()

    # ------------------------------------------------------------------ #
    # Probe lane
    # ------------------------------------------------------------------ #
    def sweep(self, dataset: VectorDataset, threshold: float,
              measure: str = "cosine", backend: str | None = None,
              **options) -> EngineResult:
        """An exact all-pairs sweep: admitted, coalesced, tenant-landed.

        Concurrent identical sweeps — same fingerprint, measure, backend,
        options and threshold, from *any* tenant — share one kernel pass
        (the engine's ``search_calls`` moves once).  The result is also
        landed durably in this tenant's namespace, upgrade-only.
        """
        self._check_open()
        with self.service.admission.probe.admit():
            result = self.service.scheduler.search(
                dataset, threshold, measure, backend=backend, **options)
        if self.namespace is not None:
            key = self.service.compute.cache_key(
                dataset.fingerprint(), measure, backend, **options)
            self.namespace.land_result(key, result)
        return result

    def probe(self, dataset: VectorDataset, threshold: float,
              measure: str = "cosine"):
        """A two-tier probe: sketch answer now, exact refinement queued.

        Coalesced like :meth:`sweep`: N concurrent identical probes run
        one sketch pass and queue one refinement.  The refinement lands in
        the *shared* store tier (content-addressed by fingerprint); call
        :meth:`sweep` when the tenant needs its own durable exact floor.
        """
        self._check_open()
        tiered = self.service.tiered
        key = ("tiered",
               tiered.cache.cache_key(dataset.fingerprint(), measure,
                                      tiered.exact_backend,
                                      **tiered.exact_options),
               float(threshold))
        with self.service.admission.probe.admit():
            return self.service.scheduler.coalesce(
                key, lambda: tiered.probe(dataset, threshold, measure))

    def top_k_join(self, dataset: VectorDataset, k: int, threshold: float,
                   measure: str = "cosine", backend: str | None = None,
                   **options) -> TopKJoinResult:
        """The *k* most similar pairs at or above *threshold*.

        The top-k similarity join workload, served from compressed floors:
        when this tenant's landed floor covers *threshold* (exact, at or
        below it), its factorised parts are streamed chunk-by-chunk into a
        :class:`~repro.similarity.streaming.TopKReducer` — zero kernel
        invocations, and the full pair list is never materialised.  On a
        miss the floor is computed first (admitted and coalesced exactly
        like :meth:`sweep`) and landed durably for next time.  Either way
        the returned pairs equal a raw-floor ``TopKReducer`` pass: the
        reducer is order-insensitive, so unordered compressed chunks and
        the canonical raw floor reduce to the same top *k*.
        """
        from repro.similarity.streaming import TopKReducer
        from repro.store.pairsets import factorize_result

        self._check_open()
        stored = None
        if self.namespace is not None:
            key = self.service.compute.cache_key(
                dataset.fingerprint(), measure, backend, **options)
            stored = self.namespace.load_pairset(key)
            if stored is not None and not stored.covers(threshold):
                stored = None
        if stored is not None:
            pairset = stored.pairset
            source = f"store-{stored.encoding}"
        else:
            with self.service.admission.probe.admit():
                result = self.service.scheduler.search(
                    dataset, threshold, measure, backend=backend, **options)
            if self.namespace is not None:
                self.namespace.land_result(key, result)
            pairset = factorize_result(result)
            source = "kernel"
        reducer = TopKReducer(int(k))
        for first, second, values in pairset.iter_chunks(threshold):
            reducer.update(first, second, values)
        return TopKJoinResult(
            k=int(k), threshold=float(threshold), measure=measure,
            pairs=reducer.pairs(), source=source,
            floor_pairs=pairset.n_pairs)

    # ------------------------------------------------------------------ #
    # Ingest lane
    # ------------------------------------------------------------------ #
    def ingest(self, dataset: VectorDataset, rows,
               labels=None, name: str | None = None) -> VectorDataset:
        """Append *rows* and publish the child generation to the tenant.

        Runs on the ingest lane: its admission, queueing and backpressure
        are fully separate from the probe lane's, so a burst of appends
        never delays a probe's admission (and vice versa).
        """
        self._check_open()
        with self.service.admission.ingest.admit():
            child = dataset.append_rows(rows, labels=labels, name=name)
            if self.namespace is not None:
                delta = child.parent_delta
                self.namespace.publish_generation(
                    child.fingerprint(),
                    parent=delta.parent_fingerprint if delta else None,
                    n_rows=child.n_rows,
                    parent_rows=delta.parent_rows if delta else None)
        return child

    # ------------------------------------------------------------------ #
    # Interactive exploration
    # ------------------------------------------------------------------ #
    def open_plasma(self, dataset: VectorDataset, **kwargs):
        """A :class:`~repro.core.session.PlasmaSession` on shared pools.

        The session shares the service's engine (one ``search_calls``
        audit stream, one set of worker pools) and persists through this
        tenant's namespace, so its saved state and published generations
        stay inside the tenant.
        """
        self._check_open()
        from repro.core.session import PlasmaSession

        kwargs.setdefault("engine", self.service.engine)
        if self.namespace is not None:
            kwargs.setdefault("store", self.namespace)
        return PlasmaSession(dataset, **kwargs)

    def close(self) -> None:
        """Deregister from the service.  Idempotent, never blocks."""
        if self._closed:
            return
        self._closed = True
        self.service._forget_session(self)

    def __enter__(self) -> "ServiceSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
