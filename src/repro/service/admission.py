"""Admission control: bounded, isolated probe and ingest lanes.

The service's pooled resources are finite — worker processes, slab-ring
slots, refinement threads — so the front door must be too.  Each request
class gets a :class:`LaneGate`: a bounded concurrency slot pool plus a
bounded wait queue.  When both are full the gate refuses immediately with
:class:`ServiceOverloadError` rather than queueing unboundedly: shedding at
admission is what keeps tail latency finite and is the same discipline the
sharded backend applies to its slab ring (a bounded window of in-flight
blocks; see :func:`repro.similarity.shm.default_ring_slots`).

The two lanes of :class:`AdmissionController` are *isolated*: the probe
lane (interactive sweeps and tiered probes) and the ingest lane (appends
and generation publishes) have separate slots and separate queues, so a
burst of writers can never starve readers of admission, and vice versa.
This is the HTAP isolation rule from the store layer (writers and sweepers
never block each other) carried up to the serving tier.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = ["AdmissionController", "LaneGate", "ServiceOverloadError"]


class ServiceOverloadError(RuntimeError):
    """A lane's slots and wait queue are both full; the request was shed.

    Callers should treat this as retryable backpressure (the moral
    equivalent of HTTP 503), not a failure of the request itself.
    """


class LaneGate:
    """A bounded concurrency gate: *max_concurrent* slots, *max_queued* waiters.

    ``with gate.admit():`` either acquires a slot (possibly after waiting
    in the bounded queue) or raises :class:`ServiceOverloadError` without
    waiting when the queue is already at capacity.  Counters are exposed
    for health reporting: ``active`` (slots held), ``queued`` (waiting),
    ``admitted``/``shed`` (lifetime totals).
    """

    def __init__(self, name: str, max_concurrent: int,
                 max_queued: int = 0) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if max_queued < 0:
            raise ValueError("max_queued must be >= 0")
        self.name = name
        self.max_concurrent = int(max_concurrent)
        self.max_queued = int(max_queued)
        self._cond = threading.Condition()
        self.active = 0
        self.queued = 0
        self.admitted = 0
        self.shed = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LaneGate({self.name!r}, active={self.active}/"
                f"{self.max_concurrent}, queued={self.queued}/"
                f"{self.max_queued})")

    def acquire(self, timeout: float | None = None) -> None:
        """Take a slot, waiting in the bounded queue if necessary.

        Raises :class:`ServiceOverloadError` immediately when the wait
        queue is full, or after *timeout* seconds stuck in the queue.
        """
        with self._cond:
            # The fast path only applies while nobody is queued: a freed
            # slot must go to a waiter already in line, not a new arrival,
            # or queued requests starve until their timeout under load.
            if self.queued == 0 and self.active < self.max_concurrent:
                self.active += 1
                self.admitted += 1
                return
            if self.queued >= self.max_queued:
                self.shed += 1
                raise ServiceOverloadError(
                    f"{self.name} lane full: {self.active} active, "
                    f"{self.queued} queued (max {self.max_queued})")
            self.queued += 1
            try:
                ok = self._cond.wait_for(
                    lambda: self.active < self.max_concurrent,
                    timeout=timeout)
            finally:
                self.queued -= 1
                # A drain() waiter shares this condition; when the last
                # queued waiter sheds it must re-check its predicate.
                self._cond.notify_all()
            if not ok:
                self.shed += 1
                raise ServiceOverloadError(
                    f"{self.name} lane: timed out after {timeout}s in queue")
            self.active += 1
            self.admitted += 1

    def release(self) -> None:
        """Return one admitted slot (normally via the ``admit()`` guard)."""
        with self._cond:
            if self.active <= 0:  # pragma: no cover - misuse guard
                raise RuntimeError(f"{self.name} lane released more than "
                                   "acquired")
            self.active -= 1
            # notify_all, not notify: the condition is shared by queued
            # acquirers and drain() waiters.  Waking only one could hand
            # the wakeup to a drain waiter whose predicate is still false
            # (a request remains queued); it would re-wait and the queued
            # acquirer — possibly waiting with no timeout — never wakes.
            self._cond.notify_all()

    @contextmanager
    def admit(self, timeout: float | None = None):
        """``with gate.admit():`` — acquire for the block, always release."""
        self.acquire(timeout=timeout)
        try:
            yield self
        finally:
            self.release()

    def drain(self, timeout: float | None = None) -> bool:
        """Block until the lane is empty (no slots held, no waiters).

        Returns whether it emptied within *timeout*.  The caller is
        responsible for having stopped new admissions first.
        """
        with self._cond:
            return self._cond.wait_for(
                lambda: self.active == 0 and self.queued == 0,
                timeout=timeout)

    def stats(self) -> dict:
        """A consistent snapshot of the lane's counters and limits."""
        with self._cond:
            return {"active": self.active, "queued": self.queued,
                    "admitted": self.admitted, "shed": self.shed,
                    "max_concurrent": self.max_concurrent,
                    "max_queued": self.max_queued}


class AdmissionController:
    """The service's front door: isolated ``probe`` and ``ingest`` lanes.

    Probe-lane width should track the compute pool's slab-ring budget
    (``default_ring_slots(n_workers)``): admitting more concurrent sweeps
    than the ring has slots only moves the queueing from here — where it
    is bounded, observable and sheddable — into the transport, where it
    is none of those.  The ingest lane is narrow by default (appends
    serialise on the manifest lock anyway); what matters is that it is
    *separate*, so ingest pressure never consumes probe admissions.
    """

    def __init__(self, *, probe_slots: int, ingest_slots: int = 2,
                 probe_queue: int | None = None,
                 ingest_queue: int | None = None) -> None:
        self.probe = LaneGate(
            "probe", probe_slots,
            probe_queue if probe_queue is not None else 2 * probe_slots)
        self.ingest = LaneGate(
            "ingest", ingest_slots,
            ingest_queue if ingest_queue is not None else 2 * ingest_slots)

    def drain(self, timeout: float | None = None) -> bool:
        """Drain both lanes; returns whether both emptied in time.

        *timeout* is one overall budget, not per-lane: the ingest drain
        gets whatever the probe drain left of it.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        ok = self.probe.drain(timeout=timeout)
        remaining = (None if deadline is None
                     else max(0.0, deadline - time.monotonic()))
        return self.ingest.drain(timeout=remaining) and ok

    def stats(self) -> dict:
        """Per-lane counter snapshots, keyed by lane name."""
        return {"probe": self.probe.stats(), "ingest": self.ingest.stats()}
