"""Candidate-pair generation for all-pairs similarity search.

Two strategies are provided:

* ``all_pair_candidates`` — every unordered pair (exact recall, quadratic);
  appropriate for the moderate-size datasets PLASMA-HD probes interactively.
* ``banded_candidates`` — classic LSH banding over the concatenated sketch:
  rows that agree on all hashes of at least one band become candidates.  This
  keeps candidate counts near-linear for large sparse corpora at high
  thresholds, mirroring the candidate-generation stage the BayesLSH paper
  pairs with its Bayesian verification.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterator

import numpy as np

__all__ = ["all_pair_candidates", "banded_candidates"]


def all_pair_candidates(n_rows: int) -> Iterator[tuple[int, int]]:
    """Yield every unordered pair (i, j) with i < j."""
    for i in range(n_rows):
        for j in range(i + 1, n_rows):
            yield (i, j)


def banded_candidates(sketches: np.ndarray, band_size: int = 8,
                      n_bands: int | None = None,
                      max_bucket: int | None = 2000) -> list[tuple[int, int]]:
    """Candidate pairs from LSH banding of the sketch matrix.

    Parameters
    ----------
    sketches:
        ``(n_rows, n_hashes)`` sketch matrix (any hashable dtype).
    band_size:
        Number of consecutive hash positions per band.
    n_bands:
        Number of bands to use (defaults to as many complete bands as fit).
    max_bucket:
        Buckets larger than this are skipped to avoid quadratic blow-up on
        degenerate hash values (e.g. the all-zero sketch of empty rows).

    Returns
    -------
    Sorted list of unique (i, j) candidate pairs with i < j.
    """
    if band_size <= 0:
        raise ValueError("band_size must be positive")
    n_rows, n_hashes = sketches.shape
    if n_bands is None:
        n_bands = n_hashes // band_size
    n_bands = max(1, min(n_bands, n_hashes // band_size))

    candidates: set[tuple[int, int]] = set()
    for band in range(n_bands):
        start = band * band_size
        stop = start + band_size
        buckets: dict[bytes, list[int]] = defaultdict(list)
        band_view = np.ascontiguousarray(sketches[:, start:stop])
        for row in range(n_rows):
            buckets[band_view[row].tobytes()].append(row)
        for members in buckets.values():
            if len(members) < 2:
                continue
            if max_bucket is not None and len(members) > max_bucket:
                continue
            for idx_a in range(len(members)):
                for idx_b in range(idx_a + 1, len(members)):
                    candidates.add((members[idx_a], members[idx_b]))
    return sorted(candidates)
