"""Candidate-pair generation for all-pairs similarity search.

Two strategies are provided:

* ``all_pair_candidates`` — every unordered pair (exact recall, quadratic);
  appropriate for the moderate-size datasets PLASMA-HD probes interactively.
* ``banded_candidates`` — classic LSH banding over the concatenated sketch:
  rows that agree on all hashes of at least one band become candidates.  This
  keeps candidate counts near-linear for large sparse corpora at high
  thresholds, mirroring the candidate-generation stage the BayesLSH paper
  pairs with its Bayesian verification.

Both strategies support a **new-vs-all mode** (``new_rows=``) for appended
datasets: only pairs touching at least one appended row are generated, which
is what gives the approximate path the same O(Δn·n) append cost as the exact
delta-ingest path — old-vs-old pairs were already answered by the parent
floor and are never re-candidated.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterator

import numpy as np

__all__ = ["all_pair_candidates", "banded_candidates"]


def all_pair_candidates(n_rows: int,
                        new_rows: range | None = None) -> Iterator[tuple[int, int]]:
    """Yield unordered pairs (i, j) with i < j.

    Without *new_rows*, every pair is yielded.  With *new_rows* (the suffix
    row range an append introduced), only pairs with at least one endpoint in
    that range are yielded — each exactly once, in canonical order.
    """
    if new_rows is None:
        for i in range(n_rows):
            for j in range(i + 1, n_rows):
                yield (i, j)
        return
    for j in new_rows:
        if j >= n_rows:
            break
        for i in range(j):
            yield (i, j)


def banded_candidates(sketches: np.ndarray, band_size: int = 8,
                      n_bands: int | None = None,
                      max_bucket: int | None = 2000,
                      new_rows: range | None = None) -> list[tuple[int, int]]:
    """Candidate pairs from LSH banding of the sketch matrix.

    Parameters
    ----------
    sketches:
        ``(n_rows, n_hashes)`` sketch matrix (any hashable dtype).
    band_size:
        Number of consecutive hash positions per band.
    n_bands:
        Number of bands to use (defaults to as many complete bands as fit).
    max_bucket:
        Buckets larger than this are skipped to avoid quadratic blow-up on
        degenerate hash values (e.g. the all-zero sketch of empty rows).
    new_rows:
        New-vs-all mode: only pairs with at least one endpoint in this row
        range are generated (old rows still participate in bucketing, so an
        appended row is candidated against every colliding old row).  The
        per-band cost drops from O(bucket²) to O(new_in_bucket · bucket),
        making an append's candidate generation O(Δn·n) worst case.

    Returns
    -------
    Sorted list of unique (i, j) candidate pairs with i < j.
    """
    if band_size <= 0:
        raise ValueError("band_size must be positive")
    n_rows, n_hashes = sketches.shape
    if n_bands is None:
        n_bands = n_hashes // band_size
    n_bands = max(1, min(n_bands, n_hashes // band_size))

    candidates: set[tuple[int, int]] = set()
    for band in range(n_bands):
        start = band * band_size
        stop = start + band_size
        buckets: dict[bytes, list[int]] = defaultdict(list)
        band_view = np.ascontiguousarray(sketches[:, start:stop])
        for row in range(n_rows):
            buckets[band_view[row].tobytes()].append(row)
        for members in buckets.values():
            if len(members) < 2:
                continue
            if max_bucket is not None and len(members) > max_bucket:
                continue
            if new_rows is not None:
                # range membership tests are O(1); members are sorted by
                # construction, so new rows (an appended suffix) come last.
                fresh = [m for m in members if m in new_rows]
                if not fresh:
                    continue
                fresh_set = set(fresh)
                for j in fresh:
                    for i in members:
                        if i < j:
                            candidates.add((i, j))
                        elif i > j and i not in fresh_set:
                            candidates.add((j, i))
                continue
            for idx_a in range(len(members)):
                for idx_b in range(idx_a + 1, len(members)):
                    candidates.add((members[idx_a], members[idx_b]))
    return sorted(candidates)
