"""Concatenated sketch storage for the all-pairs workload.

BayesLSH departs from the classic hash-table LSH layout: because the all-pairs
problem evaluates candidate pairs directly, it keeps each object's LSH hashes
as one concatenated sketch and compares prefixes of two sketches
incrementally (Section 2.4).  ``SketchStore`` owns that matrix and exposes the
incremental match-counting primitive the Bayesian inference consumes, plus an
operation counter so knowledge-caching experiments can report how much hash
comparison work was avoided.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.vectors import VectorDataset
from repro.lsh.minhash import MinHashSketcher
from repro.lsh.random_projection import CosineSketcher
from repro.utils.timers import Stopwatch

__all__ = ["SketchStore", "build_sketch_store"]


class SketchStore:
    """Per-row concatenated LSH sketches plus match-count bookkeeping.

    Parameters
    ----------
    sketches:
        ``(n_rows, n_hashes)`` array of hash values (ints for min-hash, 0/1
        for signed random projection).
    sketcher:
        The sketcher that produced the matrix; supplies the
        collision-probability <-> similarity conversions.
    build_seconds:
        Wall-clock time spent generating the sketches (the "initial sketch
        time" of Figure 2.9).
    """

    def __init__(self, sketches: np.ndarray, sketcher, build_seconds: float = 0.0) -> None:
        self.sketches = np.asarray(sketches)
        if self.sketches.ndim != 2:
            raise ValueError("sketches must be a 2-D array")
        self.sketcher = sketcher
        self.build_seconds = float(build_seconds)
        self.hash_comparisons = 0

    @property
    def n_rows(self) -> int:
        return self.sketches.shape[0]

    @property
    def n_hashes(self) -> int:
        return self.sketches.shape[1]

    def matches(self, first: int, second: int, n_hashes: int,
                offset: int = 0) -> int:
        """Number of matching hash positions in ``[offset, offset + n_hashes)``.

        The incremental BayesLSH loop calls this repeatedly with increasing
        offsets; the store counts every elementary hash comparison performed
        so cache-reuse savings can be quantified.
        """
        stop = min(offset + n_hashes, self.n_hashes)
        if offset >= stop:
            return 0
        a = self.sketches[first, offset:stop]
        b = self.sketches[second, offset:stop]
        self.hash_comparisons += stop - offset
        return int(np.count_nonzero(a == b))

    def estimate_similarity(self, first: int, second: int,
                            n_hashes: int | None = None) -> float:
        """Point similarity estimate from the first *n_hashes* positions."""
        if n_hashes is None:
            n_hashes = self.n_hashes
        n_hashes = min(n_hashes, self.n_hashes)
        matches = self.matches(first, second, n_hashes)
        if n_hashes == 0:
            return 0.0
        return self.sketcher.collision_to_similarity(matches / n_hashes)

    def reset_counters(self) -> None:
        self.hash_comparisons = 0


def build_sketch_store(dataset: VectorDataset, *, kind: str = "cosine",
                       n_hashes: int = 128, seed=None) -> SketchStore:
    """Sketch every row of *dataset* and return the resulting store.

    Parameters
    ----------
    kind:
        ``"cosine"`` (signed random projection) or ``"jaccard"`` (min-hash on
        the rows' feature sets).
    n_hashes:
        Sketch length.
    """
    watch = Stopwatch()
    watch.start()
    if kind == "cosine":
        sketcher = CosineSketcher(n_hashes, dataset.n_features, seed=seed)
        sketches = sketcher.sketch_many(dataset.row(i) for i in range(dataset.n_rows))
    elif kind == "jaccard":
        sketcher = MinHashSketcher(n_hashes, seed=seed)
        sketches = sketcher.sketch_many(
            dataset.row(i)[0] for i in range(dataset.n_rows))
    else:
        raise ValueError("kind must be 'cosine' or 'jaccard'")
    elapsed = watch.stop()
    return SketchStore(sketches, sketcher, build_seconds=elapsed)
