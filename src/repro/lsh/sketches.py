"""Concatenated sketch storage for the all-pairs workload.

BayesLSH departs from the classic hash-table LSH layout: because the all-pairs
problem evaluates candidate pairs directly, it keeps each object's LSH hashes
as one concatenated sketch and compares prefixes of two sketches
incrementally (Section 2.4).  ``SketchStore`` owns that matrix and exposes the
incremental match-counting primitive the Bayesian inference consumes, plus an
operation counter so knowledge-caching experiments can report how much hash
comparison work was avoided.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.vectors import DatasetDelta, VectorDataset
from repro.lsh.minhash import MinHashSketcher
from repro.lsh.random_projection import CosineSketcher
from repro.utils.timers import Stopwatch

__all__ = ["SketchStore", "build_sketch_store"]


class SketchStore:
    """Per-row concatenated LSH sketches plus match-count bookkeeping.

    Parameters
    ----------
    sketches:
        ``(n_rows, n_hashes)`` array of hash values (ints for min-hash, 0/1
        for signed random projection).
    sketcher:
        The sketcher that produced the matrix; supplies the
        collision-probability <-> similarity conversions.
    build_seconds:
        Wall-clock time spent generating the sketches (the "initial sketch
        time" of Figure 2.9).
    """

    def __init__(self, sketches: np.ndarray, sketcher, build_seconds: float = 0.0) -> None:
        self.sketches = np.asarray(sketches)
        if self.sketches.ndim != 2:
            raise ValueError("sketches must be a 2-D array")
        self.sketcher = sketcher
        self.build_seconds = float(build_seconds)
        self.hash_comparisons = 0

    @property
    def n_rows(self) -> int:
        """Number of sketched rows."""
        return self.sketches.shape[0]

    @property
    def n_hashes(self) -> int:
        """Sketch length (hash positions per row)."""
        return self.sketches.shape[1]

    def copy(self) -> "SketchStore":
        """An independent store over the same sketches.

        Cheap by construction: the sketch matrix is shared (``extend_rows``
        replaces it via ``vstack`` rather than mutating in place, so the
        copy and the original can diverge safely) and the sketcher is
        stateless per row.  The delta-extension path copies a parent's
        store before extending so one parent can seed many children.
        """
        return SketchStore(self.sketches, self.sketcher,
                           build_seconds=self.build_seconds)

    def extend_rows(self, dataset: VectorDataset,
                    delta: DatasetDelta | None = None, *,
                    verify_fingerprint: bool = True) -> DatasetDelta:
        """Sketch only *dataset*'s appended rows, growing the store in place.

        Sketchers hash each row independently with seed-derived randomness, so
        sketching just the suffix yields a matrix bit-identical to a full
        rebuild — the delta-aware analogue of ``DeltaApssBackend.extend`` at
        O(Δn · n_hashes) cost instead of O(n · n_hashes).

        Parameters
        ----------
        dataset:
            The appended child dataset.  Its first ``self.n_rows`` rows must
            be the ones this store already sketched.
        delta:
            The append record; defaults to ``dataset.parent_delta``.
        verify_fingerprint:
            When true, check ``delta.child_fingerprint`` against *dataset*
            (skipped by callers that already validated the chain).

        Returns
        -------
        The delta that was applied.
        """
        if delta is None:
            delta = getattr(dataset, "parent_delta", None)
        if delta is None:
            raise ValueError("dataset has no parent delta; pass delta= explicitly")
        if delta.parent_rows != self.n_rows:
            raise ValueError(
                f"sketch store covers {self.n_rows} rows but delta parent has "
                f"{delta.parent_rows}")
        if delta.child_rows != dataset.n_rows:
            raise ValueError(
                f"delta child has {delta.child_rows} rows but dataset has "
                f"{dataset.n_rows}")
        if verify_fingerprint and dataset.fingerprint() != delta.child_fingerprint:
            raise ValueError("dataset fingerprint does not match delta child")
        if delta.n_new == 0:
            return delta
        watch = Stopwatch()
        watch.start()
        if getattr(self.sketcher, "similarity_kind", None) == "cosine":
            new_sketches = self.sketcher.sketch_many(
                dataset.row(i) for i in delta.new_rows)
        else:
            new_sketches = self.sketcher.sketch_many(
                dataset.row(i)[0] for i in delta.new_rows)
        self.sketches = np.vstack([self.sketches, np.asarray(new_sketches)])
        self.build_seconds += watch.stop()
        return delta

    def matches(self, first: int, second: int, n_hashes: int,
                offset: int = 0) -> int:
        """Number of matching hash positions in ``[offset, offset + n_hashes)``.

        The incremental BayesLSH loop calls this repeatedly with increasing
        offsets; the store counts every elementary hash comparison performed
        so cache-reuse savings can be quantified.
        """
        stop = min(offset + n_hashes, self.n_hashes)
        if offset >= stop:
            return 0
        a = self.sketches[first, offset:stop]
        b = self.sketches[second, offset:stop]
        self.hash_comparisons += stop - offset
        return int(np.count_nonzero(a == b))

    def estimate_similarity(self, first: int, second: int,
                            n_hashes: int | None = None) -> float:
        """Point similarity estimate from the first *n_hashes* positions."""
        if n_hashes is None:
            n_hashes = self.n_hashes
        n_hashes = min(n_hashes, self.n_hashes)
        matches = self.matches(first, second, n_hashes)
        if n_hashes == 0:
            return 0.0
        return self.sketcher.collision_to_similarity(matches / n_hashes)

    def reset_counters(self) -> None:
        """Zero the hash-comparison counter."""
        self.hash_comparisons = 0


def build_sketch_store(dataset: VectorDataset, *, kind: str = "cosine",
                       n_hashes: int = 128, seed=None) -> SketchStore:
    """Sketch every row of *dataset* and return the resulting store.

    Parameters
    ----------
    kind:
        ``"cosine"`` (signed random projection) or ``"jaccard"`` (min-hash on
        the rows' feature sets).
    n_hashes:
        Sketch length.
    """
    watch = Stopwatch()
    watch.start()
    if kind == "cosine":
        sketcher = CosineSketcher(n_hashes, dataset.n_features, seed=seed)
        sketches = sketcher.sketch_many(dataset.row(i) for i in range(dataset.n_rows))
    elif kind == "jaccard":
        sketcher = MinHashSketcher(n_hashes, seed=seed)
        sketches = sketcher.sketch_many(
            dataset.row(i)[0] for i in range(dataset.n_rows))
    else:
        raise ValueError("kind must be 'cosine' or 'jaccard'")
    elapsed = watch.stop()
    return SketchStore(sketches, sketcher, build_seconds=elapsed)
