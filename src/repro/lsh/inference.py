"""Bayesian inference over hash-collision probabilities.

BayesLSH reasons about a candidate pair's unknown similarity through the
posterior distribution of its hash-collision probability ``p`` after observing
``m`` matches among ``n`` compared hashes (a binomial likelihood).  The
posterior is maintained on a discrete grid, which keeps the implementation
measure-agnostic: the sketcher supplies the monotone map between collision
probability and similarity (identity for min-hash / Jaccard,
``cos(pi(1-p))`` for signed random projections / cosine).

Two questions are asked of the posterior (Equations 2.1 and 2.2):

* *pruning*   — is ``Pr(S >= t | m, n)`` below ``epsilon``?
* *concentration* — is ``Pr(|s_hat - S| >= delta)`` below ``gamma``?
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_fraction

__all__ = ["PosteriorGrid"]


class PosteriorGrid:
    """Discrete posterior over the hash-collision probability of one pair.

    Parameters
    ----------
    converter:
        Object exposing ``collision_to_similarity`` /
        ``similarity_to_collision`` (any sketcher class works).
    resolution:
        Number of grid points on [0, 1].
    prior:
        Optional prior weights over the grid (defaults to uniform).  The
        PLASMA-HD knowledge cache passes the empirical similarity histogram
        from earlier probes here, which is how cached knowledge sharpens new
        estimates.
    """

    def __init__(self, converter, resolution: int = 201, prior=None) -> None:
        if resolution < 3:
            raise ValueError("resolution must be at least 3")
        self.converter = converter
        self.grid = np.linspace(0.0, 1.0, resolution)
        self.similarity_grid = np.array(
            [converter.collision_to_similarity(p) for p in self.grid])
        if prior is None:
            prior = np.ones(resolution)
        prior = np.asarray(prior, dtype=np.float64)
        if len(prior) != resolution:
            raise ValueError("prior must have one weight per grid point")
        if np.any(prior < 0) or prior.sum() == 0:
            raise ValueError("prior weights must be non-negative and not all zero")
        self.prior = prior / prior.sum()

    # ------------------------------------------------------------------ #
    def with_prior(self, prior) -> "PosteriorGrid":
        """Return a new grid with the same converter/resolution but a new prior."""
        return PosteriorGrid(self.converter, resolution=len(self.grid), prior=prior)

    def posterior(self, matches: int, n_hashes: int) -> np.ndarray:
        """Posterior weights after observing *matches* of *n_hashes* hashes."""
        if n_hashes < 0 or matches < 0 or matches > n_hashes:
            raise ValueError("need 0 <= matches <= n_hashes")
        if n_hashes == 0:
            return self.prior.copy()
        # Binomial likelihood on the grid, computed in log space for stability.
        with np.errstate(divide="ignore", invalid="ignore"):
            log_like = (matches * np.log(self.grid)
                        + (n_hashes - matches) * np.log(1.0 - self.grid))
        log_like[np.isnan(log_like)] = -np.inf
        # p=0 with matches=0 and p=1 with matches=n are legitimate mass points.
        if matches == 0:
            log_like[0] = 0.0
        if matches == n_hashes:
            log_like[-1] = 0.0
        log_like -= log_like.max()
        weights = self.prior * np.exp(log_like)
        total = weights.sum()
        if total == 0:
            return self.prior.copy()
        return weights / total

    # ------------------------------------------------------------------ #
    # Queries used by the BayesLSH stopping rules
    # ------------------------------------------------------------------ #
    def prob_similarity_above(self, posterior: np.ndarray, threshold: float) -> float:
        """``Pr(S >= threshold)`` under *posterior*."""
        return float(posterior[self.similarity_grid >= threshold].sum())

    def mean_similarity(self, posterior: np.ndarray) -> float:
        """Posterior mean of the similarity."""
        return float(np.dot(posterior, self.similarity_grid))

    def map_similarity(self, posterior: np.ndarray) -> float:
        """Maximum a posteriori similarity estimate."""
        return float(self.similarity_grid[int(np.argmax(posterior))])

    def similarity_variance(self, posterior: np.ndarray) -> float:
        """Posterior variance of the similarity."""
        mean = self.mean_similarity(posterior)
        return float(np.dot(posterior, (self.similarity_grid - mean) ** 2))

    def prob_outside_band(self, posterior: np.ndarray, estimate: float,
                          delta: float) -> float:
        """``Pr(|estimate - S| >= delta)`` under *posterior* (Equation 2.2)."""
        check_fraction(delta, "delta")
        inside = np.abs(self.similarity_grid - estimate) < delta
        return float(posterior[~inside].sum())

    def credible_interval(self, posterior: np.ndarray,
                          mass: float = 0.95) -> tuple[float, float]:
        """Central credible interval for the similarity (used for error bars)."""
        check_fraction(mass, "mass")
        order = np.argsort(self.similarity_grid)
        sims = self.similarity_grid[order]
        weights = posterior[order]
        cumulative = np.cumsum(weights)
        lower_q = (1.0 - mass) / 2.0
        upper_q = 1.0 - lower_q
        lower = sims[np.searchsorted(cumulative, lower_q, side="left").clip(0, len(sims) - 1)]
        upper = sims[np.searchsorted(cumulative, upper_q, side="left").clip(0, len(sims) - 1)]
        return float(lower), float(upper)
