"""Min-wise hashing for Jaccard similarity estimation.

A min-hash under a random permutation pi collides for two sets with
probability equal to their Jaccard similarity (Equation 4.1 in the
dissertation).  We use the standard universal-hash approximation of random
permutations: ``h(x) = (a*x + b) mod p`` with a large prime ``p``, one (a, b)
pair per hash function.
"""

from __future__ import annotations

import numpy as np

from repro.utils.random_state import ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["MinHashSketcher"]

_MERSENNE_PRIME = (1 << 61) - 1
_EMPTY_SENTINEL = _MERSENNE_PRIME


class MinHashSketcher:
    """Computes k-way min-hash signatures of integer item sets.

    Parameters
    ----------
    n_hashes:
        Number of independent hash functions (the signature length ``k``).
    seed:
        Seed or generator controlling the hash coefficients.
    """

    #: Min-hash is an LSH family for Jaccard similarity: collision
    #: probability equals similarity, so conversions are the identity.
    similarity_kind = "jaccard"

    def __init__(self, n_hashes: int, seed=None) -> None:
        check_positive_int(n_hashes, "n_hashes")
        rng = ensure_rng(seed)
        self.n_hashes = n_hashes
        self._a = rng.integers(1, _MERSENNE_PRIME, size=n_hashes, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=n_hashes, dtype=np.int64)

    def sketch(self, items) -> np.ndarray:
        """Return the length-``n_hashes`` signature of an item collection.

        Empty inputs get a sentinel signature that never collides with
        non-empty ones.
        """
        items = np.asarray(list(items), dtype=np.int64)
        if items.size == 0:
            return np.full(self.n_hashes, _EMPTY_SENTINEL, dtype=np.int64)
        # hashes[h, i] = (a_h * item_i + b_h) mod p ; take min over items.
        hashed = (self._a[:, None] * items[None, :] + self._b[:, None]) % _MERSENNE_PRIME
        return hashed.min(axis=1)

    def sketch_many(self, item_sets) -> np.ndarray:
        """Signatures for an iterable of item collections, stacked row-wise."""
        return np.vstack([self.sketch(items) for items in item_sets])

    @staticmethod
    def collision_to_similarity(collision_probability: float) -> float:
        """Map hash-collision probability to Jaccard similarity (identity)."""
        return float(collision_probability)

    @staticmethod
    def similarity_to_collision(similarity: float) -> float:
        """Map Jaccard similarity to hash-collision probability (identity)."""
        return float(similarity)

    @staticmethod
    def estimate_similarity(signature_a: np.ndarray, signature_b: np.ndarray,
                            n_hashes: int | None = None) -> float:
        """Fraction of matching positions between two signatures.

        If *n_hashes* is given, only the first that many positions are
        compared (supporting incremental evaluation).
        """
        if n_hashes is None:
            n_hashes = len(signature_a)
        if n_hashes == 0:
            return 0.0
        a = signature_a[:n_hashes]
        b = signature_b[:n_hashes]
        return float(np.count_nonzero(a == b)) / n_hashes
