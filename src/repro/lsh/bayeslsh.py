"""BayesLSH: Bayesian early pruning and concentration for all-pairs search.

For every candidate pair, hashes are compared incrementally in small batches.
After each batch the posterior over the pair's similarity is updated and two
stopping rules are checked:

* **prune** (Equation 2.1): the probability that the similarity meets the
  user threshold has dropped below ``epsilon`` — stop, discard the pair.
* **concentrate** (Equation 2.2): the similarity estimate is within ``delta``
  of the true value with probability at least ``1 - gamma`` — stop, accept
  the estimate (the pair is *retained* if the estimate meets the threshold).

PLASMA-HD's crucial enhancement is that the evaluation of every candidate —
pruned or not — is *memoized* (hash match counts, MAP estimate, variance) so
that estimates at other thresholds and later probes can reuse the work.  The
``cache`` hook below is how that knowledge cache plugs in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lsh.inference import PosteriorGrid
from repro.lsh.sketches import SketchStore
from repro.similarity.types import SimilarPair
from repro.utils.timers import PhaseTimer
from repro.utils.validation import check_fraction, check_threshold

__all__ = ["BayesLSHConfig", "PairEvaluation", "ApssResult", "BayesLSH"]


@dataclass(frozen=True)
class BayesLSHConfig:
    """Tunable parameters of the BayesLSH stopping rules.

    Attributes
    ----------
    epsilon:
        Allowed false-negative probability for pruning (Equation 2.1).
    delta, gamma:
        Accuracy requirement for accepted estimates (Equation 2.2): the
        estimate must be within ``delta`` of the truth with probability at
        least ``1 - gamma``.
    hash_batch:
        Number of hashes compared between consecutive posterior updates.
    max_hashes:
        Cap on hashes per pair (bounded by the sketch length at run time).
    resolution:
        Grid resolution of the posterior.
    """

    epsilon: float = 0.03
    delta: float = 0.05
    gamma: float = 0.05
    hash_batch: int = 16
    max_hashes: int = 256
    resolution: int = 201

    def __post_init__(self) -> None:
        check_fraction(self.epsilon, "epsilon", inclusive_low=False)
        check_fraction(self.delta, "delta", inclusive_low=False)
        check_fraction(self.gamma, "gamma", inclusive_low=False)
        if self.hash_batch <= 0:
            raise ValueError("hash_batch must be positive")
        if self.max_hashes < self.hash_batch:
            raise ValueError("max_hashes must be at least hash_batch")


@dataclass
class PairEvaluation:
    """Outcome of evaluating one candidate pair.

    ``estimate`` is the maximum a posteriori similarity given the hashes
    compared so far; ``variance`` its posterior variance.  ``outcome`` is one
    of ``"pruned"``, ``"concentrated"`` or ``"exhausted"`` (ran out of
    hashes before either rule fired).
    """

    first: int
    second: int
    n_hashes: int
    matches: int
    estimate: float
    variance: float
    outcome: str
    retained: bool
    cached_hashes: int = 0

    @property
    def pair(self) -> tuple[int, int]:
        """The evaluated ``(first, second)`` row-index pair."""
        return (self.first, self.second)


@dataclass
class ApssResult:
    """Result of one BayesLSH all-pairs run at a single threshold."""

    threshold: float
    pairs: list[SimilarPair] = field(default_factory=list)
    evaluations: list[PairEvaluation] = field(default_factory=list)
    n_candidates: int = 0
    n_pruned: int = 0
    hash_comparisons: int = 0
    cached_hash_reuse: int = 0
    timers: PhaseTimer = field(default_factory=PhaseTimer)

    @property
    def n_retained(self) -> int:
        """Number of candidate pairs that survived verification."""
        return len(self.pairs)

    def pair_count(self) -> int:
        """Number of retained pairs (alias of :attr:`n_retained`)."""
        return len(self.pairs)


class BayesLSH:
    """Runs BayesLSH verification over candidate pairs from a sketch store.

    Parameters
    ----------
    store:
        The :class:`~repro.lsh.sketches.SketchStore` with per-row sketches.
    config:
        Stopping-rule parameters.
    prior:
        Optional prior weights over the collision-probability grid; supplied
        by the knowledge cache to sharpen estimates across probes.
    """

    def __init__(self, store: SketchStore, config: BayesLSHConfig | None = None,
                 prior=None) -> None:
        self.store = store
        self.config = config or BayesLSHConfig()
        self.grid = PosteriorGrid(store.sketcher, resolution=self.config.resolution,
                                  prior=prior)

    # ------------------------------------------------------------------ #
    def evaluate_pair(self, first: int, second: int, threshold: float,
                      cached: tuple[int, int] | None = None) -> PairEvaluation:
        """Evaluate one candidate pair against *threshold*.

        Parameters
        ----------
        cached:
            Optional ``(n_hashes, matches)`` carried over from a previous
            probe of the same pair; evaluation resumes from there instead of
            starting at zero, which is the knowledge-caching speedup.
        """
        check_threshold(threshold)
        config = self.config
        max_hashes = min(config.max_hashes, self.store.n_hashes)

        n_hashes, matches = (0, 0) if cached is None else cached
        n_hashes = min(n_hashes, max_hashes)
        cached_hashes = n_hashes

        posterior = self.grid.posterior(matches, n_hashes)
        outcome = "exhausted"
        while True:
            if n_hashes > 0:
                prob_above = self.grid.prob_similarity_above(posterior, threshold)
                if prob_above < config.epsilon:
                    outcome = "pruned"
                    break
                estimate = self.grid.map_similarity(posterior)
                outside = self.grid.prob_outside_band(posterior, estimate, config.delta)
                if outside < config.gamma:
                    outcome = "concentrated"
                    break
            if n_hashes >= max_hashes:
                outcome = "exhausted"
                break
            batch = min(config.hash_batch, max_hashes - n_hashes)
            matches += self.store.matches(first, second, batch, offset=n_hashes)
            n_hashes += batch
            posterior = self.grid.posterior(matches, n_hashes)

        estimate = self.grid.map_similarity(posterior)
        variance = self.grid.similarity_variance(posterior)
        retained = outcome != "pruned" and estimate >= threshold
        return PairEvaluation(first=first, second=second, n_hashes=n_hashes,
                              matches=matches, estimate=estimate,
                              variance=variance, outcome=outcome,
                              retained=retained, cached_hashes=cached_hashes)

    # ------------------------------------------------------------------ #
    def run(self, candidates, threshold: float, cache=None,
            progress_callback=None, progress_every: int = 0) -> ApssResult:
        """Run the all-pairs verification over *candidates* at *threshold*.

        Parameters
        ----------
        candidates:
            Iterable of (i, j) candidate pairs.
        cache:
            Optional knowledge cache exposing ``lookup(pair)`` returning
            ``(n_hashes, matches)`` or ``None``, and ``record(evaluation)``.
        progress_callback:
            Called as ``progress_callback(fraction_done, result)`` every
            *progress_every* candidates — this powers the incremental
            estimates of Figures 2.6–2.8.
        """
        check_threshold(threshold)
        candidates = list(candidates)
        result = ApssResult(threshold=threshold, n_candidates=len(candidates))
        self.store.reset_counters()

        with result.timers.phase("verification"):
            for position, (first, second) in enumerate(candidates):
                cached = cache.lookup((first, second)) if cache is not None else None
                evaluation = self.evaluate_pair(first, second, threshold,
                                                cached=cached)
                result.evaluations.append(evaluation)
                result.cached_hash_reuse += evaluation.cached_hashes
                if evaluation.outcome == "pruned" and not evaluation.retained:
                    result.n_pruned += 1
                if evaluation.retained:
                    result.pairs.append(
                        SimilarPair(first, second, evaluation.estimate))
                if cache is not None:
                    cache.record(evaluation)
                if (progress_callback is not None and progress_every > 0
                        and (position + 1) % progress_every == 0):
                    fraction = (position + 1) / len(candidates)
                    progress_callback(fraction, result)

        result.hash_comparisons = self.store.hash_comparisons
        return result
