"""Signed random projection (SimHash) sketches for cosine similarity.

Each hash function is a random hyperplane ``r``; the hash of a vector ``x`` is
``sign(r . x)``.  Two vectors collide on a hash with probability
``1 - theta / pi`` where ``theta`` is the angle between them, which gives the
standard LSH family for cosine similarity used by BayesLSH for the weighted
datasets in the dissertation.
"""

from __future__ import annotations

import numpy as np

from repro.utils.random_state import ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["CosineSketcher"]


class CosineSketcher:
    """Computes signed-random-projection bit sketches of sparse vectors.

    Parameters
    ----------
    n_bits:
        Number of hash bits (sketch length).
    n_features:
        Dimensionality of the vectors being sketched.
    seed:
        Seed or generator controlling the random hyperplanes.
    """

    similarity_kind = "cosine"

    def __init__(self, n_bits: int, n_features: int, seed=None) -> None:
        check_positive_int(n_bits, "n_bits")
        check_positive_int(n_features, "n_features")
        rng = ensure_rng(seed)
        self.n_bits = n_bits
        self.n_features = n_features
        # One Gaussian hyperplane per bit, stored as float32 to bound memory.
        self._hyperplanes = rng.standard_normal((n_bits, n_features)).astype(np.float32)

    def sketch(self, row) -> np.ndarray:
        """Bit sketch (uint8 array of 0/1) of a sparse ``(indices, values)`` row."""
        indices, values = row
        if len(indices) == 0:
            return np.zeros(self.n_bits, dtype=np.uint8)
        projections = self._hyperplanes[:, indices] @ values
        return (projections >= 0).astype(np.uint8)

    def sketch_many(self, rows) -> np.ndarray:
        """Bit sketches for an iterable of sparse rows, stacked row-wise."""
        return np.vstack([self.sketch(row) for row in rows])

    @staticmethod
    def collision_to_similarity(collision_probability: float) -> float:
        """Map bit-agreement probability to cosine similarity.

        ``p = 1 - theta/pi``  =>  ``cos(theta) = cos(pi * (1 - p))``.
        """
        p = min(max(collision_probability, 0.0), 1.0)
        return float(np.cos(np.pi * (1.0 - p)))

    @staticmethod
    def similarity_to_collision(similarity: float) -> float:
        """Map cosine similarity to bit-agreement probability."""
        s = min(max(similarity, -1.0), 1.0)
        return float(1.0 - np.arccos(s) / np.pi)

    @classmethod
    def estimate_similarity(cls, sketch_a: np.ndarray, sketch_b: np.ndarray,
                            n_bits: int | None = None) -> float:
        """Cosine estimate from the agreeing fraction of the first *n_bits* bits."""
        if n_bits is None:
            n_bits = len(sketch_a)
        if n_bits == 0:
            return 0.0
        agree = np.count_nonzero(sketch_a[:n_bits] == sketch_b[:n_bits]) / n_bits
        return cls.collision_to_similarity(agree)
