"""Locality-sensitive hashing substrate: sketches, candidates and BayesLSH."""

from repro.lsh.minhash import MinHashSketcher
from repro.lsh.random_projection import CosineSketcher
from repro.lsh.sketches import SketchStore, build_sketch_store
from repro.lsh.candidates import all_pair_candidates, banded_candidates
from repro.lsh.inference import PosteriorGrid
from repro.lsh.bayeslsh import BayesLSH, BayesLSHConfig, PairEvaluation, ApssResult

__all__ = [
    "MinHashSketcher",
    "CosineSketcher",
    "SketchStore",
    "build_sketch_store",
    "all_pair_candidates",
    "banded_candidates",
    "PosteriorGrid",
    "BayesLSH",
    "BayesLSHConfig",
    "PairEvaluation",
    "ApssResult",
]
