"""repro: a reproduction of PLASMA-HD and its supporting subsystems.

The package is organised by subsystem:

``repro.datasets``
    Sparse/dense vector datasets, transaction databases and synthetic
    generators standing in for the corpora used in the dissertation.
``repro.similarity``
    Similarity measures and the exact all-pairs similarity search baseline.
``repro.lsh``
    Locality-sensitive hashing sketches and BayesLSH inference.
``repro.core``
    The PLASMA-HD engine: knowledge cache, cumulative APSS graph,
    incremental estimation, interactive session and visual cues.
``repro.graphs``
    Graph substrate: measures, generators and similarity-graph construction.
``repro.growth``
    Graph Growth: sampling and prediction of measures of densifying graphs.
``repro.lam``
    The Localized Approximate Miner, compression baselines, compressed
    analytics and compressibility-versus-threshold scans.
``repro.parcoords``
    The enhanced parallel-coordinates visualization model.
"""

from repro._version import __version__

__all__ = ["__version__"]
