"""Thresholded similarity graphs and densifying graph series.

The graph transformation at the heart of PLASMA-HD: connect every pair of
records whose similarity meets a threshold.  Decreasing the threshold
monotonically adds edges, which is precisely the "densifying graph" series
Chapter 3 studies (network growth simulated from non-network data by
connecting the most similar pairs first).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.vectors import VectorDataset
from repro.graphs.graph import Graph
from repro.similarity.measures import pairwise_similarity_matrix
from repro.similarity.types import SimilarPair

__all__ = ["graph_from_pairs", "similarity_graph", "threshold_for_edge_count",
           "densifying_series"]


def graph_from_pairs(n_nodes: int, pairs) -> Graph:
    """Build a graph from (first, second[, similarity]) pairs."""
    graph = Graph(n_nodes)
    for pair in pairs:
        if isinstance(pair, SimilarPair):
            graph.add_edge(pair.first, pair.second)
        else:
            graph.add_edge(int(pair[0]), int(pair[1]))
    return graph


def similarity_graph(dataset: VectorDataset, threshold: float,
                     measure: str = "cosine",
                     similarities: np.ndarray | None = None,
                     backend: str | None = None) -> Graph:
    """Exact thresholded similarity graph of *dataset*.

    Parameters
    ----------
    similarities:
        Optional precomputed dense similarity matrix; supplying it lets a
        caller build a whole densifying series from one pass of pairwise
        similarity computation.  Without it the edge set comes from the APSS
        engine, which never materialises the full matrix.
    backend:
        Engine backend for the no-matrix path (default ``exact-blocked``).
    """
    if similarities is None:
        from repro.similarity.engine import DEFAULT_BACKEND, apss_search

        result = apss_search(dataset, threshold, measure=measure,
                             backend=backend or DEFAULT_BACKEND)
        return graph_from_pairs(dataset.n_rows, result.pairs)
    n = dataset.n_rows
    graph = Graph(n)
    rows, cols = np.nonzero(np.triu(similarities >= threshold, k=1))
    for u, v in zip(rows.tolist(), cols.tolist()):
        graph.add_edge(u, v)
    return graph


def threshold_for_edge_count(similarities: np.ndarray, target_edges: int) -> float:
    """The similarity threshold that yields approximately *target_edges* edges.

    Chapter 3 controls graph density through edge count (|E_i| = 2^i * N); the
    corresponding threshold is the matching upper quantile of the pairwise
    similarity distribution.
    """
    n = similarities.shape[0]
    upper = similarities[np.triu_indices(n, k=1)]
    if target_edges <= 0:
        return float(upper.max()) + 1.0
    if target_edges >= len(upper):
        return float(upper.min())
    # The k-th largest similarity is the threshold admitting exactly k pairs.
    partitioned = np.partition(upper, len(upper) - target_edges)
    return float(partitioned[len(upper) - target_edges])


def densifying_series(dataset: VectorDataset, edge_counts,
                      measure: str = "cosine",
                      similarities: np.ndarray | None = None
                      ) -> list[tuple[float, Graph]]:
    """Build a series of graphs of increasing density from one dataset.

    Returns a list of ``(threshold, graph)`` in the order of *edge_counts*.
    Edge counts are matched by choosing the similarity threshold at the
    appropriate quantile, so the series is nested: every graph contains the
    edges of all sparser graphs.
    """
    if similarities is None:
        similarities = pairwise_similarity_matrix(dataset, measure=measure)
    series = []
    for target in edge_counts:
        threshold = threshold_for_edge_count(similarities, int(target))
        graph = similarity_graph(dataset, threshold, measure=measure,
                                 similarities=similarities)
        series.append((threshold, graph))
    return series
