"""Thresholded similarity graphs and densifying graph series.

The graph transformation at the heart of PLASMA-HD: connect every pair of
records whose similarity meets a threshold.  Decreasing the threshold
monotonically adds edges, which is precisely the "densifying graph" series
Chapter 3 studies (network growth simulated from non-network data by
connecting the most similar pairs first).

No function here materialises the ``n x n`` similarity matrix: edge sets come
from the APSS engine and edge-count thresholds from the streaming rank
selection in :mod:`repro.similarity.streaming`.  A precomputed dense matrix
can still be injected through the ``similarities=`` parameters (tests and
callers that already hold one keep working), in which case the original
dense code paths run.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.vectors import VectorDataset
from repro.graphs.graph import Graph
from repro.similarity.types import SimilarPair

__all__ = ["graph_from_pairs", "similarity_graph", "threshold_for_edge_count",
           "densifying_series"]


def graph_from_pairs(n_nodes: int, pairs) -> Graph:
    """Build a graph from (first, second[, similarity]) pairs."""
    graph = Graph(n_nodes)
    for pair in pairs:
        if isinstance(pair, SimilarPair):
            graph.add_edge(pair.first, pair.second)
        else:
            graph.add_edge(int(pair[0]), int(pair[1]))
    return graph


def similarity_graph(dataset: VectorDataset, threshold: float,
                     measure: str = "cosine",
                     similarities: np.ndarray | None = None,
                     backend: str | None = None) -> Graph:
    """Exact thresholded similarity graph of *dataset*.

    Parameters
    ----------
    similarities:
        Optional precomputed dense similarity matrix; supplying it lets a
        caller build a whole densifying series from one pass of pairwise
        similarity computation.  Without it the edge set comes from the APSS
        engine, which never materialises the full matrix.
    backend:
        Engine backend for the no-matrix path (default ``exact-blocked``).
    """
    if similarities is None:
        from repro.similarity.engine import DEFAULT_BACKEND, apss_search

        result = apss_search(dataset, threshold, measure=measure,
                             backend=backend or DEFAULT_BACKEND)
        return graph_from_pairs(dataset.n_rows, result.pairs)
    n = dataset.n_rows
    graph = Graph(n)
    rows, cols = np.nonzero(np.triu(similarities >= threshold, k=1))
    for u, v in zip(rows.tolist(), cols.tolist()):
        graph.add_edge(u, v)
    return graph


def threshold_for_edge_count(similarities, target_edges: int,
                             measure: str = "cosine") -> float:
    """The similarity threshold that yields approximately *target_edges* edges.

    Chapter 3 controls graph density through edge count (|E_i| = 2^i * N); the
    corresponding threshold is the matching upper quantile of the pairwise
    similarity distribution.

    *similarities* is either a precomputed dense similarity matrix or a
    :class:`VectorDataset` — the latter streams the rank selection from the
    blocked kernel (see
    :func:`repro.similarity.streaming.thresholds_for_edge_counts`) so the
    matrix is never held in memory.
    """
    if isinstance(similarities, VectorDataset):
        from repro.similarity.streaming import thresholds_for_edge_counts

        return thresholds_for_edge_counts(similarities, [int(target_edges)],
                                          measure=measure)[0]
    n = similarities.shape[0]
    upper = similarities[np.triu_indices(n, k=1)]
    if target_edges <= 0:
        return float(upper.max()) + 1.0
    if target_edges >= len(upper):
        return float(upper.min())
    # The k-th largest similarity is the threshold admitting exactly k pairs.
    partitioned = np.partition(upper, len(upper) - target_edges)
    return float(partitioned[len(upper) - target_edges])


def densifying_series(dataset: VectorDataset, edge_counts,
                      measure: str = "cosine",
                      similarities: np.ndarray | None = None,
                      engine=None) -> list[tuple[float, Graph]]:
    """Build a series of graphs of increasing density from one dataset.

    Returns a list of ``(threshold, graph)`` in the order of *edge_counts*.
    Edge counts are matched by choosing the similarity threshold at the
    appropriate quantile, so the series is nested: every graph contains the
    edges of all sparser graphs.

    Without an injected *similarities* matrix the thresholds come from one
    streaming rank-selection over the blocked kernel's slabs and the graphs
    from a single engine search at the loosest threshold, reused across every
    denser step through a :class:`~repro.similarity.cache.CachedApssEngine`
    (pass *engine* to share that cache across calls).  Peak memory follows
    the densest requested graph, never the ``n x n`` matrix.
    """
    edge_counts = [int(target) for target in edge_counts]
    if similarities is not None:
        series = []
        for target in edge_counts:
            threshold = threshold_for_edge_count(similarities, target)
            graph = similarity_graph(dataset, threshold, measure=measure,
                                     similarities=similarities)
            series.append((threshold, graph))
        return series

    if not edge_counts:
        return []
    from repro.similarity.cache import CachedApssEngine
    from repro.similarity.streaming import thresholds_for_edge_counts

    thresholds = thresholds_for_edge_counts(dataset, edge_counts,
                                            measure=measure)
    if engine is None:
        engine = CachedApssEngine()
    # Warm the sweep cache with the loosest threshold: one quadratic pass
    # serves the whole series, each step filtering the memoised pair set.
    engine.search(dataset, min(thresholds), measure)
    series = []
    for threshold in thresholds:
        result = engine.search(dataset, threshold, measure)
        series.append((threshold, graph_from_pairs(dataset.n_rows,
                                                   result.pairs)))
    return series
