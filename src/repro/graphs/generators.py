"""Graph generation models used as baselines in the Graph Growth study.

Chapter 3 compares data-driven densifying graphs against three intuitive
generation models — Erdős–Rényi (ER), Preferential Attachment (PA) and random
geometric (Geom) graphs — whose only required property is that an input
parameter controls the approximate edge count.  ``generate_with_edge_count``
exposes exactly that interface so a series of model graphs of increasing
density can be produced alongside a data-driven densifying series.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.random_state import ensure_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "erdos_renyi_graph",
    "preferential_attachment_graph",
    "random_geometric_graph",
    "generate_with_edge_count",
    "GENERATORS",
]


def erdos_renyi_graph(n_nodes: int, target_edges: int, seed=None) -> Graph:
    """G(n, m): *target_edges* distinct uniform random edges."""
    check_positive_int(n_nodes, "n_nodes")
    rng = ensure_rng(seed)
    max_edges = n_nodes * (n_nodes - 1) // 2
    target_edges = min(int(target_edges), max_edges)
    graph = Graph(n_nodes)
    if target_edges <= 0:
        return graph
    # Rejection sampling is fine while the target is well below saturation;
    # fall back to explicit enumeration when nearly complete.
    if target_edges > 0.6 * max_edges:
        all_edges = [(u, v) for u in range(n_nodes) for v in range(u + 1, n_nodes)]
        chosen = rng.choice(len(all_edges), size=target_edges, replace=False)
        for index in chosen:
            graph.add_edge(*all_edges[int(index)])
        return graph
    while graph.n_edges < target_edges:
        u = int(rng.integers(n_nodes))
        v = int(rng.integers(n_nodes))
        graph.add_edge(u, v)
    return graph


def preferential_attachment_graph(n_nodes: int, target_edges: int, seed=None) -> Graph:
    """Barabási–Albert-style growth with a repeated-edge pass to hit the target.

    Nodes arrive one at a time and attach to existing nodes with probability
    proportional to degree.  After the growth pass, extra preferential edges
    are added (or none) so the final edge count approximates *target_edges*.
    """
    check_positive_int(n_nodes, "n_nodes")
    rng = ensure_rng(seed)
    max_edges = n_nodes * (n_nodes - 1) // 2
    target_edges = min(int(target_edges), max_edges)
    graph = Graph(n_nodes)
    if target_edges <= 0 or n_nodes < 2:
        return graph

    edges_per_node = max(1, target_edges // max(1, n_nodes - 1))
    # Repeated-node list implements preferential selection in O(1).
    repeated: list[int] = [0]
    for node in range(1, n_nodes):
        attachments = min(edges_per_node, node)
        chosen: set[int] = set()
        attempts = 0
        while len(chosen) < attachments and attempts < 20 * attachments:
            attempts += 1
            target = repeated[int(rng.integers(len(repeated)))] if repeated else int(rng.integers(node))
            if target != node:
                chosen.add(target)
        for target in chosen:
            if graph.add_edge(node, target):
                repeated.extend([node, target])
        if not chosen:
            repeated.append(node)

    # Top up (preferentially) or accept slight overshoot.
    attempts = 0
    while graph.n_edges < target_edges and attempts < 50 * target_edges:
        attempts += 1
        u = repeated[int(rng.integers(len(repeated)))]
        v = int(rng.integers(n_nodes))
        if graph.add_edge(u, v):
            repeated.extend([u, v])
    return graph


def random_geometric_graph(n_nodes: int, target_edges: int, seed=None,
                           dimensions: int = 2) -> Graph:
    """Random geometric graph whose radius is tuned to hit *target_edges*.

    Points are uniform in the unit hypercube; the pairwise-distance
    distribution is computed once and the connection radius is chosen as the
    quantile that yields the requested number of edges, so the edge count is
    matched exactly (up to ties).
    """
    check_positive_int(n_nodes, "n_nodes")
    rng = ensure_rng(seed)
    max_edges = n_nodes * (n_nodes - 1) // 2
    target_edges = min(int(target_edges), max_edges)
    graph = Graph(n_nodes)
    if target_edges <= 0 or n_nodes < 2:
        return graph
    points = rng.random((n_nodes, dimensions))
    diffs = points[:, None, :] - points[None, :, :]
    distances = np.sqrt((diffs ** 2).sum(axis=2))
    iu = np.triu_indices(n_nodes, k=1)
    pair_distances = distances[iu]
    order = np.argsort(pair_distances)
    chosen = order[:target_edges]
    rows, cols = iu[0][chosen], iu[1][chosen]
    for u, v in zip(rows.tolist(), cols.tolist()):
        graph.add_edge(u, v)
    return graph


GENERATORS = {
    "erdos_renyi": erdos_renyi_graph,
    "preferential_attachment": preferential_attachment_graph,
    "random_geometric": random_geometric_graph,
}


def generate_with_edge_count(model: str, n_nodes: int, target_edges: int,
                             seed=None) -> Graph:
    """Generate a graph from the named *model* with ~*target_edges* edges."""
    try:
        generator = GENERATORS[model]
    except KeyError:
        raise KeyError(f"unknown generation model {model!r}; "
                       f"known: {sorted(GENERATORS)}") from None
    return generator(n_nodes, target_edges, seed=seed)
