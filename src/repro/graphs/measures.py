"""Graph measures gamma(G) used across Chapters 2 and 3.

Chapter 3 lists the candidate measures of interest (connected components,
degree, core number, diameter, cliques, triangles, clustering coefficient,
eigenvalues, betweenness centrality).  Each measure here is a function
``Graph -> float`` registered in :data:`MEASURES`, so the growth-prediction
machinery can remain measure-agnostic, exactly as the estimation-model
desiderata in Section 3.5 require.

Two implementation notes:

* Triangle counting is implemented natively (neighbour-set intersections over
  edges) because it is the headline measure of Chapter 3 and is also needed
  per-vertex by the PLASMA-HD visual cues.
* The combinatorially expensive measures (cliques, diameter, betweenness)
  special-case the complete graph with the closed-form value, mirroring the
  analytic shortcut discussed for translation–scaling (for a complete graph
  the triangle count is C(n, 3), the clique number is n, and so on).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "edge_count",
    "triangle_count",
    "triangles_per_vertex",
    "average_clustering",
    "global_clustering_coefficient",
    "mean_degree",
    "degree_variance",
    "number_connected_components",
    "largest_connected_component",
    "mean_core_number",
    "clique_number",
    "number_of_cliques",
    "diameter_largest_component",
    "mean_betweenness",
    "top_eigenvalue",
    "mean_average_neighbor_degree",
    "mean_degree_centrality",
    "MEASURES",
    "available_measures",
    "compute_measure",
    "compute_measures",
]


# --------------------------------------------------------------------------- #
# Local measures
# --------------------------------------------------------------------------- #
def edge_count(graph: Graph) -> float:
    """Number of edges |E|."""
    return float(graph.n_edges)


def triangles_per_vertex(graph: Graph) -> np.ndarray:
    """Number of triangles incident on each vertex.

    Uses the standard edge-iterator algorithm: for each edge (u, v) the
    triangles through the edge are the common neighbours of u and v.  Each
    triangle is counted once per incident vertex.
    """
    counts = np.zeros(graph.n_nodes, dtype=np.int64)
    for u, v in graph.edges():
        common = graph.neighbors(u) & graph.neighbors(v)
        if common:
            counts[u] += len(common)
            counts[v] += len(common)
            for w in common:
                counts[w] += 1
    # Each triangle was found once per edge (3 edges) and attributed to all
    # three vertices each time, so divide per-vertex counts by 3.
    return counts // 3


def triangle_count(graph: Graph) -> float:
    """Total number of triangles in the graph.

    The complete graph short-circuits to C(n, 3), the analytic special case
    Chapter 3 uses instead of exhaustive enumeration.
    """
    n = graph.n_nodes
    if graph.is_complete():
        return float(n * (n - 1) * (n - 2) / 6)
    total = 0
    for u, v in graph.edges():
        total += len(graph.neighbors(u) & graph.neighbors(v))
    return float(total // 3)


def global_clustering_coefficient(graph: Graph) -> float:
    """Transitivity: 3 * triangles / number of connected triples."""
    triangles = triangle_count(graph)
    triples = sum(d * (d - 1) / 2 for d in graph.degrees())
    if triples == 0:
        return 0.0
    return float(3.0 * triangles / triples)


def average_clustering(graph: Graph) -> float:
    """Mean local clustering coefficient over all nodes."""
    per_vertex = triangles_per_vertex(graph)
    coefficients = []
    for node in range(graph.n_nodes):
        degree = graph.degree(node)
        if degree < 2:
            coefficients.append(0.0)
        else:
            coefficients.append(2.0 * per_vertex[node] / (degree * (degree - 1)))
    if not coefficients:
        return 0.0
    return float(np.mean(coefficients))


def mean_degree(graph: Graph) -> float:
    if graph.n_nodes == 0:
        return 0.0
    return float(2.0 * graph.n_edges / graph.n_nodes)


def degree_variance(graph: Graph) -> float:
    if graph.n_nodes == 0:
        return 0.0
    return float(np.var(graph.degrees()))


def mean_degree_centrality(graph: Graph) -> float:
    """Mean degree centrality (degree / (n - 1))."""
    if graph.n_nodes <= 1:
        return 0.0
    return float(np.mean(graph.degrees()) / (graph.n_nodes - 1))


def mean_average_neighbor_degree(graph: Graph) -> float:
    """Mean over nodes of the average degree of their neighbours."""
    values = []
    for node in range(graph.n_nodes):
        neighbors = graph.neighbors(node)
        if neighbors:
            values.append(np.mean([graph.degree(v) for v in neighbors]))
    if not values:
        return 0.0
    return float(np.mean(values))


# --------------------------------------------------------------------------- #
# Component / connectivity measures
# --------------------------------------------------------------------------- #
def _connected_components(graph: Graph) -> list[list[int]]:
    seen = [False] * graph.n_nodes
    components: list[list[int]] = []
    for start in range(graph.n_nodes):
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        component = []
        while stack:
            node = stack.pop()
            component.append(node)
            for neighbor in graph.neighbors(node):
                if not seen[neighbor]:
                    seen[neighbor] = True
                    stack.append(neighbor)
        components.append(component)
    return components


def number_connected_components(graph: Graph) -> float:
    return float(len(_connected_components(graph)))


def largest_connected_component(graph: Graph) -> float:
    components = _connected_components(graph)
    if not components:
        return 0.0
    return float(max(len(c) for c in components))


def mean_core_number(graph: Graph) -> float:
    """Mean k-core number over all nodes (peeling algorithm)."""
    degrees = graph.degrees()
    core = list(degrees)
    order = sorted(range(graph.n_nodes), key=lambda v: degrees[v])
    removed = [False] * graph.n_nodes
    current_degrees = list(degrees)
    # Simple O(n^2)-ish peeling suitable for the graph sizes used here.
    import heapq

    heap = [(degrees[v], v) for v in order]
    heapq.heapify(heap)
    k = 0
    while heap:
        degree, node = heapq.heappop(heap)
        if removed[node] or degree > current_degrees[node]:
            continue
        k = max(k, current_degrees[node])
        core[node] = k
        removed[node] = True
        for neighbor in graph.neighbors(node):
            if not removed[neighbor]:
                current_degrees[neighbor] -= 1
                heapq.heappush(heap, (current_degrees[neighbor], neighbor))
    if graph.n_nodes == 0:
        return 0.0
    return float(np.mean(core))


def diameter_largest_component(graph: Graph) -> float:
    """Diameter of the largest connected component (BFS from every node)."""
    components = _connected_components(graph)
    if not components:
        return 0.0
    component = max(components, key=len)
    if len(component) == 1:
        return 0.0
    if graph.is_complete():
        return 1.0
    members = set(component)
    diameter = 0
    from collections import deque

    for source in component:
        distances = {source: 0}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neighbor in graph.neighbors(node):
                if neighbor in members and neighbor not in distances:
                    distances[neighbor] = distances[node] + 1
                    queue.append(neighbor)
        diameter = max(diameter, max(distances.values()))
    return float(diameter)


# --------------------------------------------------------------------------- #
# Combinatorial / spectral / path measures (delegated where sensible)
# --------------------------------------------------------------------------- #
def clique_number(graph: Graph) -> float:
    """Size of the largest clique (complete graphs short-circuit to n)."""
    if graph.n_nodes == 0:
        return 0.0
    if graph.is_complete():
        return float(graph.n_nodes)
    import networkx as nx

    return float(max((len(c) for c in nx.find_cliques(graph.to_networkx())),
                     default=1))


def number_of_cliques(graph: Graph) -> float:
    """Number of maximal cliques (complete graphs short-circuit to 1)."""
    if graph.n_nodes == 0:
        return 0.0
    if graph.is_complete():
        return 1.0
    import networkx as nx

    return float(sum(1 for _ in nx.find_cliques(graph.to_networkx())))


def mean_betweenness(graph: Graph, sample_size: int = 64, seed: int = 0) -> float:
    """Mean betweenness centrality, estimated from a node sample for scale."""
    if graph.n_nodes == 0:
        return 0.0
    import networkx as nx

    nx_graph = graph.to_networkx()
    k = min(sample_size, graph.n_nodes)
    centrality = nx.betweenness_centrality(nx_graph, k=k, seed=seed)
    return float(np.mean(list(centrality.values())))


def top_eigenvalue(graph: Graph) -> float:
    """Largest eigenvalue of the adjacency matrix (power iteration)."""
    n = graph.n_nodes
    if n == 0 or graph.n_edges == 0:
        return 0.0
    rng = np.random.default_rng(0)
    vector = rng.random(n)
    vector /= np.linalg.norm(vector)
    adjacency = [np.fromiter(graph.neighbors(u), dtype=np.int64, count=graph.degree(u))
                 for u in range(n)]
    eigenvalue = 0.0
    for _ in range(60):
        next_vector = np.zeros(n)
        for u in range(n):
            if len(adjacency[u]):
                next_vector[u] = vector[adjacency[u]].sum()
        norm = np.linalg.norm(next_vector)
        if norm == 0:
            return 0.0
        next_vector /= norm
        eigenvalue = float(next_vector @ _multiply(adjacency, next_vector))
        vector = next_vector
    return eigenvalue


def _multiply(adjacency: list[np.ndarray], vector: np.ndarray) -> np.ndarray:
    out = np.zeros(len(vector))
    for u, neighbors in enumerate(adjacency):
        if len(neighbors):
            out[u] = vector[neighbors].sum()
    return out


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
MEASURES: dict[str, callable] = {
    "edge_count": edge_count,
    "triangle_count": triangle_count,
    "average_clustering": average_clustering,
    "global_clustering": global_clustering_coefficient,
    "mean_degree": mean_degree,
    "degree_variance": degree_variance,
    "mean_degree_centrality": mean_degree_centrality,
    "mean_average_neighbor_degree": mean_average_neighbor_degree,
    "number_connected_components": number_connected_components,
    "largest_connected_component": largest_connected_component,
    "mean_core_number": mean_core_number,
    "clique_number": clique_number,
    "number_of_cliques": number_of_cliques,
    "diameter": diameter_largest_component,
    "mean_betweenness": mean_betweenness,
    "top_eigenvalue": top_eigenvalue,
}


def available_measures() -> list[str]:
    """Names of all registered graph measures."""
    return sorted(MEASURES)


def compute_measure(graph: Graph, name: str) -> float:
    """Compute the named measure gamma(G)."""
    try:
        func = MEASURES[name]
    except KeyError:
        raise KeyError(f"unknown measure {name!r}; known: {available_measures()}") from None
    return float(func(graph))


def compute_measures(graph: Graph, names=None) -> dict[str, float]:
    """Compute several measures at once (all registered ones by default)."""
    if names is None:
        names = available_measures()
    return {name: compute_measure(graph, name) for name in names}
