"""A small undirected graph container tuned for the library's access patterns.

The dissertation's graph work needs fast neighbour-set access (triangle
counting, clique search, core decomposition), cheap edge iteration, node
sub-sampling and conversion to/from ``networkx`` for the handful of measures
delegated to it.  A dict-of-sets adjacency structure covers all of that
without the overhead of a full graph framework in the inner loops.
"""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx

__all__ = ["Graph"]


class Graph:
    """An undirected, unweighted graph over integer node ids ``0..n-1``.

    Parameters
    ----------
    n_nodes:
        Number of nodes.  All nodes exist even if isolated, matching the
        similarity-graph setting where every record is a vertex.
    edges:
        Optional iterable of ``(u, v)`` pairs to add.
    """

    def __init__(self, n_nodes: int, edges: Iterable[tuple[int, int]] = ()) -> None:
        if n_nodes < 0:
            raise ValueError("n_nodes must be non-negative")
        self.n_nodes = int(n_nodes)
        self._adjacency: list[set[int]] = [set() for _ in range(self.n_nodes)]
        self._n_edges = 0
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------ #
    @property
    def n_edges(self) -> int:
        return self._n_edges

    def add_edge(self, u: int, v: int) -> bool:
        """Add edge (u, v); returns True if the edge was new."""
        u, v = int(u), int(v)
        if u == v:
            return False
        if not (0 <= u < self.n_nodes and 0 <= v < self.n_nodes):
            raise ValueError(f"edge ({u}, {v}) out of range for {self.n_nodes} nodes")
        if v in self._adjacency[u]:
            return False
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._n_edges += 1
        return True

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adjacency[u]

    def neighbors(self, u: int) -> set[int]:
        """The neighbour set of *u* (a live view; do not mutate)."""
        return self._adjacency[u]

    def degree(self, u: int) -> int:
        return len(self._adjacency[u])

    def degrees(self) -> list[int]:
        return [len(adj) for adj in self._adjacency]

    def edges(self) -> Iterable[tuple[int, int]]:
        """Iterate over edges as (u, v) with u < v."""
        for u in range(self.n_nodes):
            for v in self._adjacency[u]:
                if u < v:
                    yield (u, v)

    def density(self) -> float:
        """Edge density: fraction of possible edges present."""
        if self.n_nodes < 2:
            return 0.0
        possible = self.n_nodes * (self.n_nodes - 1) / 2
        return self._n_edges / possible

    def is_complete(self) -> bool:
        possible = self.n_nodes * (self.n_nodes - 1) // 2
        return self._n_edges == possible

    def copy(self) -> "Graph":
        clone = Graph(self.n_nodes)
        clone._adjacency = [set(adj) for adj in self._adjacency]
        clone._n_edges = self._n_edges
        return clone

    def subgraph(self, nodes: Iterable[int]) -> "Graph":
        """Node-induced subgraph, relabelled to ``0..len(nodes)-1``.

        The relabelling preserves the order of *nodes*.
        """
        node_list = [int(n) for n in nodes]
        index = {node: i for i, node in enumerate(node_list)}
        sub = Graph(len(node_list))
        for node in node_list:
            for neighbor in self._adjacency[node]:
                if neighbor in index and node < neighbor:
                    sub.add_edge(index[node], index[neighbor])
        return sub

    def adjacency_dict(self) -> dict[int, list[int]]:
        """Adjacency lists as plain sorted lists (the transactional view)."""
        return {u: sorted(self._adjacency[u]) for u in range(self.n_nodes)}

    def to_networkx(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(range(self.n_nodes))
        graph.add_edges_from(self.edges())
        return graph

    @classmethod
    def from_networkx(cls, graph: nx.Graph) -> "Graph":
        mapping = {node: i for i, node in enumerate(graph.nodes())}
        result = cls(graph.number_of_nodes())
        for u, v in graph.edges():
            result.add_edge(mapping[u], mapping[v])
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n_nodes={self.n_nodes}, n_edges={self._n_edges})"
