"""Graph substrate: structure, measures, generators and similarity graphs."""

from repro.graphs.graph import Graph
from repro.graphs.generators import (
    erdos_renyi_graph,
    preferential_attachment_graph,
    random_geometric_graph,
    generate_with_edge_count,
)
from repro.graphs.measures import (
    MEASURES,
    available_measures,
    compute_measure,
    compute_measures,
)
from repro.graphs.similarity_graph import (
    graph_from_pairs,
    similarity_graph,
    threshold_for_edge_count,
    densifying_series,
)

__all__ = [
    "Graph",
    "erdos_renyi_graph",
    "preferential_attachment_graph",
    "random_geometric_graph",
    "generate_with_edge_count",
    "MEASURES",
    "available_measures",
    "compute_measure",
    "compute_measures",
    "graph_from_pairs",
    "similarity_graph",
    "threshold_for_edge_count",
    "densifying_series",
]
