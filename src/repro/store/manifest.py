"""Versioned manifest: the MVCC layer of the persistent similarity store.

The base :class:`~repro.store.similarity_store.SimilarityStore` is
two-process safe at *entry* granularity — every write is one atomic
replace — but a reader sweeping a fingerprint **lineage** (parent → append →
append …) still races ingest at lineage granularity: between two of its
lookups a writer may land a new generation, lower a floor or delete an
entry.  This module adds the consistent-snapshot discipline on top:

* **Manifests** are immutable JSON files (``manifest/MANIFEST-<v>.json``)
  recording, per manifest *version*, the full fingerprint lineage: one
  :class:`GenerationRecord` per dataset fingerprint with its parent link and
  its per-axis floor entries (an *axis* is everything of a floor key except
  the fingerprint — measure, backend, canonicalised options).
* **CURRENT** (``manifest/CURRENT``) is a one-line pointer file naming the
  live manifest; publishing a new version writes the new manifest file
  first and then atomically replaces ``CURRENT``, so a crash anywhere
  leaves either the old or the new version — never a torn one.
* **Floor entries** referenced by manifests live in their own ``lineage/``
  entry directory and are *immutable*: their keys embed the publishing
  sequence number, so no landing ever rewrites a file an older manifest
  references.  A generation's floor is either ``full`` (a complete pair
  set) or ``delta`` (only the pairs its append introduced); a snapshot
  reconstructs a delta chain's floor by pure pair merging — no kernel work.
* **Pins** are lease files (``manifest/pins/``) held by open snapshots.  A
  pin holds an OS-level ``flock`` for the lifetime of the snapshot, so a
  SIGKILL-ed reader releases its lease automatically and garbage collection
  (:mod:`repro.store.gc`) can tell a live pin from a stale one without
  trusting any process to clean up after itself.

All lineage mutations (publish, pin, compaction, GC) serialise on one
``flock``-based lineage lock, which keeps the pin/GC handshake free of
TOCTOU races; readers of ``CURRENT`` never need the lock because manifest
files are immutable and the pointer is replaced atomically.
"""

from __future__ import annotations

import json
import os
import uuid
from dataclasses import dataclass, field
from pathlib import Path

try:  # POSIX file locks; the pin/GC protocol degrades gracefully without.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "FloorRef",
    "GenerationRecord",
    "Manifest",
    "LineageLog",
    "Pin",
    "floor_axis",
    "lineage_entry_key",
]

#: Bump when the manifest JSON layout changes; older manifests are refused.
MANIFEST_SCHEMA_VERSION = 1

_MANIFEST_NAME = "MANIFEST-{version:08d}.json"
_CURRENT = "CURRENT"
_LOCK = "LOCK"
_PIN_DIR = "pins"


def floor_axis(key: tuple) -> str:
    """The axis of a floor *key*: everything except the leading fingerprint.

    Two floors of one dataset taken with the same measure/backend/options
    share an axis; the manifest tracks one floor entry per (generation,
    axis).  Axes are stored as ``repr`` strings so they can key JSON maps.
    """
    return repr(tuple(key[1:]))


def lineage_entry_key(sequence: int, fingerprint: str, axis: str) -> tuple:
    """The immutable store key of a lineage floor entry.

    Embedding the publishing *sequence* (the manifest version that first
    referenced the entry) makes every landing a fresh file: floors for the
    same (fingerprint, axis) published at different times never collide, so
    a pinned snapshot's files are never rewritten underneath it.  The axis
    travels in its ``repr`` form so the key is reconstructable from the
    manifest alone.
    """
    return ("lineage", int(sequence), str(fingerprint), str(axis))


@dataclass(frozen=True)
class FloorRef:
    """One generation's floor entry for one axis.

    ``kind`` is ``"full"`` (a complete pair set at ``threshold``) or
    ``"delta"`` (only the pairs this generation's append introduced, at
    ``threshold``); ``file`` is the entry path relative to the store root
    and ``sequence`` the manifest version that published it (needed to
    reconstruct the entry's self-validating key).
    """

    file: str
    kind: str
    threshold: float
    sequence: int

    def to_json(self) -> dict:
        """JSON form of this reference."""
        return {"file": self.file, "kind": self.kind,
                "threshold": self.threshold, "sequence": self.sequence}

    @classmethod
    def from_json(cls, data: dict) -> "FloorRef":
        """Rebuild a reference from its JSON form."""
        return cls(file=str(data["file"]), kind=str(data["kind"]),
                   threshold=float(data["threshold"]),
                   sequence=int(data["sequence"]))


@dataclass(frozen=True)
class GenerationRecord:
    """One dataset fingerprint's node in the manifest lineage."""

    fingerprint: str
    parent: str | None
    n_rows: int
    sequence: int
    floors: dict[str, FloorRef] = field(default_factory=dict)

    def to_json(self) -> dict:
        """JSON form of this generation."""
        return {
            "fingerprint": self.fingerprint, "parent": self.parent,
            "n_rows": self.n_rows, "sequence": self.sequence,
            "floors": {axis: ref.to_json()
                       for axis, ref in sorted(self.floors.items())},
        }

    @classmethod
    def from_json(cls, data: dict) -> "GenerationRecord":
        """Rebuild a generation from its JSON form."""
        return cls(
            fingerprint=str(data["fingerprint"]),
            parent=data.get("parent"),
            n_rows=int(data["n_rows"]),
            sequence=int(data["sequence"]),
            floors={axis: FloorRef.from_json(ref)
                    for axis, ref in data.get("floors", {}).items()})


@dataclass(frozen=True)
class Manifest:
    """An immutable, versioned view of the whole fingerprint lineage."""

    version: int
    generations: tuple[GenerationRecord, ...] = ()

    def generation(self, fingerprint: str) -> GenerationRecord | None:
        """The generation for *fingerprint*, or ``None``."""
        for record in self.generations:
            if record.fingerprint == fingerprint:
                return record
        return None

    def files(self) -> set[str]:
        """Every lineage entry file (store-root-relative) this version pins."""
        return {ref.file for record in self.generations
                for ref in record.floors.values()}

    def tips(self) -> list[GenerationRecord]:
        """Generations that are nobody's parent — the heads of each chain."""
        parents = {record.parent for record in self.generations
                   if record.parent is not None}
        return [record for record in self.generations
                if record.fingerprint not in parents]

    def chain(self, fingerprint: str) -> list[GenerationRecord]:
        """The lineage of *fingerprint*, root first, ending at it.

        Stops at the first generation whose parent is absent from this
        manifest (compaction legitimately drops folded ancestors).
        """
        out: list[GenerationRecord] = []
        seen: set[str] = set()
        record = self.generation(fingerprint)
        while record is not None and record.fingerprint not in seen:
            seen.add(record.fingerprint)
            out.append(record)
            record = (self.generation(record.parent)
                      if record.parent is not None else None)
        return list(reversed(out))

    def replace(self, generations) -> "Manifest":
        """A successor manifest (version + 1) with *generations*."""
        return Manifest(version=self.version + 1,
                        generations=tuple(generations))

    def to_json(self) -> dict:
        """JSON form of this manifest."""
        return {"schema": MANIFEST_SCHEMA_VERSION, "version": self.version,
                "generations": [g.to_json() for g in self.generations]}

    @classmethod
    def from_json(cls, data: dict) -> "Manifest":
        """Rebuild a manifest from its JSON form (schema-checked)."""
        if data.get("schema") != MANIFEST_SCHEMA_VERSION:
            raise ValueError(
                f"manifest schema {data.get('schema')!r} != "
                f"{MANIFEST_SCHEMA_VERSION}")
        return cls(version=int(data["version"]),
                   generations=tuple(GenerationRecord.from_json(g)
                                     for g in data.get("generations", ())))


class Pin:
    """A live lease on one manifest version, held by an open snapshot.

    The pin is a small JSON file under ``manifest/pins/`` plus (on POSIX) an
    exclusive ``flock`` on that file held for the pin's lifetime.  Process
    death — including SIGKILL — releases the lock, so
    :meth:`LineageLog.live_pins` can prune stale leases by simply trying the
    lock.  Without ``fcntl`` the protocol falls back to pid liveness.
    """

    def __init__(self, path: Path, version: int, fd: int | None) -> None:
        self.path = path
        self.version = int(version)
        self._fd = fd
        self.released = False

    def release(self) -> None:
        """Drop the lease: unlink the pin file and release its lock."""
        if self.released:
            return
        self.released = True
        try:
            self.path.unlink()
        except OSError:
            pass  # GC pruned a lease it (correctly) saw as stale
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:  # pragma: no cover - double close
                pass
            self._fd = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        self.release()


class LineageLog:
    """The on-disk manifest log of one store directory.

    All mutating operations (:meth:`publish`, :meth:`pin`, and the
    compaction/GC passes in :mod:`repro.store.gc`) run under one exclusive
    ``flock`` (:meth:`lock`); reads of the current manifest are lock-free
    because manifest files are immutable and ``CURRENT`` is replaced
    atomically.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.dir = self.root / "manifest"

    # ------------------------------------------------------------------ #
    # Locking
    # ------------------------------------------------------------------ #
    class _Lock:
        """Context manager holding the exclusive lineage ``flock``."""

        def __init__(self, path: Path) -> None:
            self._path = path
            self._fd: int | None = None

        def __enter__(self) -> "LineageLog._Lock":
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(self._path, os.O_RDWR | os.O_CREAT, 0o644)
            if fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_EX)
            return self

        def __exit__(self, *exc_info) -> None:
            if self._fd is not None:
                if fcntl is not None:
                    fcntl.flock(self._fd, fcntl.LOCK_UN)
                os.close(self._fd)
                self._fd = None

    def lock(self) -> "LineageLog._Lock":
        """The exclusive lineage lock (kernel-released on process death)."""
        return self._Lock(self.dir / _LOCK)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def manifest_path(self, version: int) -> Path:
        """Path of the manifest file for *version*."""
        return self.dir / _MANIFEST_NAME.format(version=int(version))

    def versions(self) -> list[int]:
        """Every manifest version with a file on disk, ascending."""
        out = []
        for path in self.dir.glob("MANIFEST-*.json"):
            try:
                out.append(int(path.stem.split("-", 1)[1]))
            except (IndexError, ValueError):
                continue
        return sorted(out)

    def read(self, version: int) -> Manifest:
        """Load one manifest version (raises ``OSError``/``ValueError``)."""
        data = json.loads(self.manifest_path(version).read_text())
        manifest = Manifest.from_json(data)
        if manifest.version != int(version):
            raise ValueError(
                f"manifest file for version {version} records version "
                f"{manifest.version}")
        return manifest

    def current_version(self) -> int:
        """The version ``CURRENT`` points at (0 when no lineage exists)."""
        try:
            name = (self.dir / _CURRENT).read_text().strip()
        except OSError:
            return 0
        try:
            return int(Path(name).stem.split("-", 1)[1])
        except (IndexError, ValueError):
            return 0

    def current(self) -> Manifest:
        """The live manifest (an empty version-0 one for a fresh store).

        Lock-free: retries the ``CURRENT`` → manifest-file hop a few times
        in case GC condemns the version between the two reads.
        """
        for _ in range(5):
            version = self.current_version()
            if version == 0:
                return Manifest(version=0)
            try:
                return self.read(version)
            except OSError:
                continue  # CURRENT advanced and GC removed this file: retry
        raise OSError(f"cannot resolve current manifest under {self.dir}")

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #
    def publish(self, mutate, *, prepare=None) -> Manifest:
        """Atomically publish the successor of the current manifest.

        Under the lineage lock: read the current manifest, apply *mutate*
        (``Manifest -> iterable[GenerationRecord] | None``; ``None`` means
        "no change"), write the new manifest file, then atomically replace
        ``CURRENT``.  *prepare*, when given, runs under the lock *before*
        the manifest file is written — it receives the successor version and
        is where entry files are landed, so a crash between entry write and
        pointer flip leaves only unreferenced (collectable) files behind.
        """
        with self.lock():
            current = self.current()
            generations = mutate(current)
            if generations is None:
                return current
            successor = current.replace(generations)
            if prepare is not None:
                prepare(successor.version)
            self._write_manifest(successor)
            self._point_current(successor.version)
            return successor

    def _write_manifest(self, manifest: Manifest) -> None:
        path = self.manifest_path(manifest.version)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
        tmp.write_text(json.dumps(manifest.to_json(), indent=1))
        os.replace(tmp, path)

    def _point_current(self, version: int) -> None:
        pointer = self.dir / _CURRENT
        tmp = pointer.with_name(_CURRENT + f".tmp-{os.getpid()}")
        tmp.write_text(self.manifest_path(version).name + "\n")
        os.replace(tmp, pointer)

    # ------------------------------------------------------------------ #
    # Pins (snapshot leases)
    # ------------------------------------------------------------------ #
    def pin(self) -> tuple[Pin, Manifest]:
        """Pin the current version and return ``(pin, manifest)``.

        Runs under the lineage lock so GC (which scans pins under the same
        lock) can never condemn the version between our ``CURRENT`` read and
        the pin file landing.
        """
        with self.lock():
            manifest = self.current()
            pin_dir = self.dir / _PIN_DIR
            pin_dir.mkdir(parents=True, exist_ok=True)
            path = pin_dir / (f"v{manifest.version:08d}-{os.getpid()}-"
                              f"{uuid.uuid4().hex[:8]}.pin")
            fd = os.open(path, os.O_RDWR | os.O_CREAT | os.O_EXCL, 0o644)
            os.write(fd, json.dumps({"version": manifest.version,
                                     "pid": os.getpid()}).encode())
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            return Pin(path, manifest.version, fd), manifest

    def live_pins(self, *, prune_stale: bool = True) -> set[int]:
        """Versions pinned by a *live* holder (stale leases pruned).

        Must be called under :meth:`lock` by mutators; a pin whose ``flock``
        can be taken (or, without ``fcntl``, whose pid is dead) belongs to a
        killed process and is removed.
        """
        pinned: set[int] = set()
        pin_dir = self.dir / _PIN_DIR
        if not pin_dir.is_dir():
            return pinned
        for path in sorted(pin_dir.glob("*.pin")):
            try:
                info = json.loads(path.read_text() or "{}")
                version = int(info["version"])
                pid = int(info.get("pid", 0))
            except (OSError, ValueError, KeyError):
                continue  # mid-write or concurrently released
            if self._pin_is_live(path, pid):
                pinned.add(version)
            elif prune_stale:
                try:
                    path.unlink()
                except OSError:
                    pass
        return pinned

    @staticmethod
    def _pin_is_live(path: Path, pid: int) -> bool:
        if fcntl is not None:
            try:
                fd = os.open(path, os.O_RDWR)
            except OSError:
                return False  # released while we looked
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                return True  # somebody holds the lease
            else:
                return False  # lock was free: the holder died
            finally:
                os.close(fd)
        if pid <= 0:  # pragma: no cover - non-POSIX fallback
            return False
        try:  # pragma: no cover - non-POSIX fallback
            os.kill(pid, 0)
        except OSError:  # pragma: no cover
            return False
        return True  # pragma: no cover
