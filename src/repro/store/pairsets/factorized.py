"""Factorised pair-set representation: clique + bipartite-block compression.

A stored similarity floor is a set of above-threshold pairs ``(first,
second, value)`` — O(n²) raw bytes at scale (24 bytes per pair: two int64
row ids plus a float64 value).  In clustered data that set is highly
redundant: rows inside a similarity cluster are pairwise similar, so the
floor is mostly a union of *near-cliques* plus a thin residual.  This is
the stable two-level structure the set-similarity-join literature exploits
(cluster-level signatures above row-level ones) and the FDB insight that a
factorised representation can be asymptotically smaller than the flat
relation while still answering queries directly on the compressed form.

:class:`FactorizedPairSet` stores a floor as three part families:

* **clique summaries** — for each discovered similarity cluster, the
  sorted member rows plus the triangular array of intra-cluster values in
  canonical pair order: ``k`` members and ``k·(k−1)/2`` float64 values
  replace ``k·(k−1)/2`` raw 24-byte pairs (→ ~1/3 of raw, asymptotically);
* **cross-cluster block summaries** — a complete-bipartite block between
  two cliques (every left×right pair above threshold) stores the two
  member lists plus a value matrix in canonical pair order;
* **a residual exact pair list** — every pair in neither of the above,
  kept verbatim in canonical order.

Decompression is *lazy* and *zero-kernel*: :meth:`FactorizedPairSet.
iter_pairs` streams pairs in canonical ``(first, second)`` order by
k-way-merging per-part generators (O(#parts) heap memory, one part's
arrays materialised at a time), and is bit-identical — same pairs, same
float64 bits, same ordering — to filtering the raw floor.  Parts carry
their value min/max so a threshold query skips parts entirely below it.

:func:`maybe_factorize` is the store's size heuristic: floors smaller than
:data:`MIN_FACTORIZE_PAIRS` or compressing worse than
:data:`MAX_FACTORIZE_RATIO` of raw stay raw (clusterless data falls back
naturally — its factorisation is all residual, which never pays).
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.similarity.types import SimilarPair

__all__ = [
    "MIN_FACTORIZE_PAIRS",
    "MAX_FACTORIZE_RATIO",
    "RAW_PAIR_BYTES",
    "FactorizedPairSet",
    "StoredPairSet",
    "maybe_factorize",
    "factorize_result",
]

#: Floors with fewer pairs than this are never factorised: the per-part
#: overhead dominates and a raw entry is both smaller and simpler.
MIN_FACTORIZE_PAIRS = 512

#: A factorisation must shrink the pair payload to at most this fraction
#: of the raw 24-bytes-per-pair encoding to be kept; otherwise the store
#: falls back to the raw representation (clusterless/adversarial corpora
#: land here: their factorisation degenerates to the residual list).
MAX_FACTORIZE_RATIO = 0.75

#: Raw bytes per stored pair: int64 ``first`` + int64 ``second`` +
#: float64 ``value``.
RAW_PAIR_BYTES = 24

#: Smallest clique worth summarising: at 3 members the summary
#: (3 ids + 3 values) is already smaller than 3 raw pairs.
_MIN_CLIQUE = 3

#: Serialised array names (the npz payload of a ``pairs-factorized``
#: store entry); :meth:`FactorizedPairSet.from_arrays` requires exactly
#: these.
ARRAY_NAMES = (
    "shape", "members", "member_offsets", "clique_values",
    "block_left", "block_left_offsets", "block_right",
    "block_right_offsets", "block_values",
    "residual_first", "residual_second", "residual_value",
)


def _tri(k: np.ndarray | int):
    """Number of unordered pairs among *k* items (vectorised)."""
    return k * (k - 1) // 2


def _as_int64(values, name: str) -> np.ndarray:
    array = np.asarray(values)
    if array.dtype != np.int64:
        if not np.issubdtype(array.dtype, np.integer):
            raise ValueError(f"{name} must be an integer array, "
                             f"got {array.dtype}")
        array = array.astype(np.int64)
    return array.ravel()


def _as_float64(values, name: str) -> np.ndarray:
    array = np.asarray(values)
    if array.dtype != np.float64:
        if not np.issubdtype(array.dtype, np.floating):
            raise ValueError(f"{name} must be a float array, "
                             f"got {array.dtype}")
        array = array.astype(np.float64)
    return array.ravel()


def _segment_minmax(values: np.ndarray,
                    offsets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment (min, max) of *values* split at *offsets* boundaries."""
    n_segments = len(offsets) - 1
    mins = np.empty(n_segments)
    maxs = np.empty(n_segments)
    if n_segments:
        starts = offsets[:-1]
        mins[:] = np.minimum.reduceat(values, starts)
        maxs[:] = np.maximum.reduceat(values, starts)
        empty = offsets[1:] == starts
        mins[empty] = np.inf
        maxs[empty] = -np.inf
    return mins, maxs


class FactorizedPairSet:
    """A similarity floor factorised into cliques, blocks and a residual.

    Construct with :meth:`from_pairs` (factorise a raw floor),
    :meth:`from_raw_arrays` (wrap a raw floor residual-only, so raw and
    factorised entries share one decompression path) or
    :meth:`from_arrays` (deserialise a store entry, fully validated).
    Instances are immutable value objects; every accessor is read-only.

    The decompression contract: for any ``t >= self.threshold``,
    :meth:`iter_pairs(t) <iter_pairs>` yields exactly the raw floor's
    pairs with ``value >= t``, in canonical ``(first, second)`` order,
    with bit-identical float64 values.
    """

    def __init__(self, *, n_rows: int, threshold: float,
                 members: np.ndarray, member_offsets: np.ndarray,
                 clique_values: np.ndarray,
                 block_left: np.ndarray, block_left_offsets: np.ndarray,
                 block_right: np.ndarray, block_right_offsets: np.ndarray,
                 block_values: np.ndarray,
                 residual_first: np.ndarray, residual_second: np.ndarray,
                 residual_value: np.ndarray) -> None:
        self.n_rows = int(n_rows)
        self.threshold = float(threshold)
        self._members = members
        self._member_offsets = member_offsets
        self._clique_values = clique_values
        self._block_left = block_left
        self._block_left_offsets = block_left_offsets
        self._block_right = block_right
        self._block_right_offsets = block_right_offsets
        self._block_values = block_values
        self._residual_first = residual_first
        self._residual_second = residual_second
        self._residual_value = residual_value
        # Derived (never serialised): per-part value offsets and min/max
        # for threshold pruning.
        sizes = np.diff(member_offsets)
        self._clique_value_offsets = np.concatenate(
            [[0], np.cumsum(_tri(sizes))]).astype(np.int64)
        left = np.diff(block_left_offsets)
        right = np.diff(block_right_offsets)
        self._block_value_offsets = np.concatenate(
            [[0], np.cumsum(left * right)]).astype(np.int64)
        self._clique_min, self._clique_max = _segment_minmax(
            clique_values, self._clique_value_offsets)
        self._block_min, self._block_max = _segment_minmax(
            block_values, self._block_value_offsets)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_pairs(cls, first, second, value, *, n_rows: int,
                   threshold: float) -> "FactorizedPairSet":
        """Factorise a raw floor given as parallel pair arrays.

        *first*/*second* are upper-triangle row ids (``first < second``,
        every pair unique), *value* the float64 similarities; duplicates
        or out-of-range ids raise ``ValueError``.  Clustering is greedy
        and deterministic: seeds in descending-degree order, candidates in
        ascending row order, a candidate joins a clique only when adjacent
        to every current member.  Complete-bipartite cross blocks are then
        lifted between clique pairs whose cross edges are all present;
        everything else is residual.
        """
        first = _as_int64(first, "first")
        second = _as_int64(second, "second")
        value = _as_float64(value, "value")
        if not (len(first) == len(second) == len(value)):
            raise ValueError("pair arrays must have equal length")
        n_rows = int(n_rows)
        if len(first):
            if first.min() < 0 or second.max() >= n_rows:
                raise ValueError("pair row ids out of range")
            if np.any(first >= second):
                raise ValueError("pairs must be upper-triangle "
                                 "(first < second)")
        # Canonical order once; every part below indexes into these.
        order = np.lexsort((second, first))
        first, second, value = first[order], second[order], value[order]
        keys = first * n_rows + second
        if len(keys) > 1 and np.any(np.diff(keys) <= 0):
            raise ValueError("duplicate pairs in floor")

        empty = lambda dt: np.empty(0, dtype=dt)  # noqa: E731
        if not len(first):
            return cls(
                n_rows=n_rows, threshold=threshold,
                members=empty(np.int64), member_offsets=np.zeros(1, np.int64),
                clique_values=empty(float),
                block_left=empty(np.int64),
                block_left_offsets=np.zeros(1, np.int64),
                block_right=empty(np.int64),
                block_right_offsets=np.zeros(1, np.int64),
                block_values=empty(float),
                residual_first=first, residual_second=second,
                residual_value=value)

        cliques = _greedy_cliques(first, second, keys, n_rows)
        covered = np.zeros(len(keys), dtype=bool)
        clique_value_parts: list[np.ndarray] = []
        for m in cliques:
            ii, jj = np.triu_indices(len(m), 1)
            pos = np.searchsorted(keys, m[ii] * n_rows + m[jj])
            clique_value_parts.append(value[pos])
            covered[pos] = True

        blocks = _lift_cross_blocks(cliques, first, second, covered, n_rows)
        block_left_parts: list[np.ndarray] = []
        block_right_parts: list[np.ndarray] = []
        block_value_parts: list[np.ndarray] = []
        for left_m, right_m in blocks:
            pf, ps = _bipartite_pairs(left_m, right_m)
            pos = np.searchsorted(keys, pf * n_rows + ps)
            block_left_parts.append(left_m)
            block_right_parts.append(right_m)
            block_value_parts.append(value[pos])
            covered[pos] = True

        residual = ~covered

        def concat(parts, dtype):
            return (np.concatenate(parts) if parts
                    else np.empty(0, dtype=dtype))

        def offsets(parts):
            return np.concatenate(
                [[0], np.cumsum([len(p) for p in parts])]).astype(np.int64)

        return cls(
            n_rows=n_rows, threshold=threshold,
            members=concat(cliques, np.int64),
            member_offsets=offsets(cliques),
            clique_values=concat(clique_value_parts, float),
            block_left=concat(block_left_parts, np.int64),
            block_left_offsets=offsets(block_left_parts),
            block_right=concat(block_right_parts, np.int64),
            block_right_offsets=offsets(block_right_parts),
            block_values=concat(block_value_parts, float),
            residual_first=first[residual],
            residual_second=second[residual],
            residual_value=value[residual])

    @classmethod
    def from_raw_arrays(cls, first, second, value, *, n_rows: int,
                        threshold: float) -> "FactorizedPairSet":
        """Wrap a raw floor residual-only (no cliques, no blocks).

        The degenerate factorisation: every pair lands in the residual
        list, canonically ordered.  Lets raw and factorised store entries
        share one streaming/decompression code path
        (:meth:`iter_pairs` / :meth:`iter_chunks`).
        """
        first = _as_int64(first, "first")
        second = _as_int64(second, "second")
        value = _as_float64(value, "value")
        order = np.lexsort((second, first))
        return cls(
            n_rows=int(n_rows), threshold=threshold,
            members=np.empty(0, np.int64),
            member_offsets=np.zeros(1, np.int64),
            clique_values=np.empty(0, float),
            block_left=np.empty(0, np.int64),
            block_left_offsets=np.zeros(1, np.int64),
            block_right=np.empty(0, np.int64),
            block_right_offsets=np.zeros(1, np.int64),
            block_values=np.empty(0, float),
            residual_first=first[order], residual_second=second[order],
            residual_value=value[order])

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_arrays(self) -> dict:
        """The npz payload of a ``pairs-factorized`` store entry."""
        return {
            "shape": np.array([self.n_rows], dtype=np.int64),
            "members": self._members,
            "member_offsets": self._member_offsets,
            "clique_values": self._clique_values,
            "block_left": self._block_left,
            "block_left_offsets": self._block_left_offsets,
            "block_right": self._block_right,
            "block_right_offsets": self._block_right_offsets,
            "block_values": self._block_values,
            "residual_first": self._residual_first,
            "residual_second": self._residual_second,
            "residual_value": self._residual_value,
        }

    @classmethod
    def from_arrays(cls, arrays: dict, *,
                    threshold: float) -> "FactorizedPairSet":
        """Deserialise and structurally validate a store-entry payload.

        Every inconsistency — missing arrays, non-monotone offsets,
        unsorted or out-of-range members, overlapping block sides,
        mismatched value lengths, non-canonical residual — raises
        ``ValueError``, which the store's read path translates into
        evict-and-miss: a damaged factorised entry is recomputed, never
        served wrong.
        """
        missing = [name for name in ARRAY_NAMES if name not in arrays]
        if missing:
            raise ValueError(f"factorized payload missing arrays {missing}")
        shape = _as_int64(arrays["shape"], "shape")
        if len(shape) != 1 or shape[0] < 0:
            raise ValueError("factorized shape must be one non-negative "
                             "row count")
        n_rows = int(shape[0])
        members = _as_int64(arrays["members"], "members")
        member_offsets = _as_int64(arrays["member_offsets"],
                                   "member_offsets")
        clique_values = _as_float64(arrays["clique_values"], "clique_values")
        block_left = _as_int64(arrays["block_left"], "block_left")
        block_left_offsets = _as_int64(arrays["block_left_offsets"],
                                       "block_left_offsets")
        block_right = _as_int64(arrays["block_right"], "block_right")
        block_right_offsets = _as_int64(arrays["block_right_offsets"],
                                        "block_right_offsets")
        block_values = _as_float64(arrays["block_values"], "block_values")
        residual_first = _as_int64(arrays["residual_first"],
                                   "residual_first")
        residual_second = _as_int64(arrays["residual_second"],
                                    "residual_second")
        residual_value = _as_float64(arrays["residual_value"],
                                     "residual_value")

        def check_offsets(offsets, total, name, min_segment=0):
            if (len(offsets) < 1 or offsets[0] != 0
                    or offsets[-1] != total):
                raise ValueError(f"{name} do not tile the member array")
            sizes = np.diff(offsets)
            if np.any(sizes < min_segment):
                raise ValueError(f"{name} contain an undersized segment")
            return sizes

        def check_sorted_members(values, offsets, name):
            if len(values) and (values.min() < 0 or values.max() >= n_rows):
                raise ValueError(f"{name} row ids out of range")
            if len(values) > 1:
                steps = np.diff(values)
                interior = np.ones(len(steps), dtype=bool)
                interior[offsets[1:-1] - 1] = False
                if np.any(steps[interior] <= 0):
                    raise ValueError(f"{name} segments are not strictly "
                                     f"sorted")

        clique_sizes = check_offsets(member_offsets, len(members),
                                     "member_offsets", min_segment=2)
        check_sorted_members(members, member_offsets, "clique member")
        if int(_tri(clique_sizes).sum()) != len(clique_values):
            raise ValueError("clique_values length does not match member "
                             "segment sizes")
        left_sizes = check_offsets(block_left_offsets, len(block_left),
                                   "block_left_offsets", min_segment=1)
        right_sizes = check_offsets(block_right_offsets, len(block_right),
                                    "block_right_offsets", min_segment=1)
        if len(left_sizes) != len(right_sizes):
            raise ValueError("block side counts disagree")
        check_sorted_members(block_left, block_left_offsets, "block left")
        check_sorted_members(block_right, block_right_offsets,
                             "block right")
        if int((left_sizes * right_sizes).sum()) != len(block_values):
            raise ValueError("block_values length does not match block "
                             "shapes")
        for index in range(len(left_sizes)):
            left_m = block_left[block_left_offsets[index]:
                                block_left_offsets[index + 1]]
            right_m = block_right[block_right_offsets[index]:
                                  block_right_offsets[index + 1]]
            if np.intersect1d(left_m, right_m).size:
                raise ValueError("block sides overlap")
        if not (len(residual_first) == len(residual_second)
                == len(residual_value)):
            raise ValueError("residual arrays must have equal length")
        if len(residual_first):
            if (residual_first.min() < 0
                    or residual_second.max() >= n_rows):
                raise ValueError("residual row ids out of range")
            if np.any(residual_first >= residual_second):
                raise ValueError("residual pairs must be upper-triangle")
            keys = residual_first * n_rows + residual_second
            if len(keys) > 1 and np.any(np.diff(keys) <= 0):
                raise ValueError("residual pairs are not in strict "
                                 "canonical order")
        return cls(
            n_rows=n_rows, threshold=threshold,
            members=members, member_offsets=member_offsets,
            clique_values=clique_values,
            block_left=block_left, block_left_offsets=block_left_offsets,
            block_right=block_right,
            block_right_offsets=block_right_offsets,
            block_values=block_values,
            residual_first=residual_first,
            residual_second=residual_second,
            residual_value=residual_value)

    # ------------------------------------------------------------------ #
    # Shape / size accessors
    # ------------------------------------------------------------------ #
    @property
    def n_cliques(self) -> int:
        """Number of clique summaries."""
        return len(self._member_offsets) - 1

    @property
    def n_blocks(self) -> int:
        """Number of complete-bipartite cross-cluster blocks."""
        return len(self._block_left_offsets) - 1

    @property
    def n_residual(self) -> int:
        """Number of pairs kept verbatim in the residual list."""
        return len(self._residual_first)

    @property
    def n_pairs(self) -> int:
        """Total pairs represented (cliques + blocks + residual)."""
        return (len(self._clique_values) + len(self._block_values)
                + self.n_residual)

    def nbytes(self) -> int:
        """Serialised payload bytes (sum of every stored array)."""
        return sum(int(np.asarray(a).nbytes)
                   for a in self.to_arrays().values())

    def raw_nbytes(self) -> int:
        """Bytes the same floor costs raw (24 per pair)."""
        return RAW_PAIR_BYTES * self.n_pairs

    def compression_ratio(self) -> float:
        """``nbytes / raw_nbytes`` (1.0 for an empty floor)."""
        raw = self.raw_nbytes()
        return self.nbytes() / raw if raw else 1.0

    def stats(self) -> dict:
        """Structural summary: part counts, pair counts, byte counts."""
        return {
            "n_rows": self.n_rows,
            "threshold": self.threshold,
            "n_pairs": self.n_pairs,
            "n_cliques": self.n_cliques,
            "n_blocks": self.n_blocks,
            "clique_pairs": len(self._clique_values),
            "block_pairs": len(self._block_values),
            "residual_pairs": self.n_residual,
            "nbytes": self.nbytes(),
            "raw_nbytes": self.raw_nbytes(),
            "compression_ratio": self.compression_ratio(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FactorizedPairSet(n_rows={self.n_rows}, "
                f"pairs={self.n_pairs}, cliques={self.n_cliques}, "
                f"blocks={self.n_blocks}, residual={self.n_residual}, "
                f"ratio={self.compression_ratio():.2f})")

    # ------------------------------------------------------------------ #
    # Decompression
    # ------------------------------------------------------------------ #
    def _clique_chunk(self, index: int):
        m = self._members[self._member_offsets[index]:
                          self._member_offsets[index + 1]]
        values = self._clique_values[self._clique_value_offsets[index]:
                                     self._clique_value_offsets[index + 1]]
        ii, jj = np.triu_indices(len(m), 1)
        # Row-major triangular order over sorted members *is* canonical
        # (first, second) order within the clique.
        return m[ii], m[jj], values

    def _block_chunk(self, index: int):
        left_m = self._block_left[self._block_left_offsets[index]:
                                  self._block_left_offsets[index + 1]]
        right_m = self._block_right[self._block_right_offsets[index]:
                                    self._block_right_offsets[index + 1]]
        values = self._block_values[self._block_value_offsets[index]:
                                    self._block_value_offsets[index + 1]]
        pf, ps = _bipartite_pairs(left_m, right_m)
        return pf, ps, values

    def iter_chunks(self, threshold: float | None = None
                    ) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Stream ``(first, second, value)`` array chunks above *threshold*.

        One chunk per part (clique, block, residual), each canonically
        ordered *within itself* but unordered across chunks — the shape
        order-insensitive consumers want (e.g.
        :meth:`~repro.similarity.streaming.TopKReducer.update`), with only
        one part's arrays live at a time.  Parts entirely below
        *threshold* are skipped without touching their values.
        """
        thr = self.threshold if threshold is None else float(threshold)
        for index in range(self.n_cliques):
            if self._clique_max[index] < thr:
                continue
            first, second, values = self._clique_chunk(index)
            if self._clique_min[index] < thr:
                keep = values >= thr
                first, second, values = first[keep], second[keep], values[keep]
            if len(values):
                yield first, second, values
        for index in range(self.n_blocks):
            if self._block_max[index] < thr:
                continue
            first, second, values = self._block_chunk(index)
            if self._block_min[index] < thr:
                keep = values >= thr
                first, second, values = first[keep], second[keep], values[keep]
            if len(values):
                yield first, second, values
        if len(self._residual_value):
            keep = self._residual_value >= thr
            if keep.any():
                yield (self._residual_first[keep],
                       self._residual_second[keep],
                       self._residual_value[keep])

    def iter_pairs(self, threshold: float | None = None
                   ) -> Iterator[SimilarPair]:
        """Lazily stream the floor at *threshold* in canonical order.

        A k-way merge (by ``(first, second)``) over per-part generators:
        memory is O(#parts) heap entries plus one materialised part per
        stream, never the full pair list.  Bit-identical to iterating the
        raw floor filtered to *threshold*: same pairs, same order, same
        float64 values.
        """
        streams = [
            _pair_stream(first, second, values)
            for first, second, values in self.iter_chunks(threshold)
        ]
        if not streams:
            return
        if len(streams) == 1:
            yield from streams[0]
            return
        yield from heapq.merge(
            *streams, key=lambda pair: (pair.first, pair.second))

    def pairs(self, threshold: float | None = None) -> list[SimilarPair]:
        """The floor at *threshold* as a canonical-order list.

        Equivalent to ``list(self.iter_pairs(threshold))`` but built by
        one vectorised lexsort over the concatenated chunks — the fast
        path for store loads that need the whole floor anyway.
        """
        chunks = list(self.iter_chunks(threshold))
        if not chunks:
            return []
        first = np.concatenate([c[0] for c in chunks])
        second = np.concatenate([c[1] for c in chunks])
        values = np.concatenate([c[2] for c in chunks])
        order = np.lexsort((second, first))
        return [SimilarPair(int(a), int(b), float(v))
                for a, b, v in zip(first[order].tolist(),
                                   second[order].tolist(),
                                   values[order].tolist())]


def _pair_stream(first: np.ndarray, second: np.ndarray,
                 values: np.ndarray) -> Iterator[SimilarPair]:
    """One part's pairs as a generator of :class:`SimilarPair`."""
    return (SimilarPair(a, b, v)
            for a, b, v in zip(first.tolist(), second.tolist(),
                               values.tolist()))


def _bipartite_pairs(left_m: np.ndarray, right_m: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Every left×right pair, upper-triangle oriented, canonically sorted.

    The left-major product order is *not* canonical in general (left and
    right row ids interleave), so the cross product is normalised to
    ``(min, max)`` and lexsorted — deterministically, since the pairs are
    unique.  Encoder and decoder both call this, which is what makes the
    stored value order self-describing.
    """
    a = np.repeat(left_m, len(right_m))
    b = np.tile(right_m, len(left_m))
    pf = np.minimum(a, b)
    ps = np.maximum(a, b)
    order = np.lexsort((ps, pf))
    return pf[order], ps[order]


def _greedy_cliques(first: np.ndarray, second: np.ndarray,
                    keys: np.ndarray, n_rows: int) -> list[np.ndarray]:
    """Deterministic greedy clique cover of the floor's similarity graph.

    Seeds are visited in descending degree (ties by ascending row id);
    each seed's unassigned neighbours are offered in ascending row order
    and join only when adjacent to every member so far (checked against
    the sorted pair-key array — no adjacency matrix is ever built).
    Cliques below :data:`_MIN_CLIQUE` members are discarded, leaving
    their rows available to other seeds.
    """
    src = np.concatenate([first, second])
    dst = np.concatenate([second, first])
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    counts = np.bincount(src, minlength=n_rows)
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)

    def all_adjacent(candidate: int, members: np.ndarray) -> bool:
        lo = np.minimum(candidate, members)
        hi = np.maximum(candidate, members)
        wanted = lo * n_rows + hi
        pos = np.searchsorted(keys, wanted)
        inside = pos < len(keys)
        if not inside.all():
            return False
        return bool(np.all(keys[pos] == wanted))

    assigned = np.zeros(n_rows, dtype=bool)
    seed_order = np.argsort(-counts, kind="stable")
    cliques: list[np.ndarray] = []
    for seed in seed_order.tolist():
        if assigned[seed] or counts[seed] < _MIN_CLIQUE - 1:
            continue
        neighbours = dst[indptr[seed]:indptr[seed + 1]]
        candidates = neighbours[~assigned[neighbours]]
        if len(candidates) < _MIN_CLIQUE - 1:
            continue
        members = np.array([seed], dtype=np.int64)
        for candidate in candidates.tolist():
            if len(members) == 1 or all_adjacent(candidate, members):
                members = np.append(members, candidate)
        if len(members) >= _MIN_CLIQUE:
            members.sort()
            assigned[members] = True
            cliques.append(members)
    return cliques


#: Smallest complete bipartite sub-block worth lifting out of the residual.
_MIN_BLOCK_PAIRS = 4

#: Largest presence matrix the block peeler will materialise per clique
#: pair; denser cross structure than this stays residual (correct, just
#: uncompressed).
_MAX_BLOCK_CELLS = 1 << 22


def _peel_complete_block(rows_left: np.ndarray, rows_right: np.ndarray
                         ) -> tuple[np.ndarray, np.ndarray] | None:
    """The largest-ish complete bipartite sub-block of the given cross pairs.

    *rows_left*/*rows_right* are the two endpoints of every present cross
    pair between one clique pair.  Greedy peeling: while any hole remains,
    drop the row or column with the lowest fill fraction.  Returns the
    surviving ``(left_members, right_members)`` (sorted, every cross pair
    between them present) or ``None`` when nothing above
    :data:`_MIN_BLOCK_PAIRS` survives.
    """
    unique_left, left_index = np.unique(rows_left, return_inverse=True)
    unique_right, right_index = np.unique(rows_right, return_inverse=True)
    n_left, n_right = len(unique_left), len(unique_right)
    if n_left * n_right > _MAX_BLOCK_CELLS:
        return None
    present = np.zeros((n_left, n_right), dtype=bool)
    present[left_index, right_index] = True
    alive_row = np.ones(n_left, dtype=bool)
    alive_col = np.ones(n_right, dtype=bool)
    row_fill = present.sum(axis=1).astype(np.int64)
    col_fill = present.sum(axis=0).astype(np.int64)
    filled = int(row_fill.sum())
    sentinel = np.iinfo(np.int64).max
    while n_left and n_right and filled < n_left * n_right:
        masked_rows = np.where(alive_row, row_fill, sentinel)
        masked_cols = np.where(alive_col, col_fill, sentinel)
        row = int(np.argmin(masked_rows))
        col = int(np.argmin(masked_cols))
        # Compare fill fractions row_fill/n_right vs col_fill/n_left
        # without division; drop the sparser of the two.
        if masked_rows[row] * n_left <= masked_cols[col] * n_right:
            alive_row[row] = False
            n_left -= 1
            filled -= int(row_fill[row])
            touched = present[row] & alive_col
            col_fill[touched] -= 1
            row_fill[row] = 0
        else:
            alive_col[col] = False
            n_right -= 1
            filled -= int(col_fill[col])
            touched = present[:, col] & alive_row
            row_fill[touched] -= 1
            col_fill[col] = 0
    if n_left < 1 or n_right < 1 or n_left * n_right < _MIN_BLOCK_PAIRS:
        return None
    return unique_left[alive_row], unique_right[alive_col]


def _lift_cross_blocks(cliques: list[np.ndarray], first: np.ndarray,
                       second: np.ndarray, covered: np.ndarray,
                       n_rows: int) -> list[tuple[np.ndarray, np.ndarray]]:
    """Complete bipartite sub-blocks between clique pairs.

    Groups the uncovered cross-clique pairs by unordered clique pair and
    peels each group down to a hole-free bipartite core
    (:func:`_peel_complete_block`); pairs outside a lifted core stay in
    the residual, so decompression never has to represent holes.
    """
    if not cliques:
        return []
    cluster_id = np.full(n_rows, -1, dtype=np.int64)
    for index, members in enumerate(cliques):
        cluster_id[members] = index
    ca = cluster_id[first]
    cb = cluster_id[second]
    cross = (~covered) & (ca >= 0) & (cb >= 0) & (ca != cb)
    if not cross.any():
        return []
    idx = np.nonzero(cross)[0]
    pair_first, pair_second = first[idx], second[idx]
    cl_a, cl_b = ca[idx], cb[idx]
    swap = cl_a > cl_b
    left_row = np.where(swap, pair_second, pair_first)
    right_row = np.where(swap, pair_first, pair_second)
    group = np.minimum(cl_a, cl_b) * len(cliques) + np.maximum(cl_a, cl_b)
    order = np.argsort(group, kind="stable")
    group = group[order]
    left_row, right_row = left_row[order], right_row[order]
    boundaries = np.concatenate(
        [[0], np.nonzero(np.diff(group))[0] + 1, [len(group)]])
    blocks: list[tuple[np.ndarray, np.ndarray]] = []
    for start, stop in zip(boundaries[:-1], boundaries[1:]):
        if stop - start < _MIN_BLOCK_PAIRS:
            continue
        core = _peel_complete_block(left_row[start:stop],
                                    right_row[start:stop])
        if core is not None:
            blocks.append(core)
    return blocks


@dataclass(frozen=True)
class StoredPairSet:
    """A floor loaded from the store in (possibly) factorised form.

    What :meth:`SimilarityStore.load_pairset` returns: the
    :class:`FactorizedPairSet` plus the entry's floor metadata, so callers
    can check coverage (``threshold``/``exact``) before streaming —
    without ever materialising the pair list.
    """

    pairset: FactorizedPairSet
    threshold: float
    n_rows: int
    exact: bool
    backend: str
    measure: str
    encoding: str  # "factorized" or "raw"

    def covers(self, threshold: float, *,
               require_exact: bool = True) -> bool:
        """Whether this floor can serve a query at *threshold*."""
        if require_exact and not self.exact:
            return False
        return self.threshold <= float(threshold)


def maybe_factorize(first, second, value, *, n_rows: int,
                    threshold: float) -> FactorizedPairSet | None:
    """Factorise a floor when the size heuristic says it pays, else ``None``.

    The store's fallback rule, in one place: floors under
    :data:`MIN_FACTORIZE_PAIRS` pairs stay raw (entry overhead dominates),
    and a factorisation whose payload exceeds
    :data:`MAX_FACTORIZE_RATIO` × raw bytes is discarded — clusterless
    floors degenerate to an all-residual encoding that is strictly larger
    than raw, and must never be kept.
    """
    if len(np.asarray(first)) < MIN_FACTORIZE_PAIRS:
        return None
    pairset = FactorizedPairSet.from_pairs(
        first, second, value, n_rows=n_rows, threshold=threshold)
    if pairset.compression_ratio() > MAX_FACTORIZE_RATIO:
        return None
    return pairset


def factorize_result(result) -> FactorizedPairSet:
    """A pair set for an :class:`~repro.similarity.engine.EngineResult`.

    Factorises when the heuristic pays, otherwise wraps the raw pairs
    residual-only — either way the caller gets one streaming interface
    (used by the service's top-k join on storeless runs).
    """
    first = np.array([p.first for p in result.pairs], dtype=np.int64)
    second = np.array([p.second for p in result.pairs], dtype=np.int64)
    value = np.array([p.similarity for p in result.pairs], dtype=np.float64)
    pairset = maybe_factorize(first, second, value, n_rows=result.n_rows,
                              threshold=result.threshold)
    if pairset is None:
        pairset = FactorizedPairSet.from_raw_arrays(
            first, second, value, n_rows=result.n_rows,
            threshold=result.threshold)
    return pairset
