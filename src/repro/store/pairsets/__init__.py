"""Factorised pair-set subsystem: compressed floors the store can serve.

See :mod:`repro.store.pairsets.factorized` for the representation
(clique summaries + complete-bipartite cross blocks + exact residual),
the lazy bit-identical decompression contract, and the size heuristic
that falls back to raw entries when factorisation doesn't pay.
"""

from repro.store.pairsets.factorized import (
    MAX_FACTORIZE_RATIO,
    MIN_FACTORIZE_PAIRS,
    RAW_PAIR_BYTES,
    FactorizedPairSet,
    StoredPairSet,
    factorize_result,
    maybe_factorize,
)

__all__ = [
    "MAX_FACTORIZE_RATIO",
    "MIN_FACTORIZE_PAIRS",
    "RAW_PAIR_BYTES",
    "FactorizedPairSet",
    "StoredPairSet",
    "factorize_result",
    "maybe_factorize",
]
