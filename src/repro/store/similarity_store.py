"""The persistent similarity store: disk-backed, versioned APSS knowledge.

PLASMA-HD's interactive loop feels instant because nothing a previous probe
paid for is recomputed — but process-lifetime caches forget everything on
exit.  ``SimilarityStore`` is the disk-backed layer underneath them: a
directory of self-validating entries holding

* **pair sets** — :class:`~repro.similarity.engine.EngineResult` floors, the
  unit :class:`~repro.similarity.cache.CachedApssEngine` spills and restores;
* **reducer state** — the mergeable ``state()`` payloads of the streaming
  reducers (histogram, top-k, rank-selection sketch);
* **sketch matrices** — per-row LSH sketches, so a reopened session skips
  the sketch-generation phase entirely;
* **session state** — serialized :class:`~repro.core.knowledge_cache.KnowledgeCache`
  contents, so interactive sessions resume across processes.

Entries are keyed by content: every key embeds the dataset *fingerprint*
(plus measure/backend/options), so a mutated dataset can never be served
stale state — it simply hashes to a different entry.

Durability contract
-------------------
* **Atomic writes**: entries are written to a temp file in the same
  directory and ``os.replace``-d into place, so concurrent readers (or a
  crash mid-write) can never observe a half-written entry.
* **Self-validation**: each entry carries a magic string, a schema version,
  its full key and a SHA-256 checksum of the payload.  A corrupt, truncated,
  schema-incompatible or key-colliding entry is *evicted on read* — deleted
  and treated as a miss, never trusted.
* **Multi-process safety**: two processes may open the same store directory;
  writes race benignly (last atomic replace wins, both contents valid) and
  eviction races are tolerated.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.similarity.engine import EngineResult
from repro.similarity.types import SimilarPair

__all__ = ["SimilarityStore", "STORE_ENV_VAR", "SCHEMA_VERSION"]

#: Environment variable naming a store directory; when set, the similarity
#: caches attach a persistent store automatically (the CI persistence lane
#: exercises the whole suite this way: ``REPRO_APSS_STORE=$(mktemp -d)``).
STORE_ENV_VAR = "REPRO_APSS_STORE"

#: Bump when the on-disk entry layout changes; older entries are evicted.
SCHEMA_VERSION = 1

_MAGIC = b"REPRO-SIMSTORE\n"


def _key_digest(key: tuple) -> str:
    return hashlib.sha1(repr(key).encode()).hexdigest()


class SimilarityStore:
    """A directory of checksummed, schema-versioned similarity-state entries.

    Parameters
    ----------
    root:
        Directory holding the store (created if missing).  Entries live in
        per-kind subdirectories (``pairs/``, ``reducers/``, ``sketches/``,
        ``sessions/``), one file per key.

    Attributes
    ----------
    hits, misses:
        Entry-level lookup counters.
    evictions:
        Entries deleted because they failed validation (corruption, schema
        mismatch, key mismatch) — each one was refused, never trusted.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @classmethod
    def from_env(cls) -> "SimilarityStore | None":
        """The store named by ``REPRO_APSS_STORE``, or ``None`` when unset."""
        root = os.environ.get(STORE_ENV_VAR, "").strip()
        return cls(root) if root else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimilarityStore(root={str(self.root)!r})"

    # ------------------------------------------------------------------ #
    # Raw entry machinery
    # ------------------------------------------------------------------ #
    def _path(self, kind: str, key: tuple) -> Path:
        return self.root / kind / f"{_key_digest(key)}.entry"

    def put(self, kind: str, key: tuple, arrays: dict, meta: dict) -> Path:
        """Atomically write one entry of numpy *arrays* plus JSON *meta*."""
        buffer = io.BytesIO()
        np.savez(buffer, **{name: np.asarray(value)
                            for name, value in arrays.items()})
        payload = buffer.getvalue()
        header = json.dumps({
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "key": repr(key),
            "sha256": hashlib.sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
            "meta": meta,
        }, default=float).encode()
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(prefix=".tmp-", dir=path.parent)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_MAGIC + header + b"\n" + payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def get(self, kind: str, key: tuple) -> tuple[dict, dict] | None:
        """Load and validate an entry; returns ``(arrays, meta)`` or ``None``.

        Any validation failure — bad magic, unparsable header, schema or key
        mismatch, checksum mismatch, undecodable payload — evicts the entry
        and reports a miss.  Stale state is deleted, never served.
        """
        path = self._path(kind, key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            if not raw.startswith(_MAGIC):
                raise ValueError("bad magic")
            header_end = raw.index(b"\n", len(_MAGIC))
            header = json.loads(raw[len(_MAGIC):header_end])
            payload = raw[header_end + 1:]
            if header.get("schema") != SCHEMA_VERSION:
                raise ValueError(f"schema {header.get('schema')!r} != "
                                 f"{SCHEMA_VERSION}")
            if header.get("key") != repr(key) or header.get("kind") != kind:
                raise ValueError("entry key does not match lookup key")
            if len(payload) != header.get("payload_bytes"):
                raise ValueError("payload truncated")
            if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
                raise ValueError("payload checksum mismatch")
            with np.load(io.BytesIO(payload)) as archive:
                arrays = {name: archive[name] for name in archive.files}
            return arrays, header.get("meta", {})
        except Exception:
            # Corrupt or incompatible: evict so the next write starts clean.
            self._evict(path)
            self.misses += 1
            return None

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass  # a concurrent process already evicted or replaced it
        self.evictions += 1

    def delete(self, kind: str, key: tuple) -> None:
        """Drop one entry (missing entries are fine)."""
        try:
            self._path(kind, key).unlink()
        except OSError:
            pass

    def entry_count(self, kind: str | None = None) -> int:
        """Number of entries on disk (of one *kind*, or overall)."""
        kinds = [kind] if kind else ["pairs", "reducers", "sketches",
                                     "sessions"]
        return sum(len(list((self.root / k).glob("*.entry")))
                   for k in kinds if (self.root / k).is_dir())

    # ------------------------------------------------------------------ #
    # Pair-set entries (EngineResult floors)
    # ------------------------------------------------------------------ #
    def save_result(self, key: tuple, result: EngineResult) -> None:
        """Persist an engine-result floor under *key*.

        Only the pair arrays and the scalar result fields are stored;
        ``details`` carries live backend objects and is deliberately not
        persisted.
        """
        self.put("pairs", key, {
            "first": np.array([p.first for p in result.pairs], dtype=np.int64),
            "second": np.array([p.second for p in result.pairs],
                               dtype=np.int64),
            "similarity": np.array([p.similarity for p in result.pairs]),
        }, {
            "backend": result.backend,
            "measure": result.measure,
            "threshold": result.threshold,
            "n_rows": result.n_rows,
            "exact": result.exact,
            "n_candidates": result.n_candidates,
            "n_pruned": result.n_pruned,
        })

    def load_result(self, key: tuple) -> EngineResult | None:
        """Restore an engine-result floor, or ``None`` on miss/invalid."""
        loaded = self.get("pairs", key)
        if loaded is None:
            return None
        arrays, meta = loaded
        try:
            pairs = [SimilarPair(int(i), int(j), float(v))
                     for i, j, v in zip(arrays["first"].tolist(),
                                        arrays["second"].tolist(),
                                        arrays["similarity"].tolist())]
            result = EngineResult(
                backend=str(meta["backend"]), measure=str(meta["measure"]),
                threshold=float(meta["threshold"]), n_rows=int(meta["n_rows"]),
                pairs=pairs, exact=bool(meta["exact"]), seconds=0.0,
                n_candidates=int(meta.get("n_candidates", 0)),
                n_pruned=int(meta.get("n_pruned", 0)))
        except (KeyError, TypeError, ValueError):
            self._evict(self._path("pairs", key))
            self.misses += 1
            return None
        self.hits += 1
        return result

    # ------------------------------------------------------------------ #
    # Reducer-state entries (mergeable state() dicts)
    # ------------------------------------------------------------------ #
    def save_reducer(self, key: tuple, state: dict) -> None:
        """Persist one mergeable reducer ``state()`` dict under *key*."""
        arrays = {name: value for name, value in state.items()
                  if isinstance(value, np.ndarray)}
        scalars = {name: value for name, value in state.items()
                   if not isinstance(value, np.ndarray)}
        self.put("reducers", key, arrays, {"scalars": scalars})

    def load_reducer(self, key: tuple) -> dict | None:
        """Restore a reducer ``state()`` dict, or ``None`` on miss/invalid."""
        loaded = self.get("reducers", key)
        if loaded is None:
            return None
        arrays, meta = loaded
        state = dict(arrays)
        state.update(meta.get("scalars", {}))
        self.hits += 1
        return state

    # ------------------------------------------------------------------ #
    # Sketch entries
    # ------------------------------------------------------------------ #
    def save_sketches(self, key: tuple, sketches: np.ndarray) -> None:
        """Persist a per-row LSH sketch matrix under *key*."""
        self.put("sketches", key, {"sketches": np.asarray(sketches)}, {})

    def load_sketches(self, key: tuple) -> np.ndarray | None:
        """Restore a sketch matrix, or ``None`` on miss/invalid."""
        loaded = self.get("sketches", key)
        if loaded is None:
            return None
        self.hits += 1
        return loaded[0]["sketches"]

    # ------------------------------------------------------------------ #
    # Session entries (serialized knowledge caches)
    # ------------------------------------------------------------------ #
    def save_session(self, key: tuple, state: dict) -> None:
        """Persist a :meth:`KnowledgeCache.state` payload under *key*."""
        arrays = {name: value for name, value in state.items()
                  if isinstance(value, np.ndarray)}
        scalars = {name: value for name, value in state.items()
                   if not isinstance(value, np.ndarray)}
        self.put("sessions", key, arrays, {"scalars": scalars})

    def load_session(self, key: tuple) -> dict | None:
        """Restore a session's knowledge-cache state, or ``None`` on miss."""
        loaded = self.get("sessions", key)
        if loaded is None:
            return None
        arrays, meta = loaded
        state = dict(arrays)
        state.update(meta.get("scalars", {}))
        self.hits += 1
        return state
