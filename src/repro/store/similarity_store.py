"""The persistent similarity store: disk-backed, versioned APSS knowledge.

PLASMA-HD's interactive loop feels instant because nothing a previous probe
paid for is recomputed — but process-lifetime caches forget everything on
exit.  ``SimilarityStore`` is the disk-backed layer underneath them: a
directory of self-validating entries holding

* **pair sets** — :class:`~repro.similarity.engine.EngineResult` floors, the
  unit :class:`~repro.similarity.cache.CachedApssEngine` spills and restores
  (large clustered floors are stored *factorised* — clique summaries +
  bipartite blocks + residual, :mod:`repro.store.pairsets` — and
  decompressed bit-identically on load);
* **reducer state** — the mergeable ``state()`` payloads of the streaming
  reducers (histogram, top-k, rank-selection sketch);
* **sketch matrices** — per-row LSH sketches, so a reopened session skips
  the sketch-generation phase entirely;
* **session state** — serialized :class:`~repro.core.knowledge_cache.KnowledgeCache`
  contents, so interactive sessions resume across processes.

Entries are keyed by content: every key embeds the dataset *fingerprint*
(plus measure/backend/options), so a mutated dataset can never be served
stale state — it simply hashes to a different entry.

Durability contract
-------------------
* **Atomic writes**: entries are written to a temp file in the same
  directory and ``os.replace``-d into place, so concurrent readers (or a
  crash mid-write) can never observe a half-written entry.
* **Self-validation**: each entry carries a magic string, a schema version,
  its full key and a SHA-256 checksum of the payload.  A corrupt, truncated,
  schema-incompatible or key-colliding entry is *evicted on read* — deleted
  and treated as a miss, never trusted — and every eviction emits a
  structured ``repro.store`` warning naming the key and the failure kind.
* **Multi-process safety**: two processes may open the same store directory;
  writes race benignly (last atomic replace wins, both contents valid) and
  eviction races are tolerated.

MVCC lineage layer
------------------
Entry-level atomicity is not lineage-level consistency: a reader sweeping a
fingerprint lineage (parent → append → append …) still races ingest between
lookups.  The versioned manifest (:mod:`repro.store.manifest`) closes that
gap: :meth:`SimilarityStore.publish_floor` lands floors as immutable
``lineage/`` entries recorded in an atomically-published manifest, and
:meth:`SimilarityStore.open_snapshot` returns a :class:`StoreSnapshot`
pinned to one manifest version — immune to concurrent ingest,
:meth:`~SimilarityStore.compact` and :meth:`~SimilarityStore.gc`.  The
manifest doubles as the cross-host replication unit
(:meth:`~SimilarityStore.export_snapshot` /
:meth:`~SimilarityStore.attach_snapshot`).
"""

from __future__ import annotations

import hashlib
import io
import json
import logging
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.similarity.engine import EngineResult
from repro.similarity.types import SimilarPair
from repro.store.pairsets import (
    FactorizedPairSet,
    StoredPairSet,
    maybe_factorize,
)
from repro.store.manifest import (
    FloorRef,
    GenerationRecord,
    LineageLog,
    Manifest,
    floor_axis,
    lineage_entry_key,
)

__all__ = ["SimilarityStore", "StoreSnapshot", "StoreAttachError",
           "STORE_ENV_VAR", "SCHEMA_VERSION"]

#: Environment variable naming a store directory; when set, the similarity
#: caches attach a persistent store automatically (the CI persistence lane
#: exercises the whole suite this way: ``REPRO_APSS_STORE=$(mktemp -d)``).
STORE_ENV_VAR = "REPRO_APSS_STORE"

#: Bump when the on-disk entry layout changes; older entries are evicted.
SCHEMA_VERSION = 1

_MAGIC = b"REPRO-SIMSTORE\n"

_LOGGER = logging.getLogger("repro.store")

#: Sentinel distinguishing "caller did not pass an existing floor" from a
#: known store miss (``existing=None``) in :meth:`SimilarityStore.land_result`.
_UNSET = object()

#: Entry kinds enumerated by :meth:`SimilarityStore.entry_count` by default.
_ENTRY_KINDS = ("pairs", "pairs-factorized", "reducers", "sketches",
                "sessions", "lineage")

#: The two entry kinds a floor may live under; checked in this order
#: (factorised entries supersede raw ones for the same key).
_FLOOR_KINDS = ("pairs-factorized", "pairs")


class StoreAttachError(RuntimeError):
    """A store directory could not be attached (missing, unwritable, or —
    for :meth:`SimilarityStore.attach_snapshot` — failing validation)."""


def _key_digest(key: tuple) -> str:
    return hashlib.sha1(repr(key).encode()).hexdigest()


def _pairs_arrays(pairs) -> dict:
    """CSR-style arrays for a pair list, the payload of a floor entry."""
    return {
        "first": np.array([p.first for p in pairs], dtype=np.int64),
        "second": np.array([p.second for p in pairs], dtype=np.int64),
        "similarity": np.array([p.similarity for p in pairs]),
    }


def _arrays_pairs(arrays) -> list[SimilarPair]:
    """Inverse of :func:`_pairs_arrays`."""
    return [SimilarPair(int(i), int(j), float(v))
            for i, j, v in zip(arrays["first"].tolist(),
                               arrays["second"].tolist(),
                               arrays["similarity"].tolist())]


def _floor_entry_pairs(arrays: dict, meta: dict) -> list[SimilarPair]:
    """Decode a floor entry payload — raw or factorised — to a pair list.

    The one decode seam shared by entry loads and lineage resolution: a
    payload whose meta carries ``encoding == "factorized"`` is run through
    the full structural validation of
    :meth:`~repro.store.pairsets.FactorizedPairSet.from_arrays` (raising
    ``ValueError`` on any inconsistency, which callers turn into
    evict-and-miss), everything else is the raw parallel-array layout.
    """
    if meta.get("encoding") == "factorized":
        pairset = FactorizedPairSet.from_arrays(
            arrays, threshold=float(meta.get("threshold", 0.0)))
        return pairset.pairs()
    return _arrays_pairs(arrays)


class SimilarityStore:
    """A directory of checksummed, schema-versioned similarity-state entries.

    Parameters
    ----------
    root:
        Directory holding the store (created if missing).  Entries live in
        per-kind subdirectories (``pairs/``, ``pairs-factorized/``,
        ``reducers/``, ``sketches/``, ``sessions/``, plus the
        manifest-managed ``lineage/``), one file per key.  A floor lives
        under exactly one of ``pairs``/``pairs-factorized`` depending on
        whether clique-based compression paid for it (see
        :mod:`repro.store.pairsets`).

    Attributes
    ----------
    hits, misses:
        Entry-level lookup counters.
    evictions:
        Entries deleted because they failed validation (corruption, schema
        mismatch, key mismatch) — each one was refused, never trusted.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lineage: LineageLog | None = None

    @classmethod
    def from_env(cls) -> "SimilarityStore | None":
        """The store named by ``REPRO_APSS_STORE``, or ``None`` when unset.

        Validates eagerly: a path that cannot be created, or that is not a
        writable directory, raises :class:`StoreAttachError` here — at
        attach time, naming the environment variable — instead of failing
        opaquely on the first spill deep inside a search.
        """
        root = os.environ.get(STORE_ENV_VAR, "").strip()
        if not root:
            return None
        try:
            store = cls(root)
            # Probe writability now: the first real write happens much
            # later, inside a search, where the failure would be opaque.
            fd, probe = tempfile.mkstemp(prefix=".probe-", dir=store.root)
            os.close(fd)
            os.unlink(probe)
        except OSError as exc:
            raise StoreAttachError(
                f"{STORE_ENV_VAR} names {root!r}, which is not a usable "
                f"store directory: {exc}") from exc
        return store

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimilarityStore(root={str(self.root)!r})"

    # ------------------------------------------------------------------ #
    # Raw entry machinery
    # ------------------------------------------------------------------ #
    def _path(self, kind: str, key: tuple) -> Path:
        return self.root / kind / f"{_key_digest(key)}.entry"

    def put(self, kind: str, key: tuple, arrays: dict, meta: dict) -> Path:
        """Atomically write one entry of numpy *arrays* plus JSON *meta*."""
        buffer = io.BytesIO()
        np.savez(buffer, **{name: np.asarray(value)
                            for name, value in arrays.items()})
        payload = buffer.getvalue()
        header = json.dumps({
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "key": repr(key),
            "sha256": hashlib.sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
            "meta": meta,
        }, default=float).encode()
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(prefix=".tmp-", dir=path.parent)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_MAGIC + header + b"\n" + payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def read_entry_file(self, path: Path, kind: str,
                        key: tuple) -> tuple[dict, dict]:
        """Load and fully validate the entry at *path*; raises on failure.

        The validation core shared by :meth:`get`, the snapshot resolver
        and the ``fsck`` auditor: checks magic, header parse, schema
        version, recorded kind/key, payload length, SHA-256 checksum and
        payload decode, raising ``ValueError`` (or propagating ``OSError``
        for an unreadable file) instead of evicting — eviction policy is
        the caller's.
        """
        raw = Path(path).read_bytes()
        if not raw.startswith(_MAGIC):
            raise ValueError("bad magic")
        header_end = raw.index(b"\n", len(_MAGIC))
        try:
            header = json.loads(raw[len(_MAGIC):header_end])
        except json.JSONDecodeError as exc:
            raise ValueError(f"unparsable header: {exc}") from exc
        payload = raw[header_end + 1:]
        if header.get("schema") != SCHEMA_VERSION:
            raise ValueError(f"schema {header.get('schema')!r} != "
                             f"{SCHEMA_VERSION}")
        if header.get("key") != repr(key) or header.get("kind") != kind:
            raise ValueError("entry key does not match lookup key")
        if len(payload) != header.get("payload_bytes"):
            raise ValueError("payload truncated")
        if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
            raise ValueError("payload checksum mismatch")
        try:
            with np.load(io.BytesIO(payload)) as archive:
                arrays = {name: archive[name] for name in archive.files}
        except Exception as exc:
            raise ValueError(f"undecodable payload: {exc}") from exc
        return arrays, header.get("meta", {})

    def get(self, kind: str, key: tuple) -> tuple[dict, dict] | None:
        """Load and validate an entry; returns ``(arrays, meta)`` or ``None``.

        Any validation failure — bad magic, unparsable header, schema or key
        mismatch, checksum mismatch, undecodable payload — evicts the entry
        and reports a miss, with a structured warning on the
        ``repro.store`` logger naming the key and the failure kind.  Stale
        state is deleted, never served.
        """
        path = self._path(kind, key)
        try:
            return self.read_entry_file(path, kind, key)
        except OSError:
            self.misses += 1
            return None
        except ValueError as exc:
            # Corrupt or incompatible: evict so the next write starts clean.
            self._evict(path, kind=kind, key=key, failure=str(exc))
            self.misses += 1
            return None

    def _evict(self, path: Path, *, kind: str = "?", key: tuple = (),
               failure: str = "validation failure") -> None:
        _LOGGER.warning(
            "evicting store entry that failed validation: kind=%s key=%s "
            "failure=%r path=%s", kind, key, failure, path)
        try:
            path.unlink()
        except OSError:
            pass  # a concurrent process already evicted or replaced it
        self.evictions += 1

    def delete(self, kind: str, key: tuple) -> None:
        """Drop one entry (missing entries are fine)."""
        try:
            self._path(kind, key).unlink()
        except OSError:
            pass

    def entry_count(self, kind: str | None = None) -> int:
        """Number of entries on disk (of one *kind*, or overall)."""
        kinds = [kind] if kind else list(_ENTRY_KINDS)
        return sum(len(list((self.root / k).glob("*.entry")))
                   for k in kinds if (self.root / k).is_dir())

    def stats(self) -> dict:
        """Entry counts and on-disk bytes per kind, plus lineage bytes.

        The observability face of the store: ``kinds`` maps each entry
        kind to ``{"entries", "bytes"}`` (so the raw-vs-factorised split —
        and therefore the compression win — is visible in serving, not
        just in benchmarks), ``entries``/``bytes`` are the totals,
        ``lineage_bytes`` additionally counts the manifest files, and
        ``evictions`` is the lifetime validation-failure count.
        Surfaced through :meth:`SimilarityService.health`.
        """
        kinds: dict[str, dict] = {}
        total_entries = 0
        total_bytes = 0
        for kind in _ENTRY_KINDS:
            directory = self.root / kind
            entries = 0
            n_bytes = 0
            if directory.is_dir():
                for path in directory.glob("*.entry"):
                    try:
                        size = path.stat().st_size
                    except OSError:
                        continue  # concurrently evicted or replaced
                    entries += 1
                    n_bytes += size
            kinds[kind] = {"entries": entries, "bytes": n_bytes}
            total_entries += entries
            total_bytes += n_bytes
        return {
            "kinds": kinds,
            "entries": total_entries,
            "bytes": total_bytes,
            "lineage_bytes": self.lineage_bytes(),
            "evictions": self.evictions,
        }

    # ------------------------------------------------------------------ #
    # Pair-set entries (EngineResult floors)
    # ------------------------------------------------------------------ #
    def save_result(self, key: tuple, result: EngineResult) -> None:
        """Persist an engine-result floor under *key*.

        Only the pair arrays and the scalar result fields are stored;
        ``details`` carries live backend objects and is deliberately not
        persisted — except the *approximate flavour* header: a non-exact
        floor records its ``epsilon`` false-negative budget so readers can
        reconstruct the recall bound (1 − ε) the entry was served under.

        Large clustered floors land as a ``pairs-factorized`` entry
        (clique + block + residual compression, see
        :mod:`repro.store.pairsets`) when
        :func:`~repro.store.pairsets.maybe_factorize`'s size heuristic
        says it pays, and as a raw ``pairs`` entry otherwise; the sibling
        kind under the same key is dropped either way, so at most one
        representation of a floor exists.  Loading is transparent in both
        directions.
        """
        meta = {
            "backend": result.backend,
            "measure": result.measure,
            "threshold": result.threshold,
            "n_rows": result.n_rows,
            "exact": result.exact,
            "n_candidates": result.n_candidates,
            "n_pruned": result.n_pruned,
        }
        if not result.exact:
            epsilon = result.details.get("epsilon")
            if epsilon is not None:
                meta["epsilon"] = float(epsilon)
        arrays = _pairs_arrays(result.pairs)
        pairset = None
        try:
            pairset = maybe_factorize(
                arrays["first"], arrays["second"], arrays["similarity"],
                n_rows=result.n_rows, threshold=result.threshold)
        except ValueError:
            # Factorisation is an optimisation: a floor it cannot encode
            # (unsorted, duplicated, out-of-range pairs) stays raw.
            pairset = None
        if pairset is not None:
            meta["encoding"] = "factorized"
            self.put("pairs-factorized", key, pairset.to_arrays(), meta)
            self.delete("pairs", key)
        else:
            self.put("pairs", key, arrays, meta)
            self.delete("pairs-factorized", key)

    def _floor_location(self, key: tuple) -> str | None:
        """Which entry kind holds the floor for *key* on disk, if any."""
        for kind in _FLOOR_KINDS:
            if self._path(kind, key).is_file():
                return kind
        return None

    def load_result(self, key: tuple) -> EngineResult | None:
        """Restore an engine-result floor, or ``None`` on miss/invalid.

        Serves raw and factorised entries alike: a ``pairs-factorized``
        entry is structurally validated and decompressed to the identical
        canonical pair list — zero kernel work, and callers cannot tell
        the representations apart.
        """
        kind = self._floor_location(key)
        if kind is None:
            self.misses += 1
            return None
        loaded = self.get(kind, key)
        if loaded is None:
            return None
        arrays, meta = loaded
        try:
            details: dict = {}
            if not meta["exact"] and meta.get("epsilon") is not None:
                epsilon = float(meta["epsilon"])
                details = {"epsilon": epsilon,
                           "recall_bound": 1.0 - epsilon}
            result = EngineResult(
                backend=str(meta["backend"]), measure=str(meta["measure"]),
                threshold=float(meta["threshold"]), n_rows=int(meta["n_rows"]),
                pairs=_floor_entry_pairs(arrays, meta),
                exact=bool(meta["exact"]),
                seconds=0.0,
                n_candidates=int(meta.get("n_candidates", 0)),
                n_pruned=int(meta.get("n_pruned", 0)),
                details=details)
        except (KeyError, TypeError, ValueError) as exc:
            self._evict(self._path(kind, key), kind=kind, key=key,
                        failure=f"malformed floor entry: {exc}")
            self.misses += 1
            return None
        self.hits += 1
        return result

    def load_pairset(self, key: tuple) -> StoredPairSet | None:
        """The floor for *key* in streamable (factorised) form, or ``None``.

        Unlike :meth:`load_result` this never materialises the pair list:
        a ``pairs-factorized`` entry hands back its compressed parts
        directly, and a raw ``pairs`` entry is wrapped residual-only —
        either way the caller streams
        :meth:`~repro.store.pairsets.FactorizedPairSet.iter_pairs` /
        ``iter_chunks`` at any threshold at or above the stored floor's.
        Malformed entries are evicted and reported as a miss, exactly as
        :meth:`load_result` does.
        """
        kind = self._floor_location(key)
        if kind is None:
            self.misses += 1
            return None
        loaded = self.get(kind, key)
        if loaded is None:
            return None
        arrays, meta = loaded
        try:
            threshold = float(meta["threshold"])
            n_rows = int(meta["n_rows"])
            if kind == "pairs-factorized":
                pairset = FactorizedPairSet.from_arrays(
                    arrays, threshold=threshold)
                if pairset.n_rows != n_rows:
                    raise ValueError("factorized floor row count disagrees "
                                     "with entry meta")
                encoding = "factorized"
            else:
                pairset = FactorizedPairSet.from_raw_arrays(
                    arrays["first"], arrays["second"], arrays["similarity"],
                    n_rows=n_rows, threshold=threshold)
                encoding = "raw"
            stored = StoredPairSet(
                pairset=pairset, threshold=threshold, n_rows=n_rows,
                exact=bool(meta["exact"]), backend=str(meta["backend"]),
                measure=str(meta["measure"]), encoding=encoding)
        except (KeyError, TypeError, ValueError) as exc:
            self._evict(self._path(kind, key), kind=kind, key=key,
                        failure=f"malformed floor entry: {exc}")
            self.misses += 1
            return None
        self.hits += 1
        return stored

    def land_result(self, key: tuple, result: EngineResult, *,
                    existing: "EngineResult | None" = _UNSET) -> bool:
        """Write a floor under *key* iff it never downgrades the entry.

        The store-boundary mirror of :class:`~repro.core.knowledge_cache.
        KnowledgeCache`'s upgrade-only contract, and the seam the two-tier
        serving path lands through.  The entry under one key only ever
        moves *up* the lattice:

        * no entry → anything lands;
        * **approximate → exact lands unconditionally** (the refinement
          upgrade, regardless of threshold — exactness outranks floor
          looseness, exactly as an exact knowledge-cache entry outranks
          any estimate);
        * **exact → approximate is refused** (the downgrade direction);
        * same flavour → only a strictly looser floor lands (the
          long-standing sweep-cache rule).

        Pass *existing* (a prior :meth:`load_result` for *key*, or ``None``
        for a known miss) to skip the re-read.  Returns whether the entry
        was written.
        """
        if existing is _UNSET:
            existing = self.load_result(key)
        if existing is not None:
            if existing.exact and not result.exact:
                return False
            if (existing.exact == result.exact
                    and existing.threshold <= result.threshold):
                return False
        self.save_result(key, result)
        return True

    # ------------------------------------------------------------------ #
    # Reducer-state entries (mergeable state() dicts)
    # ------------------------------------------------------------------ #
    def save_reducer(self, key: tuple, state: dict) -> None:
        """Persist one mergeable reducer ``state()`` dict under *key*."""
        arrays = {name: value for name, value in state.items()
                  if isinstance(value, np.ndarray)}
        scalars = {name: value for name, value in state.items()
                   if not isinstance(value, np.ndarray)}
        self.put("reducers", key, arrays, {"scalars": scalars})

    def load_reducer(self, key: tuple) -> dict | None:
        """Restore a reducer ``state()`` dict, or ``None`` on miss/invalid."""
        loaded = self.get("reducers", key)
        if loaded is None:
            return None
        arrays, meta = loaded
        state = dict(arrays)
        state.update(meta.get("scalars", {}))
        self.hits += 1
        return state

    # ------------------------------------------------------------------ #
    # Sketch entries
    # ------------------------------------------------------------------ #
    def save_sketches(self, key: tuple, sketches: np.ndarray) -> None:
        """Persist a per-row LSH sketch matrix under *key*."""
        self.put("sketches", key, {"sketches": np.asarray(sketches)}, {})

    def load_sketches(self, key: tuple) -> np.ndarray | None:
        """Restore a sketch matrix, or ``None`` on miss/invalid."""
        loaded = self.get("sketches", key)
        if loaded is None:
            return None
        self.hits += 1
        return loaded[0]["sketches"]

    # ------------------------------------------------------------------ #
    # Session entries (serialized knowledge caches)
    # ------------------------------------------------------------------ #
    def save_session(self, key: tuple, state: dict) -> None:
        """Persist a :meth:`KnowledgeCache.state` payload under *key*."""
        arrays = {name: value for name, value in state.items()
                  if isinstance(value, np.ndarray)}
        scalars = {name: value for name, value in state.items()
                   if not isinstance(value, np.ndarray)}
        self.put("sessions", key, arrays, {"scalars": scalars})

    def load_session(self, key: tuple) -> dict | None:
        """Restore a session's knowledge-cache state, or ``None`` on miss."""
        loaded = self.get("sessions", key)
        if loaded is None:
            return None
        arrays, meta = loaded
        state = dict(arrays)
        state.update(meta.get("scalars", {}))
        self.hits += 1
        return state

    # ------------------------------------------------------------------ #
    # MVCC lineage: manifest, snapshots, compaction, GC
    # ------------------------------------------------------------------ #
    @property
    def lineage(self) -> LineageLog:
        """The store's manifest log (created lazily on first use)."""
        if self._lineage is None:
            self._lineage = LineageLog(self.root)
        return self._lineage

    def manifest(self) -> Manifest:
        """The current (unpinned) manifest; version 0 when no lineage."""
        return self.lineage.current()

    def open_snapshot(self, *, pin: bool = True) -> "StoreSnapshot":
        """An immutable read view pinned to the current manifest version.

        The snapshot's floors are immune to concurrent ingest, compaction
        and GC for as long as it is open: its pin is a lease
        (flock-backed, released automatically on process death — SIGKILL
        included) that :meth:`gc` honours.  Pass ``pin=False`` (or open on
        a read-only directory, where pinning degrades automatically) for an
        unpinned view — consistent, but not protected from a concurrent
        GC.
        """
        if pin:
            try:
                lease, manifest = self.lineage.pin()
                return StoreSnapshot(self, manifest, lease)
            except OSError:
                _LOGGER.debug("store %s is not writable; opening an "
                              "unpinned snapshot", self.root)
        return StoreSnapshot(self, self.lineage.current(), None)

    def _write_lineage_floor(self, entry_key: tuple, result: EngineResult,
                             *, kind: str, sequence: int,
                             parent_rows: int | None = None) -> FloorRef:
        """Write one immutable lineage floor entry; returns its reference."""
        pairs = result.pairs
        meta = {
            "floor": kind, "backend": result.backend,
            "measure": result.measure, "threshold": result.threshold,
            "n_rows": result.n_rows, "exact": result.exact,
        }
        if kind == "delta":
            pairs = [p for p in pairs if p.second >= parent_rows]
            meta["parent_rows"] = int(parent_rows)
        arrays = _pairs_arrays(pairs)
        pairset = None
        try:
            pairset = maybe_factorize(
                arrays["first"], arrays["second"], arrays["similarity"],
                n_rows=result.n_rows, threshold=result.threshold)
        except ValueError:
            pairset = None  # unencodable floors stay raw (see save_result)
        if pairset is not None:
            meta["encoding"] = "factorized"
            arrays = pairset.to_arrays()
        path = self.put("lineage", entry_key, arrays, meta)
        return FloorRef(file=str(path.relative_to(self.root)), kind=kind,
                        threshold=float(result.threshold),
                        sequence=int(sequence))

    def publish_floor(self, key: tuple, result: EngineResult,
                      delta=None, *,
                      existing: "EngineResult | None" = _UNSET) -> Manifest:
        """Land a floor in the versioned lineage (and the legacy entry dir).

        *key* is the sweep-cache floor key ``(fingerprint, measure,
        backend, options)``.  With *delta* (a
        :class:`~repro.datasets.vectors.DatasetDelta` tying this result to
        its append parent) and the parent generation already carrying a
        floor at or below this threshold on the same axis, only the pairs
        the append introduced are written (a ``delta`` entry); otherwise
        the full pair set lands.  Either way the successor manifest is
        published atomically, so concurrent snapshot readers keep seeing
        exactly their pinned version.

        The legacy ("latest floor") entry goes through
        :meth:`land_result`'s upgrade-only contract (pass *existing* to
        skip its re-read).  **Approximate results never enter the
        lineage**: a delta chain of estimates has no coherent merge
        semantics (each link drops a different ε-budget of pairs), so the
        sketch tier lives entirely in the mutable entry dir and the MVCC
        manifest stays a record of exact floors only.
        """
        landed = self.land_result(key, result, existing=existing)
        if not result.exact or not landed:
            return self.lineage.current()
        fingerprint = str(key[0])
        axis = floor_axis(key)
        if delta is not None and (not result.exact
                                  or delta.child_fingerprint != fingerprint):
            delta = None
        with self.lineage.lock():
            current = self.lineage.current()
            sequence = current.version + 1
            record = current.generation(fingerprint)
            parent_link = record.parent if record is not None else None
            as_delta = False
            if delta is not None:
                parent_rec = current.generation(delta.parent_fingerprint)
                parent_ref = (parent_rec.floors.get(axis)
                              if parent_rec is not None else None)
                if (parent_ref is not None
                        and parent_ref.threshold <= result.threshold
                        and parent_rec.n_rows == delta.parent_rows
                        and parent_link in (None, delta.parent_fingerprint)):
                    as_delta = True
                    parent_link = delta.parent_fingerprint
            entry_key = lineage_entry_key(sequence, fingerprint, axis)
            if as_delta:
                ref = self._write_lineage_floor(
                    entry_key, result, kind="delta", sequence=sequence,
                    parent_rows=delta.parent_rows)
            else:
                ref = self._write_lineage_floor(
                    entry_key, result, kind="full", sequence=sequence)
            floors = dict(record.floors) if record is not None else {}
            floors[axis] = ref
            updated = GenerationRecord(
                fingerprint=fingerprint, parent=parent_link,
                n_rows=int(result.n_rows),
                sequence=record.sequence if record is not None else sequence,
                floors=floors)
            generations = [g for g in current.generations
                           if g.fingerprint != fingerprint] + [updated]
            successor = current.replace(generations)
            self.lineage._write_manifest(successor)
            self.lineage._point_current(successor.version)
            return successor

    def publish_generation(self, fingerprint: str, *, parent: str | None,
                           n_rows: int,
                           parent_rows: int | None = None) -> Manifest:
        """Record a (possibly floor-less) generation in the lineage.

        The ingest-side half of the snapshot seam:
        :meth:`~repro.core.session.PlasmaSession.extend_dataset` publishes
        the appended dataset here the moment it exists, so snapshots
        opened afterwards see the new generation even before its first
        floor lands.  A missing *parent* generation is created floor-less
        (with *parent_rows* rows) so the chain is never dangling.
        """
        with self.lineage.lock():
            current = self.lineage.current()
            sequence = current.version + 1
            generations = list(current.generations)
            if parent is not None and current.generation(parent) is None:
                generations.append(GenerationRecord(
                    fingerprint=str(parent), parent=None,
                    n_rows=int(parent_rows or 0), sequence=sequence,
                    floors={}))
            record = current.generation(fingerprint)
            if record is not None:
                if record.parent == parent:
                    return current  # already recorded: no-op publish
                updated = GenerationRecord(
                    fingerprint=record.fingerprint,
                    parent=parent if record.parent is None else record.parent,
                    n_rows=record.n_rows, sequence=record.sequence,
                    floors=record.floors)
                generations = [g for g in generations
                               if g.fingerprint != fingerprint] + [updated]
            else:
                generations.append(GenerationRecord(
                    fingerprint=str(fingerprint), parent=parent,
                    n_rows=int(n_rows), sequence=sequence, floors={}))
            successor = current.replace(generations)
            self.lineage._write_manifest(successor)
            self.lineage._point_current(successor.version)
            return successor

    def _resolve_manifest_floor(self, manifest: Manifest, fingerprint: str,
                                axis: str) -> EngineResult | None:
        """Reconstruct the floor for (*fingerprint*, *axis*) in *manifest*.

        Walks the delta chain child-ward to the nearest ``full`` floor and
        merges by pure pair arithmetic — no kernel work.  The merged floor
        is served at the tightest threshold along the chain (each chain
        entry is complete at its own threshold, so the union filtered to
        the max is exact there).  Returns ``None`` when the chain is
        broken, an entry is missing/corrupt, or the axis was never landed.
        """
        record = manifest.generation(fingerprint)
        if record is None:
            return None
        refs: list[tuple[GenerationRecord, FloorRef]] = []
        cursor = record
        while True:
            ref = cursor.floors.get(axis)
            if ref is None:
                return None
            refs.append((cursor, ref))
            if ref.kind == "full":
                break
            if cursor.parent is None:
                return None
            cursor = manifest.generation(cursor.parent)
            if cursor is None:
                return None
        threshold = max(ref.threshold for _, ref in refs)
        pairs: list[SimilarPair] = []
        base_meta: dict = {}
        for gen, ref in refs:
            entry_key = lineage_entry_key(ref.sequence, gen.fingerprint,
                                          axis)
            try:
                arrays, meta = self.read_entry_file(
                    self.root / ref.file, "lineage", entry_key)
            except (OSError, ValueError) as exc:
                _LOGGER.warning(
                    "lineage entry %s for fingerprint %s failed to load: "
                    "%s", ref.file, gen.fingerprint, exc)
                return None
            if ref.kind == "full":
                base_meta = meta
            try:
                pairs.extend(_floor_entry_pairs(arrays, meta))
            except ValueError as exc:
                _LOGGER.warning(
                    "lineage entry %s for fingerprint %s failed structural "
                    "decode: %s", ref.file, gen.fingerprint, exc)
                return None
        pairs = [p for p in pairs if p.similarity >= threshold]
        pairs.sort(key=lambda p: (p.first, p.second))
        return EngineResult(
            backend=str(base_meta.get("backend", "exact-blocked")),
            measure=str(base_meta.get("measure", "cosine")),
            threshold=float(threshold), n_rows=int(record.n_rows),
            pairs=pairs, exact=bool(base_meta.get("exact", True)),
            seconds=0.0, n_candidates=len(pairs), n_pruned=0,
            details={"lineage": {"chain_length": len(refs),
                                 "manifest_version": manifest.version}})

    def compact(self, **kwargs):
        """Fold delta chains into consolidated floors; see
        :func:`repro.store.gc.compact`."""
        from repro.store.gc import compact

        return compact(self, **kwargs)

    def gc(self, **kwargs):
        """Collect unpinned manifests and entries; see
        :func:`repro.store.gc.collect_garbage`."""
        from repro.store.gc import collect_garbage

        return collect_garbage(self, **kwargs)

    def lineage_bytes(self) -> int:
        """On-disk bytes held by the lineage (entries + manifests)."""
        from repro.store.gc import lineage_bytes

        return lineage_bytes(self)

    # ------------------------------------------------------------------ #
    # Cross-host replication: export / attach
    # ------------------------------------------------------------------ #
    def export_snapshot(self, dest: str | os.PathLike,
                        snapshot: "StoreSnapshot | None" = None) -> Path:
        """Materialise one snapshot as a self-contained store directory.

        Copies the snapshot's manifest and every lineage entry it
        references into *dest*, which then serves read-only sweeps on any
        host (rsync/object-store it and :meth:`attach_snapshot` there).
        Pins the current version for the duration when no *snapshot* is
        passed.
        """
        own = snapshot is None
        snap = snapshot if snapshot is not None else self.open_snapshot()
        try:
            dest = Path(dest)
            (dest / "lineage").mkdir(parents=True, exist_ok=True)
            for rel in sorted(snap.manifest.files()):
                source = self.root / rel
                target = dest / rel
                target.parent.mkdir(parents=True, exist_ok=True)
                tmp = target.with_name(f".tmp-{os.getpid()}-{target.name}")
                tmp.write_bytes(source.read_bytes())
                os.replace(tmp, target)
            log = LineageLog(dest)
            log.dir.mkdir(parents=True, exist_ok=True)
            log._write_manifest(snap.manifest)
            log._point_current(snap.manifest.version)
        finally:
            if own:
                snap.close()
        return dest

    @classmethod
    def attach_snapshot(cls, path: str | os.PathLike) -> "SimilarityStore":
        """Open an exported snapshot directory, validating it eagerly.

        Raises :class:`StoreAttachError` when the directory is missing, has
        no manifest, or references entries that were not copied — the
        replication failure modes — instead of serving misses later.
        Returns a store whose :meth:`open_snapshot` view serves the
        exported floors.
        """
        root = Path(path)
        if not root.is_dir():
            raise StoreAttachError(
                f"cannot attach snapshot: {root} is not a directory")
        store = cls(root)
        manifest = store.manifest()
        if manifest.version == 0:
            raise StoreAttachError(
                f"cannot attach snapshot: {root} holds no manifest")
        missing = sorted(rel for rel in manifest.files()
                         if not (root / rel).is_file())
        if missing:
            raise StoreAttachError(
                f"cannot attach snapshot: {root} manifest references "
                f"missing entries {missing[:3]}"
                + (" …" if len(missing) > 3 else ""))
        return store


class StoreSnapshot:
    """A read view of one store pinned to one manifest version.

    Every :meth:`load_result` resolves through the pinned manifest's
    immutable entries, so the view is bit-stable under concurrent ingest,
    compaction and GC — the snapshot-isolation contract the
    ``tests/store/test_snapshot_isolation.py`` battery proves.  Close (or
    use as a context manager) to release the pin lease; a killed process
    releases it automatically.
    """

    def __init__(self, store: SimilarityStore, manifest: Manifest,
                 pin=None) -> None:
        self.store = store
        self.manifest = manifest
        self._pin = pin
        self.closed = False

    @property
    def version(self) -> int:
        """The pinned manifest version."""
        return self.manifest.version

    @property
    def pinned(self) -> bool:
        """Whether this view holds a live pin lease protecting it from GC."""
        return self._pin is not None and not self.closed

    def fingerprints(self) -> list[str]:
        """Every dataset fingerprint this snapshot knows about."""
        return [record.fingerprint for record in self.manifest.generations]

    def generation(self, fingerprint: str):
        """The pinned generation record for *fingerprint*, or ``None``."""
        return self.manifest.generation(fingerprint)

    def load_result(self, key: tuple) -> EngineResult | None:
        """The pinned floor for *key* (sweep-cache key form), or ``None``.

        A delta chain is merged by pure pair arithmetic at read time; no
        kernel work, and no observation of any manifest version but this
        snapshot's.
        """
        if self.closed:
            raise ValueError("snapshot is closed")
        return self.store._resolve_manifest_floor(
            self.manifest, str(key[0]), floor_axis(key))

    def close(self) -> None:
        """Release the pin lease (idempotent)."""
        if self.closed:
            return
        self.closed = True
        if self._pin is not None:
            self._pin.release()

    def __enter__(self) -> "StoreSnapshot":
        """Context-manager entry: the snapshot itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: release the pin."""
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StoreSnapshot(version={self.version}, "
                f"pinned={self.pinned})")
