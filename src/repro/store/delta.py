"""Incremental APSS: extend similarity state over appended rows only.

An append of ``d`` rows to an ``n``-row dataset changes exactly the pairs
that touch a new row: the ``d x n`` new-vs-old cross block plus the
``d x d / 2`` new-vs-new triangle.  Everything previously computed — pair
sets, reducer state, per-pair session knowledge — remains valid, because
similarity is a pure function of the two rows involved.

:class:`DeltaApssBackend` exploits that: it runs the same blocked Gram
kernel as ``exact-blocked`` (:func:`repro.similarity.streaming.compute_block_slab`)
restricted to the appended row range, extracts the new pairs at the parent
result's threshold floor, and merges them into the parent's pair list in
canonical ``(first, second)`` order.  The cost is O(d * n) instead of the
O(n^2) of a from-scratch search, which is what keeps the interactive loop
interactive on append-only datasets.

With ``n_workers > 1`` the delta pass itself is *sharded*: the cross block
is partitioned by :func:`~repro.similarity.partition.partition_delta_blocks`
and fanned over the same shared worker pool (and shared-memory transport) as
the ``sharded-blocked`` search backend, with shard-local reducer state merged
back through the commutative ``merge()`` seam.  Results are byte-identical
to the single-process pass for every worker count — ingest is just another
workload on the execution substrate.

Every extension is fingerprint-checked: the parent result must describe
exactly ``delta.parent_rows`` rows and the child dataset must hash to
``delta.child_fingerprint``, so stale or mismatched state is rejected
loudly rather than merged silently.  And because extension only *reads* the
parent state and every store write is one atomic entry replace, a crash (or
injected fault) mid-ingest leaves the parent floor intact.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.vectors import DatasetDelta, VectorDataset
from repro.similarity.engine import EngineResult
from repro.similarity.streaming import (
    DEFAULT_MEMORY_BUDGET_MB,
    STREAMING_MEASURES,
    HistogramReducer,
    SelectionSketch,
    TopKReducer,
    compute_block_slab,
    prepared_csr,
    resolve_block_rows,
)
from repro.similarity.types import SimilarPair

__all__ = ["DeltaApssBackend", "iter_delta_blocks", "delta_pairs"]


def _check_delta(child: VectorDataset, delta: DatasetDelta,
                 verify_fingerprint: bool = True) -> None:
    if child.n_rows != delta.child_rows:
        raise ValueError(
            f"delta describes {delta.child_rows} rows, dataset has "
            f"{child.n_rows}")
    if not 0 <= delta.parent_rows <= delta.child_rows:
        raise ValueError("delta parent_rows out of range")
    if verify_fingerprint and child.fingerprint() != delta.child_fingerprint:
        raise ValueError(
            "dataset content does not match the delta's child fingerprint; "
            "refusing to extend stale similarity state")


def iter_delta_blocks(child: VectorDataset, delta: DatasetDelta,
                      measure: str = "cosine", *,
                      block_rows: int | None = None,
                      memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
                      verify_fingerprint: bool = True):
    """Yield ``(row_range, slab)`` similarity slabs for the appended rows only.

    Slabs are full-width (every child column), computed by the shared blocked
    kernel, and cover exactly the rows ``delta.new_rows`` — so feeding the
    strict-upper-triangle cells ``column < row`` of each slab into a reducer
    visits every *new* pair exactly once and no old pair ever.
    """
    if measure not in STREAMING_MEASURES:
        raise ValueError(f"unsupported streaming measure {measure!r}; "
                         f"supported: {list(STREAMING_MEASURES)}")
    _check_delta(child, delta, verify_fingerprint)
    if delta.n_new == 0:
        return
    n = child.n_rows
    matrix = prepared_csr(child, measure)
    transposed = matrix.T.tocsc()
    sizes = np.diff(child.indptr).astype(np.float64)
    rows_per_block = resolve_block_rows(n, block_rows, memory_budget_mb)
    for start in range(delta.parent_rows, n, rows_per_block):
        stop = min(start + rows_per_block, n)
        yield range(start, stop), compute_block_slab(
            matrix, transposed, sizes, start, stop, measure)


def delta_pairs(child: VectorDataset, delta: DatasetDelta, threshold: float,
                measure: str = "cosine", *, block_rows: int | None = None,
                memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
                verify_fingerprint: bool = True) -> list[SimilarPair]:
    """Every pair involving an appended row with similarity >= *threshold*.

    Pairs are returned in canonical ``(first, second)`` order with
    ``first < second``; old-vs-old pairs are never touched.
    """
    out_i: list[np.ndarray] = []
    out_j: list[np.ndarray] = []
    out_v: list[np.ndarray] = []
    for rows, slab in iter_delta_blocks(
            child, delta, measure, block_rows=block_rows,
            memory_budget_mb=memory_budget_mb,
            verify_fingerprint=verify_fingerprint):
        row_ids = np.arange(rows.start, rows.stop)
        # column < row: each new pair (old x new and new x new) exactly once,
        # with the *smaller* id as the column.
        keep = (slab >= threshold) & (
            np.arange(slab.shape[1])[None, :] < row_ids[:, None])
        local_i, local_j = np.nonzero(keep)
        out_i.append(local_j)                    # first = smaller id
        out_j.append(row_ids[local_i])           # second = appended row
        out_v.append(slab[local_i, local_j])
    if not out_i:
        return []
    all_i = np.concatenate(out_i)
    all_j = np.concatenate(out_j)
    all_v = np.concatenate(out_v)
    order = np.lexsort((all_j, all_i))
    return [SimilarPair(int(i), int(j), float(v))
            for i, j, v in zip(all_i[order].tolist(), all_j[order].tolist(),
                               all_v[order].tolist())]


class DeltaApssBackend:
    """Extend an exact parent :class:`EngineResult` across an append.

    Parameters
    ----------
    block_rows, memory_budget_mb:
        Per-slab sizing for the delta pass, with ``exact-blocked`` semantics
        (per *worker* when the pass is sharded).
    n_workers:
        Worker processes for the delta pass.  The default ``1`` runs
        in-process — right for small interactive appends, where pool
        dispatch would dominate.  ``> 1`` shards the cross block over the
        same shared pool (and shared-memory transport) as the
        ``sharded-blocked`` backend; ``None`` resolves like the sharded
        backend (``REPRO_APSS_WORKERS``, else CPU count).
    shards_per_worker, partition_strategy, executor_factory, use_shared_memory,
    steal, pin_workers:
        Sharded-pass scheduling knobs with
        :class:`~repro.similarity.backends.sharded.ShardedBlockedBackend`
        semantics — multi-worker ingest claims shards from the same
        work-stealing queue as search (``steal="bound"``/``False`` for the
        static disciplines).  None of them change results — parity across
        worker counts and steal modes is property-tested.
    borrow_slabs:
        Accepted for roster compatibility with the sharded backend's
        ``parity_variants()`` and ignored: the delta pass returns pair
        chunks and reducer state, not streamed slabs, so there is nothing
        to borrow.
    inject_shard_fault:
        Fault-injection hook for the sharded pass (tests): the chosen shard
        raises mid-stream, the extension fails loudly, and — because
        extension never mutates parent state — the parent floor survives.

    Notes
    -----
    The delta pass is exact (blocked Gram kernel), so extending an *exact*
    parent result yields pair sets identical to a from-scratch search on the
    concatenated dataset — the parity the property suite in
    ``tests/store/test_delta.py`` checks for every exact backend in the
    registry and every sharded worker count.  Approximate parents
    (``bayeslsh``) are refused: splicing exact delta pairs into an estimated
    pair set would produce a result matching neither contract.
    """

    def __init__(self, block_rows: int | None = None,
                 memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB, *,
                 n_workers: int | None = 1,
                 shards_per_worker: int = 2,
                 partition_strategy: str = "striped",
                 executor_factory=None,
                 use_shared_memory: bool = True,
                 steal=None,
                 pin_workers: bool = False,
                 borrow_slabs: bool = True,
                 inject_shard_fault: int | None = None) -> None:
        if block_rows is not None and block_rows <= 0:
            raise ValueError("block_rows must be positive")
        if memory_budget_mb <= 0:
            raise ValueError("memory_budget_mb must be positive")
        if shards_per_worker < 1:
            raise ValueError("shards_per_worker must be at least 1")
        from repro.similarity.partition import resolve_worker_count

        self.block_rows = block_rows
        self.memory_budget_mb = float(memory_budget_mb)
        self.n_workers = resolve_worker_count(n_workers)
        self.shards_per_worker = int(shards_per_worker)
        self.partition_strategy = partition_strategy
        self.executor_factory = executor_factory
        self.use_shared_memory = bool(use_shared_memory)
        if steal not in (None, True, False, "bound"):
            raise ValueError(f"steal must be None, True, False or 'bound', "
                             f"got {steal!r}")
        self.steal = steal
        self.pin_workers = bool(pin_workers)
        self.borrow_slabs = bool(borrow_slabs)
        self.inject_shard_fault = inject_shard_fault

    def _sharded(self) -> bool:
        """Whether the delta pass fans over an executor instead of running inline."""
        return (self.n_workers > 1 or self.executor_factory is not None
                or self.inject_shard_fault is not None)

    def _run_sharded(self, child: VectorDataset, delta: DatasetDelta,
                     threshold: float | None, measure: str,
                     reducer_specs: dict | None = None):
        from repro.similarity.backends.sharded import run_delta_shards

        return run_delta_shards(
            child, delta, threshold, measure, reducer_specs=reducer_specs,
            n_workers=self.n_workers, block_rows=self.block_rows,
            memory_budget_mb=self.memory_budget_mb,
            shards_per_worker=self.shards_per_worker,
            partition_strategy=self.partition_strategy,
            executor_factory=self.executor_factory,
            use_shared_memory=self.use_shared_memory,
            steal=self.steal, pin_workers=self.pin_workers,
            inject_shard_fault=self.inject_shard_fault)

    def extend(self, parent: EngineResult, child: VectorDataset,
               delta: DatasetDelta | None = None,
               *, verify_fingerprint: bool = True) -> EngineResult:
        """Merge the append's new pairs into *parent*, at the parent's floor.

        Returns a new :class:`EngineResult` for the child dataset at the
        parent's threshold (the floor a sweep cache filters from); the
        parent result is not mutated, so a failure anywhere in the pass —
        a worker fault, a crash before the store write — leaves the parent
        floor exactly as it was.
        """
        if delta is None:
            delta = child.parent_delta
        if delta is None:
            raise ValueError("child dataset carries no parent delta; pass one "
                             "explicitly or use VectorDataset.append_rows")
        if not parent.exact:
            raise ValueError(
                f"cannot delta-extend approximate backend "
                f"{parent.backend!r} results; recompute instead")
        if parent.n_rows != delta.parent_rows:
            raise ValueError(
                f"parent result covers {parent.n_rows} rows, delta expects "
                f"{delta.parent_rows}")
        _check_delta(child, delta, verify_fingerprint)
        if self._sharded():
            new_pairs, _ = self._run_sharded(child, delta, parent.threshold,
                                             parent.measure)
        else:
            new_pairs = delta_pairs(
                child, delta, parent.threshold, parent.measure,
                block_rows=self.block_rows,
                memory_budget_mb=self.memory_budget_mb,
                verify_fingerprint=False)  # already checked above
        # Parent pairs all precede or interleave with new ones; one stable
        # sort restores canonical (first, second) order for the merged list.
        merged = sorted(parent.pairs + new_pairs,
                        key=lambda p: (p.first, p.second))
        n = child.n_rows
        d = delta.n_new
        return EngineResult(
            backend=parent.backend, measure=parent.measure,
            threshold=parent.threshold, n_rows=n, pairs=merged,
            exact=True, seconds=0.0,
            n_candidates=d * delta.parent_rows + d * (d - 1) // 2,
            n_pruned=0,
            details={"delta": {"parent_rows": delta.parent_rows,
                               "new_rows": d,
                               "new_pairs": len(new_pairs),
                               "n_workers": self.n_workers}})

    def extend_reducers(self, child: VectorDataset,
                        delta: DatasetDelta | None = None,
                        measure: str = "cosine", *,
                        histogram=None, top_k=None, selection=None,
                        verify_fingerprint: bool = True) -> None:
        """Feed the append's new similarity values into mergeable reducers.

        Each reducer (``HistogramReducer``, ``TopKReducer``,
        ``SelectionSketch`` — any subset) is updated in place with every
        new pair's value exactly once, so reducer state restored from the
        store stays equal to a from-scratch pass over the child dataset.
        When the backend is sharded, each shard accumulates local reducers
        and their states fold into the caller's through ``merge()`` — the
        commutativity of the merge seam is what makes the result identical
        for every worker count and completion order.
        """
        if delta is None:
            delta = child.parent_delta
        if delta is None:
            raise ValueError("child dataset carries no parent delta")
        if self._sharded():
            _check_delta(child, delta, verify_fingerprint)
            specs: dict = {}
            if histogram is not None:
                specs["histogram"] = histogram.edges
            if selection is not None:
                specs["selection"] = selection.edges
            if top_k is not None:
                specs["top_k"] = top_k.k
            _, states = self._run_sharded(child, delta, None, measure,
                                          reducer_specs=specs)
            for state in states.get("histogram", ()):
                histogram.merge(HistogramReducer.from_state(state))
            for state in states.get("selection", ()):
                selection.merge(SelectionSketch.from_state(state))
            for state in states.get("top_k", ()):
                top_k.merge(TopKReducer.from_state(state))
            return
        for rows, slab in iter_delta_blocks(
                child, delta, measure, block_rows=self.block_rows,
                memory_budget_mb=self.memory_budget_mb,
                verify_fingerprint=verify_fingerprint):
            row_ids = np.arange(rows.start, rows.stop)
            keep = np.arange(slab.shape[1])[None, :] < row_ids[:, None]
            local_i, local_j = np.nonzero(keep)
            values = slab[local_i, local_j]
            if histogram is not None:
                histogram.update(values)
            if selection is not None:
                selection.update(values)
            if top_k is not None:
                top_k.update(local_j, row_ids[local_i], values)
