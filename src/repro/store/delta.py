"""Incremental APSS: extend similarity state over appended rows only.

An append of ``d`` rows to an ``n``-row dataset changes exactly the pairs
that touch a new row: the ``d x n`` new-vs-old cross block plus the
``d x d / 2`` new-vs-new triangle.  Everything previously computed — pair
sets, reducer state, per-pair session knowledge — remains valid, because
similarity is a pure function of the two rows involved.

:class:`DeltaApssBackend` exploits that: it runs the same blocked Gram
kernel as ``exact-blocked`` (:func:`repro.similarity.streaming.compute_block_slab`)
restricted to the appended row range, extracts the new pairs at the parent
result's threshold floor, and merges them into the parent's pair list in
canonical ``(first, second)`` order.  The cost is O(d * n) instead of the
O(n^2) of a from-scratch search, which is what keeps the interactive loop
interactive on append-only datasets.

Every extension is fingerprint-checked: the parent result must describe
exactly ``delta.parent_rows`` rows and the child dataset must hash to
``delta.child_fingerprint``, so stale or mismatched state is rejected
loudly rather than merged silently.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.vectors import DatasetDelta, VectorDataset
from repro.similarity.engine import EngineResult
from repro.similarity.streaming import (
    DEFAULT_MEMORY_BUDGET_MB,
    STREAMING_MEASURES,
    compute_block_slab,
    prepared_csr,
    resolve_block_rows,
)
from repro.similarity.types import SimilarPair

__all__ = ["DeltaApssBackend", "iter_delta_blocks", "delta_pairs"]


def _check_delta(child: VectorDataset, delta: DatasetDelta,
                 verify_fingerprint: bool = True) -> None:
    if child.n_rows != delta.child_rows:
        raise ValueError(
            f"delta describes {delta.child_rows} rows, dataset has "
            f"{child.n_rows}")
    if not 0 <= delta.parent_rows <= delta.child_rows:
        raise ValueError("delta parent_rows out of range")
    if verify_fingerprint and child.fingerprint() != delta.child_fingerprint:
        raise ValueError(
            "dataset content does not match the delta's child fingerprint; "
            "refusing to extend stale similarity state")


def iter_delta_blocks(child: VectorDataset, delta: DatasetDelta,
                      measure: str = "cosine", *,
                      block_rows: int | None = None,
                      memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
                      verify_fingerprint: bool = True):
    """Yield ``(row_range, slab)`` similarity slabs for the appended rows only.

    Slabs are full-width (every child column), computed by the shared blocked
    kernel, and cover exactly the rows ``delta.new_rows`` — so feeding the
    strict-upper-triangle cells ``column < row`` of each slab into a reducer
    visits every *new* pair exactly once and no old pair ever.
    """
    if measure not in STREAMING_MEASURES:
        raise ValueError(f"unsupported streaming measure {measure!r}; "
                         f"supported: {list(STREAMING_MEASURES)}")
    _check_delta(child, delta, verify_fingerprint)
    if delta.n_new == 0:
        return
    n = child.n_rows
    matrix = prepared_csr(child, measure)
    transposed = matrix.T.tocsc()
    sizes = np.diff(child.indptr).astype(np.float64)
    rows_per_block = resolve_block_rows(n, block_rows, memory_budget_mb)
    for start in range(delta.parent_rows, n, rows_per_block):
        stop = min(start + rows_per_block, n)
        yield range(start, stop), compute_block_slab(
            matrix, transposed, sizes, start, stop, measure)


def delta_pairs(child: VectorDataset, delta: DatasetDelta, threshold: float,
                measure: str = "cosine", *, block_rows: int | None = None,
                memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
                verify_fingerprint: bool = True) -> list[SimilarPair]:
    """Every pair involving an appended row with similarity >= *threshold*.

    Pairs are returned in canonical ``(first, second)`` order with
    ``first < second``; old-vs-old pairs are never touched.
    """
    out_i: list[np.ndarray] = []
    out_j: list[np.ndarray] = []
    out_v: list[np.ndarray] = []
    for rows, slab in iter_delta_blocks(
            child, delta, measure, block_rows=block_rows,
            memory_budget_mb=memory_budget_mb,
            verify_fingerprint=verify_fingerprint):
        row_ids = np.arange(rows.start, rows.stop)
        # column < row: each new pair (old x new and new x new) exactly once,
        # with the *smaller* id as the column.
        keep = (slab >= threshold) & (
            np.arange(slab.shape[1])[None, :] < row_ids[:, None])
        local_i, local_j = np.nonzero(keep)
        out_i.append(local_j)                    # first = smaller id
        out_j.append(row_ids[local_i])           # second = appended row
        out_v.append(slab[local_i, local_j])
    if not out_i:
        return []
    all_i = np.concatenate(out_i)
    all_j = np.concatenate(out_j)
    all_v = np.concatenate(out_v)
    order = np.lexsort((all_j, all_i))
    return [SimilarPair(int(i), int(j), float(v))
            for i, j, v in zip(all_i[order].tolist(), all_j[order].tolist(),
                               all_v[order].tolist())]


class DeltaApssBackend:
    """Extend an exact parent :class:`EngineResult` across an append.

    Parameters
    ----------
    block_rows, memory_budget_mb:
        Per-slab sizing for the delta pass, with ``exact-blocked`` semantics.

    Notes
    -----
    The delta pass is exact (blocked Gram kernel), so extending an *exact*
    parent result yields pair sets identical to a from-scratch search on the
    concatenated dataset — the parity the property suite in
    ``tests/store/test_delta.py`` checks for every exact backend in the
    registry.  Approximate parents (``bayeslsh``) are refused: splicing exact
    delta pairs into an estimated pair set would produce a result matching
    neither contract.
    """

    def __init__(self, block_rows: int | None = None,
                 memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB) -> None:
        if block_rows is not None and block_rows <= 0:
            raise ValueError("block_rows must be positive")
        if memory_budget_mb <= 0:
            raise ValueError("memory_budget_mb must be positive")
        self.block_rows = block_rows
        self.memory_budget_mb = float(memory_budget_mb)

    def extend(self, parent: EngineResult, child: VectorDataset,
               delta: DatasetDelta | None = None,
               *, verify_fingerprint: bool = True) -> EngineResult:
        """Merge the append's new pairs into *parent*, at the parent's floor.

        Returns a new :class:`EngineResult` for the child dataset at the
        parent's threshold (the floor a sweep cache filters from); the
        parent result is not mutated.
        """
        if delta is None:
            delta = child.parent_delta
        if delta is None:
            raise ValueError("child dataset carries no parent delta; pass one "
                             "explicitly or use VectorDataset.append_rows")
        if not parent.exact:
            raise ValueError(
                f"cannot delta-extend approximate backend "
                f"{parent.backend!r} results; recompute instead")
        if parent.n_rows != delta.parent_rows:
            raise ValueError(
                f"parent result covers {parent.n_rows} rows, delta expects "
                f"{delta.parent_rows}")
        _check_delta(child, delta, verify_fingerprint)
        new_pairs = delta_pairs(
            child, delta, parent.threshold, parent.measure,
            block_rows=self.block_rows,
            memory_budget_mb=self.memory_budget_mb,
            verify_fingerprint=False)  # already checked above
        # Parent pairs all precede or interleave with new ones; one stable
        # sort restores canonical (first, second) order for the merged list.
        merged = sorted(parent.pairs + new_pairs,
                        key=lambda p: (p.first, p.second))
        n = child.n_rows
        d = delta.n_new
        return EngineResult(
            backend=parent.backend, measure=parent.measure,
            threshold=parent.threshold, n_rows=n, pairs=merged,
            exact=True, seconds=0.0,
            n_candidates=d * delta.parent_rows + d * (d - 1) // 2,
            n_pruned=0,
            details={"delta": {"parent_rows": delta.parent_rows,
                               "new_rows": d,
                               "new_pairs": len(new_pairs)}})

    def extend_reducers(self, child: VectorDataset,
                        delta: DatasetDelta | None = None,
                        measure: str = "cosine", *,
                        histogram=None, top_k=None, selection=None,
                        verify_fingerprint: bool = True) -> None:
        """Feed the append's new similarity values into mergeable reducers.

        Each reducer (``HistogramReducer``, ``TopKReducer``,
        ``SelectionSketch`` — any subset) is updated in place with every
        new pair's value exactly once, so reducer state restored from the
        store stays equal to a from-scratch pass over the child dataset.
        """
        if delta is None:
            delta = child.parent_delta
        if delta is None:
            raise ValueError("child dataset carries no parent delta")
        for rows, slab in iter_delta_blocks(
                child, delta, measure, block_rows=self.block_rows,
                memory_budget_mb=self.memory_budget_mb,
                verify_fingerprint=verify_fingerprint):
            row_ids = np.arange(rows.start, rows.stop)
            keep = np.arange(slab.shape[1])[None, :] < row_ids[:, None]
            local_i, local_j = np.nonzero(keep)
            values = slab[local_i, local_j]
            if histogram is not None:
                histogram.update(values)
            if selection is not None:
                selection.update(values)
            if top_k is not None:
                top_k.update(local_j, row_ids[local_i], values)
