"""Persistent + incremental APSS knowledge store.

Four pieces:

* :class:`~repro.store.similarity_store.SimilarityStore` — the disk-backed,
  versioned, checksummed store for pair sets, reducer state, sketches and
  session knowledge (see its module docstring for the durability contract);
* :class:`~repro.store.delta.DeltaApssBackend` — the incremental-ingest
  path extending stored similarity state over
  :meth:`~repro.datasets.vectors.VectorDataset.append_rows` deltas in
  O(new x total) instead of O(total^2);
* :mod:`repro.store.pairsets` — the factorised pair-set representation
  (clique summaries + bipartite cross blocks + exact residual) behind the
  ``pairs-factorized`` entry kind: large clustered floors persist at a
  fraction of raw bytes and decompress lazily, bit-identically, with zero
  kernel work;
* the MVCC lineage layer (:mod:`repro.store.manifest`,
  :mod:`repro.store.gc`) — versioned manifests, snapshot-isolated reads
  (:class:`~repro.store.similarity_store.StoreSnapshot`), delta-chain
  compaction, pin-aware garbage collection and the ``fsck`` invariant
  auditor behind ``tools/fsck_store.py``.

``CachedApssEngine`` (spill/restore + delta extension) and ``PlasmaSession``
(cross-process resume) wire these in behind their existing APIs.
"""

from repro.store.delta import DeltaApssBackend, delta_pairs, iter_delta_blocks
from repro.store.gc import (
    CompactionStats,
    FsckReport,
    GcStats,
    collect_garbage,
    compact,
    fsck,
    lineage_bytes,
)
from repro.store.pairsets import (
    MAX_FACTORIZE_RATIO,
    MIN_FACTORIZE_PAIRS,
    FactorizedPairSet,
    StoredPairSet,
    factorize_result,
    maybe_factorize,
)
from repro.store.manifest import (
    FloorRef,
    GenerationRecord,
    LineageLog,
    Manifest,
    Pin,
    floor_axis,
    lineage_entry_key,
)
from repro.store.similarity_store import (
    SCHEMA_VERSION,
    STORE_ENV_VAR,
    SimilarityStore,
    StoreAttachError,
    StoreSnapshot,
)

__all__ = [
    "SimilarityStore",
    "StoreSnapshot",
    "StoreAttachError",
    "STORE_ENV_VAR",
    "SCHEMA_VERSION",
    "DeltaApssBackend",
    "delta_pairs",
    "iter_delta_blocks",
    "Manifest",
    "GenerationRecord",
    "FloorRef",
    "LineageLog",
    "Pin",
    "floor_axis",
    "lineage_entry_key",
    "CompactionStats",
    "GcStats",
    "FsckReport",
    "compact",
    "collect_garbage",
    "lineage_bytes",
    "fsck",
    "FactorizedPairSet",
    "StoredPairSet",
    "MAX_FACTORIZE_RATIO",
    "MIN_FACTORIZE_PAIRS",
    "factorize_result",
    "maybe_factorize",
]
