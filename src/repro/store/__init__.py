"""Persistent + incremental APSS knowledge store.

Two pieces:

* :class:`~repro.store.similarity_store.SimilarityStore` — the disk-backed,
  versioned, checksummed store for pair sets, reducer state, sketches and
  session knowledge (see its module docstring for the durability contract);
* :class:`~repro.store.delta.DeltaApssBackend` — the incremental-ingest
  path extending stored similarity state over
  :meth:`~repro.datasets.vectors.VectorDataset.append_rows` deltas in
  O(new x total) instead of O(total^2).

``CachedApssEngine`` (spill/restore + delta extension) and ``PlasmaSession``
(cross-process resume) wire these in behind their existing APIs.
"""

from repro.store.delta import DeltaApssBackend, delta_pairs, iter_delta_blocks
from repro.store.similarity_store import (
    SCHEMA_VERSION,
    STORE_ENV_VAR,
    SimilarityStore,
)

__all__ = [
    "SimilarityStore",
    "STORE_ENV_VAR",
    "SCHEMA_VERSION",
    "DeltaApssBackend",
    "delta_pairs",
    "iter_delta_blocks",
]
