"""Delta-chain compaction and garbage collection for the versioned store.

Two maintenance passes keep a lineage-bearing
:class:`~repro.store.similarity_store.SimilarityStore` from growing without
bound, both crash-safe by construction:

* :func:`compact` folds every delta chain (parent → append → append …) into
  a consolidated *full* floor on the chain's tip: the chain's entries are
  merged by pure pair arithmetic — the inverse of
  :meth:`~repro.store.delta.DeltaApssBackend.extend`, zero kernel
  invocations — written as new immutable entries, and a successor manifest
  is published in which the folded ancestors no longer appear.  Ordering
  guarantees recovery: consolidated entries land *before* the manifest
  pointer flips, so a crash in between leaves only unreferenced
  (collectable) files and the store reopens on the pre-compaction manifest.

* :func:`collect_garbage` unlinks everything no snapshot pins: manifest
  versions other than ``CURRENT`` with no live lease, then every
  ``lineage/`` entry referenced by no retained manifest.  Manifests are
  condemned *before* entries, so a crash mid-GC can orphan entry files
  (reclaimed by the next pass) but can never leave a retained manifest
  pointing at a deleted entry.

Both passes run under the exclusive lineage lock
(:meth:`~repro.store.manifest.LineageLog.lock`), which also serialises them
against publishes and snapshot pinning; the ``pause_*`` arguments are
fault-injection seams (in the spirit of ``inject_shard_fault``) that hold
the pass inside its crash window so the SIGKILL tests can hit it
deterministically.

:func:`fsck` is the invariant checker behind ``tools/fsck_store.py``: it
audits the manifest/entry graph (dangling references, unresolvable floors,
corrupt entries, orphans, stale pins) and is the on-disk leak oracle the
crash battery asserts with.  Factorised entries (the ``pairs-factorized``
kind and ``encoding: factorized`` lineage floors, see
:mod:`repro.store.pairsets`) get an extra *structural* decode on top of
the checksum: an entry whose bytes are intact but whose part arrays are
inconsistent is reported too, because the read path will evict it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.store.manifest import (
    GenerationRecord,
    LineageLog,
    Manifest,
    lineage_entry_key,
)

__all__ = ["CompactionStats", "GcStats", "FsckReport", "compact",
           "collect_garbage", "lineage_bytes", "fsck"]


@dataclass(frozen=True)
class CompactionStats:
    """Outcome of one :func:`compact` pass."""

    manifest_version: int
    chains_folded: int
    floors_consolidated: int
    generations_dropped: int

    @property
    def unchanged(self) -> bool:
        """Whether the pass found nothing to fold."""
        return self.chains_folded == 0


@dataclass(frozen=True)
class GcStats:
    """Outcome of one :func:`collect_garbage` pass."""

    current_version: int
    retained_versions: tuple[int, ...]
    manifests_removed: int
    files_removed: int
    bytes_reclaimed: int
    compacted: bool = False


def lineage_bytes(store) -> int:
    """On-disk bytes held by the lineage: entries plus manifest files."""
    total = 0
    for directory in (Path(store.root) / "lineage", store.lineage.dir):
        if directory.is_dir():
            total += sum(path.stat().st_size for path in directory.iterdir()
                         if path.is_file())
    return total


def compact(store, *, pause_before_publish: float = 0.0) -> CompactionStats:
    """Fold every resolvable delta chain into a consolidated tip floor.

    Pure merge work: chain floors are read, merged in canonical order and
    written as new ``full`` entries for each tip — no similarity kernel
    runs.  The successor manifest retains only the tips (plus any chain
    whose floors could not be resolved, which is left untouched); folded
    ancestors stay readable through previously pinned manifest versions
    until :func:`collect_garbage` reclaims them.

    ``pause_before_publish`` (seconds) is a fault-injection seam: it sleeps
    between writing the consolidated entries and publishing the successor
    manifest, the window in which a crash must recover to the
    pre-compaction manifest.
    """
    log: LineageLog = store.lineage
    with log.lock():
        current = log.current()
        if not current.generations:
            return CompactionStats(current.version, 0, 0, 0)
        keep: dict[str, GenerationRecord] = {}
        folds: list[tuple[GenerationRecord, dict, list[str]]] = []
        for tip in current.tips():
            chain = current.chain(tip.fingerprint)
            if len(chain) <= 1:
                keep[tip.fingerprint] = tip
                continue
            consolidated: dict = {}
            resolvable = True
            for axis, ref in tip.floors.items():
                if ref.kind == "full":
                    consolidated[axis] = ref
                    continue
                merged = store._resolve_manifest_floor(
                    current, tip.fingerprint, axis)
                if merged is None:
                    resolvable = False
                    break
                consolidated[axis] = merged  # EngineResult: write at publish
            if not resolvable:
                # A broken or unreadable chain is fsck's business, not
                # compaction's: leave it exactly as it is.
                for record in chain:
                    keep[record.fingerprint] = record
                continue
            folds.append((tip, consolidated,
                          [r.fingerprint for r in chain[:-1]]))
        if not folds:
            return CompactionStats(current.version, 0, 0, 0)
        # Ancestors of kept chains must survive even when another (folded)
        # chain shared them.
        needed = set(keep)
        for record in list(keep.values()):
            needed.update(r.fingerprint
                          for r in current.chain(record.fingerprint))
        successor_version = current.version + 1
        floors_written = 0
        new_records: list[GenerationRecord] = [
            record for record in current.generations
            if record.fingerprint in needed]
        for tip, consolidated, _ancestors in folds:
            floors = {}
            for axis, ref_or_result in consolidated.items():
                if not hasattr(ref_or_result, "pairs"):
                    floors[axis] = ref_or_result  # already a full FloorRef
                    continue
                floors[axis] = store._write_lineage_floor(
                    lineage_entry_key(successor_version, tip.fingerprint,
                                      axis),
                    ref_or_result, kind="full", sequence=successor_version)
                floors_written += 1
            new_records.append(GenerationRecord(
                fingerprint=tip.fingerprint, parent=None,
                n_rows=tip.n_rows, sequence=successor_version,
                floors=floors))
        if pause_before_publish:
            time.sleep(pause_before_publish)
        dropped = len(current.generations) - len(new_records)
        successor = current.replace(new_records)
        log._write_manifest(successor)
        log._point_current(successor.version)
        return CompactionStats(successor.version, len(folds),
                               floors_written, dropped)


def collect_garbage(store, *, pause_between_phases: float = 0.0,
                    max_lineage_bytes: int | None = None) -> GcStats:
    """Unlink manifests and lineage entries no snapshot pins.

    Retains ``CURRENT`` plus every version with a live pin lease (stale
    leases from killed processes are pruned first).  Condemned manifest
    files are removed *before* the entries they referenced, so a crash
    mid-pass can only orphan entry files — reclaimed by the next pass —
    never dangle a retained manifest.

    ``max_lineage_bytes`` makes the pass size-bounded: when the lineage
    exceeds the budget, :func:`compact` runs first so superseded delta
    chains become collectable in the same call.  ``pause_between_phases``
    (seconds) is the crash-window fault-injection seam.
    """
    compacted = False
    if (max_lineage_bytes is not None
            and lineage_bytes(store) > max_lineage_bytes):
        compact(store)
        compacted = True
    log: LineageLog = store.lineage
    with log.lock():
        current_version = log.current_version()
        pinned = log.live_pins()
        retained = {v for v in pinned if log.manifest_path(v).is_file()}
        if current_version:
            retained.add(current_version)
        referenced: set[str] = set()
        for version in sorted(retained):
            try:
                referenced |= log.read(version).files()
            except (OSError, ValueError):
                if version == current_version:
                    raise  # a corrupt CURRENT manifest is never silently GC'd
                retained.discard(version)
        manifests_removed = 0
        bytes_reclaimed = 0
        for version in log.versions():
            if version in retained:
                continue
            path = log.manifest_path(version)
            bytes_reclaimed += _size(path)
            if _unlink(path):
                manifests_removed += 1
        if pause_between_phases:
            time.sleep(pause_between_phases)
        files_removed = 0
        lineage_dir = Path(store.root) / "lineage"
        if lineage_dir.is_dir():
            for path in sorted(lineage_dir.iterdir()):
                stray_tmp = path.name.startswith(".tmp-")
                unreferenced = (path.suffix == ".entry"
                                and f"lineage/{path.name}" not in referenced)
                if stray_tmp or unreferenced:
                    bytes_reclaimed += _size(path)
                    if _unlink(path):
                        files_removed += 1
        return GcStats(current_version=current_version,
                       retained_versions=tuple(sorted(retained)),
                       manifests_removed=manifests_removed,
                       files_removed=files_removed,
                       bytes_reclaimed=bytes_reclaimed,
                       compacted=compacted)


def _size(path: Path) -> int:
    try:
        return path.stat().st_size
    except OSError:
        return 0


def _unlink(path: Path) -> bool:
    try:
        path.unlink()
        return True
    except OSError:
        return False


# --------------------------------------------------------------------- #
# Invariant checking (the on-disk leak oracle)
# --------------------------------------------------------------------- #

@dataclass
class FsckReport:
    """Outcome of one :func:`fsck` audit.

    ``errors`` are broken invariants (dangling references, corrupt or
    unresolvable state); ``warnings`` are collectable debris (orphaned
    entries, stray temp files, stale pins) that the next
    :func:`collect_garbage` pass reclaims.
    """

    root: str
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every hard invariant held."""
        return not self.errors


def _audit_floor_entries(root: Path, report: FsckReport) -> None:
    """Audit the mutable floor dirs (``pairs``/``pairs-factorized``).

    These entries are keyed by digest (the key itself is unrecoverable
    from the file name), so the audit checks everything *but* the lookup
    key: magic, header, schema, payload length, checksum, npz decode —
    and, for factorised entries, the structural part-array validation the
    read path applies.  Failures are warnings: the store evicts such an
    entry on first read and recomputes, so they are self-healing debris,
    not broken invariants.
    """
    import hashlib
    import io
    import json

    import numpy as np

    from repro.store.pairsets import FactorizedPairSet
    from repro.store.similarity_store import _MAGIC, SCHEMA_VERSION

    def validate(path: Path, kind: str) -> None:
        raw = path.read_bytes()
        if not raw.startswith(_MAGIC):
            raise ValueError("bad magic")
        header_end = raw.index(b"\n", len(_MAGIC))
        try:
            header = json.loads(raw[len(_MAGIC):header_end])
        except json.JSONDecodeError as exc:
            raise ValueError(f"unparsable header: {exc}") from exc
        payload = raw[header_end + 1:]
        if header.get("schema") != SCHEMA_VERSION:
            raise ValueError(f"schema {header.get('schema')!r}")
        if header.get("kind") != kind:
            raise ValueError(f"recorded kind {header.get('kind')!r} != "
                             f"{kind!r}")
        if len(payload) != header.get("payload_bytes"):
            raise ValueError("payload truncated")
        if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
            raise ValueError("payload checksum mismatch")
        try:
            with np.load(io.BytesIO(payload)) as archive:
                arrays = {name: archive[name] for name in archive.files}
        except Exception as exc:
            raise ValueError(f"undecodable payload: {exc}") from exc
        meta = header.get("meta", {})
        if kind == "pairs-factorized":
            FactorizedPairSet.from_arrays(
                arrays, threshold=float(meta.get("threshold", 0.0)))

    checked = 0
    invalid = 0
    for kind in ("pairs", "pairs-factorized"):
        directory = root / kind
        if not directory.is_dir():
            continue
        for path in sorted(directory.glob("*.entry")):
            checked += 1
            try:
                validate(path, kind)
            except (OSError, TypeError, ValueError) as exc:
                invalid += 1
                report.warnings.append(
                    f"{kind} entry {path.name} fails validation ({exc}); "
                    f"it will be evicted and recomputed on next read")
    report.stats["floor_entries_checked"] = checked
    report.stats["floor_entries_invalid"] = invalid


def fsck(root, *, strict_orphans: bool = False) -> FsckReport:
    """Audit the manifest/entry graph of the store at *root*.

    Invariants checked (violations land in ``report.errors``):

    * ``CURRENT`` points at a manifest file that exists and parses;
    * every entry file referenced by any on-disk manifest exists and
      validates (magic, schema, checksum, recorded key);
    * every delta floor in the current manifest resolves through its parent
      chain to a full floor.

    Collectable debris lands in ``report.warnings`` (promoted to errors
    with ``strict_orphans=True``, the post-GC contract): orphaned lineage
    entries no manifest references, stray temp files, stale pin leases —
    plus corrupt/truncated/structurally-invalid floor entries in the
    mutable ``pairs``/``pairs-factorized`` dirs, which are warnings (not
    errors) because the read path self-heals them: evict and recompute,
    never serve wrong answers.
    """
    from repro.store.similarity_store import SimilarityStore

    report = FsckReport(root=str(root))
    root = Path(root)
    if not root.is_dir():
        report.errors.append(f"store root {root} does not exist")
        return report
    store = SimilarityStore(root)
    _audit_floor_entries(root, report)
    log = store.lineage
    versions = log.versions()
    current_version = log.current_version()
    report.stats.update(manifest_versions=versions,
                        current_version=current_version)
    if not versions and current_version == 0:
        return report  # no lineage: nothing to audit
    if current_version == 0:
        report.errors.append("manifest files exist but CURRENT is missing "
                             "or unreadable")
        return report
    manifests: dict[int, Manifest] = {}
    for version in versions:
        try:
            manifests[version] = log.read(version)
        except (OSError, ValueError) as exc:
            report.errors.append(f"manifest version {version} is "
                                 f"unreadable: {exc}")
    if current_version not in manifests:
        report.errors.append(f"CURRENT points at version {current_version}, "
                             f"which is missing or unreadable")
        return report
    referenced: set[str] = set()
    for version, manifest in sorted(manifests.items()):
        for record in manifest.generations:
            for axis, ref in record.floors.items():
                referenced.add(ref.file)
                path = root / ref.file
                if not path.is_file():
                    report.errors.append(
                        f"manifest v{version} references missing entry "
                        f"{ref.file} (fingerprint {record.fingerprint[:12]})")
                    continue
                key = lineage_entry_key(ref.sequence, record.fingerprint,
                                        axis)
                try:
                    arrays, meta = store.read_entry_file(path, "lineage",
                                                         key)
                except ValueError as exc:
                    report.errors.append(
                        f"entry {ref.file} referenced by manifest "
                        f"v{version} fails validation: {exc}")
                    continue
                if meta.get("encoding") == "factorized":
                    from repro.store.pairsets import FactorizedPairSet

                    try:
                        FactorizedPairSet.from_arrays(
                            arrays,
                            threshold=float(meta.get("threshold", 0.0)))
                    except (TypeError, ValueError) as exc:
                        report.errors.append(
                            f"factorized entry {ref.file} referenced by "
                            f"manifest v{version} fails structural decode: "
                            f"{exc}")
    current = manifests[current_version]
    resolved = 0
    for record in current.generations:
        for axis, ref in record.floors.items():
            if ref.kind != "delta":
                continue
            if store._resolve_manifest_floor(current, record.fingerprint,
                                             axis) is None:
                report.errors.append(
                    f"delta floor for fingerprint "
                    f"{record.fingerprint[:12]} axis {axis} does not "
                    f"resolve to a full floor in the current manifest")
            else:
                resolved += 1
    report.stats["resolved_delta_floors"] = resolved
    orphans: list[str] = []
    strays: list[str] = []
    lineage_dir = root / "lineage"
    if lineage_dir.is_dir():
        for path in sorted(lineage_dir.iterdir()):
            if path.name.startswith(".tmp-"):
                strays.append(path.name)
            elif (path.suffix == ".entry"
                    and f"lineage/{path.name}" not in referenced):
                orphans.append(path.name)
    sink = report.errors if strict_orphans else report.warnings
    for name in orphans:
        sink.append(f"orphaned lineage entry {name} (no manifest "
                    f"references it)")
    for name in strays:
        sink.append(f"stray temp file lineage/{name}")
    with log.lock():
        live = log.live_pins(prune_stale=False)
    report.stats.update(orphans=len(orphans), strays=len(strays),
                        live_pins=sorted(live),
                        referenced_entries=len(referenced))
    return report
