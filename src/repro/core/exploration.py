"""Threshold-space exploration helpers: knees, inflection points, suggestions.

The interactive scenario of Section 2.2.2 has the user notice the "knee" in
the cumulative pair-count curve and probe there next.  These helpers detect
such knees and other shape changes (phase shifts, peaks, plateaus) so the
session object can propose the next threshold to probe — and so the LAM
compressibility curves of Section 4.6 can be scanned for interesting regions
the same way.
"""

from __future__ import annotations

import numpy as np

__all__ = ["find_knee", "find_inflection_points", "suggest_next_threshold"]


def _normalize(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=float)
    span = values.max() - values.min()
    if span == 0:
        return np.zeros_like(values)
    return (values - values.min()) / span


def find_knee(xs, ys) -> float:
    """The x position of the knee of a monotone curve (Kneedle-style).

    The knee is the point of maximum distance between the normalised curve and
    the straight line joining its endpoints.  Works for both increasing and
    decreasing curves.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if len(xs) != len(ys) or len(xs) < 3:
        raise ValueError("need at least three (x, y) points")
    order = np.argsort(xs)
    xs, ys = xs[order], ys[order]
    nx, ny = _normalize(xs), _normalize(ys)
    # Distance from each point to the chord between the endpoints.
    chord = ny[-1] - ny[0]
    line = ny[0] + chord * nx
    distances = np.abs(ny - line)
    return float(xs[int(np.argmax(distances))])


def find_inflection_points(xs, ys, min_relative_change: float = 0.15) -> list[float]:
    """x positions where the slope of the curve changes materially.

    A point is reported when the discrete slope on its two sides differs by at
    least *min_relative_change* of the curve's maximum absolute slope.  These
    are the "phase shifts" the compressibility scans look for.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if len(xs) < 3:
        return []
    order = np.argsort(xs)
    xs, ys = xs[order], ys[order]
    dx = np.diff(xs)
    dx[dx == 0] = 1e-12
    slopes = np.diff(ys) / dx
    max_slope = np.max(np.abs(slopes))
    if max_slope == 0:
        return []
    points = []
    for i in range(1, len(slopes)):
        change = abs(slopes[i] - slopes[i - 1]) / max_slope
        if change >= min_relative_change:
            points.append(float(xs[i]))
    return points


def suggest_next_threshold(thresholds, expected_counts, probed) -> float:
    """Suggest the next threshold to probe given the current estimate curve.

    Preference order: the knee of the cumulative curve if it has not been
    probed yet; otherwise the unprobed inflection point farthest from any
    probed threshold; otherwise the midpoint of the largest unprobed gap.
    """
    thresholds = np.asarray(thresholds, dtype=float)
    expected_counts = np.asarray(expected_counts, dtype=float)
    probed = sorted(float(t) for t in probed)

    def is_unprobed(t: float, tolerance: float = 0.025) -> bool:
        return all(abs(t - p) > tolerance for p in probed)

    knee = find_knee(thresholds, expected_counts)
    if is_unprobed(knee):
        return knee

    candidates = [t for t in find_inflection_points(thresholds, expected_counts)
                  if is_unprobed(t)]
    if candidates:
        def distance_to_probed(t: float) -> float:
            return min(abs(t - p) for p in probed) if probed else 1.0
        return max(candidates, key=distance_to_probed)

    # Fall back to bisecting the largest gap between probed thresholds
    # (including the ends of the grid).  Probes outside the grid would make
    # the raw anchor list unsorted — negative gaps, suggestions beyond the
    # grid — so clamp them in and sort before bisecting.
    lower, upper = float(thresholds.min()), float(thresholds.max())
    clamped = (min(max(p, lower), upper) for p in probed)
    anchors = sorted({lower, upper, *clamped})
    if len(anchors) < 2:
        return lower
    gaps = [(anchors[i + 1] - anchors[i], i) for i in range(len(anchors) - 1)]
    width, index = max(gaps)
    return float(anchors[index] + width / 2.0)
