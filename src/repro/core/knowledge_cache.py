"""The PLASMA-HD knowledge cache.

BayesLSH, as originally proposed, throws away the per-pair hash-match counts
and similarity estimates it computes while verifying candidates.  PLASMA-HD's
key enhancement is to *memoize* that information (Section 2.2.1):

* for every candidate pair evaluated — whether retained or pruned — the number
  of hashes compared, the number that matched, the maximum a posteriori
  similarity estimate and its variance are recorded;
* later probes at other thresholds resume each pair's evaluation from the
  cached (hashes, matches) state instead of starting from scratch, which is
  where the 16–29% interactive speedups of Figure 2.10 come from;
* the cached estimate distribution doubles as an empirical prior for new
  probes and as the data behind the Cumulative APSS Graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CachedPair", "KnowledgeCache"]


@dataclass
class CachedPair:
    """Memoized evaluation state for one candidate pair."""

    first: int
    second: int
    n_hashes: int
    matches: int
    estimate: float
    variance: float

    @property
    def pair(self) -> tuple[int, int]:
        """The cached ``(first, second)`` row-index pair."""
        return (self.first, self.second)


class KnowledgeCache:
    """Stores per-pair BayesLSH evaluation state across probes.

    The cache exposes the two hooks :class:`repro.lsh.bayeslsh.BayesLSH`
    understands — ``lookup`` and ``record`` — plus aggregate views used by the
    cumulative APSS graph and by prior construction.
    """

    def __init__(self) -> None:
        self._pairs: dict[tuple[int, int], CachedPair] = {}
        self.probed_thresholds: list[float] = []
        self.hashes_saved = 0

    # ------------------------------------------------------------------ #
    # BayesLSH hooks
    # ------------------------------------------------------------------ #
    def lookup(self, pair: tuple[int, int]) -> tuple[int, int] | None:
        """Return cached ``(n_hashes, matches)`` for *pair*, or ``None``.

        Pairs recorded without hash evidence (``n_hashes == 0``, e.g. exact
        delta merges via :meth:`merge_exact_pairs`) are invisible here: they
        inform the aggregate views, but BayesLSH resumption must only ever
        trust real hash-comparison state.
        """
        cached = self._pairs.get(self._key(pair))
        if cached is None or cached.n_hashes <= 0:
            return None
        self.hashes_saved += cached.n_hashes
        return (cached.n_hashes, cached.matches)

    def record(self, evaluation) -> None:
        """Record a :class:`~repro.lsh.bayeslsh.PairEvaluation`.

        Only ever *upgrades* the cached state: an evaluation based on fewer
        hashes than what is already cached is ignored.  *Exact* entries
        (similarity known with zero variance, marked by ``n_hashes == 0`` —
        see :meth:`merge_exact_pairs`) outrank every estimate: an exact
        incoming record supersedes any hash-backed one, and an exact cached
        entry is never downgraded — so merges of exact and estimated
        knowledge commute.
        """
        key = self._key((evaluation.first, evaluation.second))
        existing = self._pairs.get(key)
        if existing is not None:
            if self._is_exact(existing):
                return
            if (not self._is_exact(evaluation)
                    and existing.n_hashes >= evaluation.n_hashes):
                return
        self._pairs[key] = CachedPair(
            first=key[0], second=key[1], n_hashes=evaluation.n_hashes,
            matches=evaluation.matches, estimate=evaluation.estimate,
            variance=evaluation.variance)

    # ------------------------------------------------------------------ #
    # Aggregate views
    # ------------------------------------------------------------------ #
    @property
    def n_pairs(self) -> int:
        """Number of pairs with cached evaluation state."""
        return len(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __contains__(self, pair: tuple[int, int]) -> bool:
        return self._key(pair) in self._pairs

    def get(self, pair: tuple[int, int]) -> CachedPair | None:
        """The cached state for *pair* (either orientation), or ``None``."""
        return self._pairs.get(self._key(pair))

    def pairs(self) -> list[CachedPair]:
        """All cached pair states (unspecified order)."""
        return list(self._pairs.values())

    def estimates(self) -> np.ndarray:
        """Array of cached similarity estimates (one per pair)."""
        if not self._pairs:
            return np.empty(0)
        return np.array([p.estimate for p in self._pairs.values()])

    def estimate_histogram(self, bins: int = 50,
                           value_range: tuple[float, float] = (0.0, 1.0)
                           ) -> tuple[np.ndarray, np.ndarray]:
        """Histogram of cached similarity estimates (counts, bin_edges).

        Plotting this cumulative distribution "gives a useful hint to the
        user as to the number of pairs to expect at different thresholds".
        """
        estimates = np.clip(self.estimates(), value_range[0], value_range[1])
        return np.histogram(estimates, bins=bins, range=value_range)

    def pairs_at_threshold(self, threshold: float) -> list[tuple[int, int]]:
        """Pairs whose cached estimate meets *threshold* (no data access)."""
        return [cached.pair for cached in self._pairs.values()
                if cached.estimate >= threshold]

    def prior_weights(self, similarity_grid: np.ndarray,
                      strength: float = 0.5) -> np.ndarray:
        """Empirical-prior weights over *similarity_grid* from cached estimates.

        A mixture of the uniform prior and a kernel-smoothed histogram of the
        cached estimates; ``strength`` is the weight of the empirical part.
        With an empty cache the prior is uniform.
        """
        uniform = np.ones_like(similarity_grid, dtype=float)
        uniform /= uniform.sum()
        estimates = self.estimates()
        if len(estimates) == 0 or not 0.0 < strength <= 1.0:
            return uniform
        bandwidth = 0.05
        deltas = similarity_grid[:, None] - estimates[None, :]
        kernel = np.exp(-0.5 * (deltas / bandwidth) ** 2).sum(axis=1)
        if kernel.sum() == 0:
            return uniform
        empirical = kernel / kernel.sum()
        mixed = strength * empirical + (1.0 - strength) * uniform
        return mixed / mixed.sum()

    # ------------------------------------------------------------------ #
    # Mergeable, serialisable state (the persistent-session substrate)
    # ------------------------------------------------------------------ #
    def state(self) -> dict:
        """The cache contents as plain arrays and scalars.

        The exact payload :meth:`repro.store.SimilarityStore.save_session`
        persists; round-trips through :meth:`from_state`.
        """
        pairs = list(self._pairs.values())
        return {
            "first": np.array([p.first for p in pairs], dtype=np.int64),
            "second": np.array([p.second for p in pairs], dtype=np.int64),
            "n_hashes": np.array([p.n_hashes for p in pairs], dtype=np.int64),
            "matches": np.array([p.matches for p in pairs], dtype=np.int64),
            "estimate": np.array([p.estimate for p in pairs]),
            "variance": np.array([p.variance for p in pairs]),
            "probed_thresholds": [float(t) for t in self.probed_thresholds],
        }

    @classmethod
    def from_state(cls, state: dict) -> "KnowledgeCache":
        """Rebuild a cache from a :meth:`state` payload."""
        cache = cls()
        cache.merge_state(state)
        cache.probed_thresholds = [float(t)
                                   for t in state.get("probed_thresholds", [])]
        return cache

    def merge_state(self, state: dict) -> None:
        """Merge a :meth:`state` payload into this cache (upgrade-only).

        Commutative with respect to per-pair knowledge: for every pair the
        evaluation backed by the most hashes wins, exactly as :meth:`record`
        behaves across probes.
        """
        for first, second, n_hashes, matches, estimate, variance in zip(
                np.asarray(state["first"]).tolist(),
                np.asarray(state["second"]).tolist(),
                np.asarray(state["n_hashes"]).tolist(),
                np.asarray(state["matches"]).tolist(),
                np.asarray(state["estimate"]).tolist(),
                np.asarray(state["variance"]).tolist()):
            self.record(CachedPair(int(first), int(second), int(n_hashes),
                                   int(matches), float(estimate),
                                   float(variance)))

    def merge(self, other: "KnowledgeCache") -> None:
        """Merge another cache's knowledge into this one (upgrade-only)."""
        for cached in other._pairs.values():
            self.record(cached)
        seen = set(self.probed_thresholds)
        for threshold in other.probed_thresholds:
            if threshold not in seen:
                self.probed_thresholds.append(threshold)
                seen.add(threshold)

    def merge_exact_pairs(self, pairs) -> None:
        """Fold exactly-known similarities (e.g. a delta pass) into the cache.

        Each :class:`~repro.similarity.types.SimilarPair` is recorded with a
        near-zero posterior variance so the Cumulative APSS Graph counts it
        (essentially) deterministically — but with ``n_hashes = 0`` so
        BayesLSH resumption never mistakes it for hash-comparison state
        (see :meth:`lookup`).  Going through :meth:`record` gives exact
        knowledge its precedence over estimates in every merge direction.
        """
        for pair in pairs:
            self.record(CachedPair(
                first=pair.first, second=pair.second, n_hashes=0, matches=0,
                estimate=float(pair.similarity), variance=1e-12))

    def clear(self) -> None:
        """Drop every cached pair, probed threshold and savings counter."""
        self._pairs.clear()
        self.probed_thresholds.clear()
        self.hashes_saved = 0

    @staticmethod
    def _key(pair: tuple[int, int]) -> tuple[int, int]:
        first, second = int(pair[0]), int(pair[1])
        return (first, second) if first <= second else (second, first)

    @staticmethod
    def _is_exact(cached) -> bool:
        """Whether an entry came from exact knowledge, not hash estimation."""
        return cached.n_hashes == 0 and cached.variance <= 1e-12
