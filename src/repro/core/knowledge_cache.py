"""The PLASMA-HD knowledge cache.

BayesLSH, as originally proposed, throws away the per-pair hash-match counts
and similarity estimates it computes while verifying candidates.  PLASMA-HD's
key enhancement is to *memoize* that information (Section 2.2.1):

* for every candidate pair evaluated — whether retained or pruned — the number
  of hashes compared, the number that matched, the maximum a posteriori
  similarity estimate and its variance are recorded;
* later probes at other thresholds resume each pair's evaluation from the
  cached (hashes, matches) state instead of starting from scratch, which is
  where the 16–29% interactive speedups of Figure 2.10 come from;
* the cached estimate distribution doubles as an empirical prior for new
  probes and as the data behind the Cumulative APSS Graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CachedPair", "KnowledgeCache"]


@dataclass
class CachedPair:
    """Memoized evaluation state for one candidate pair."""

    first: int
    second: int
    n_hashes: int
    matches: int
    estimate: float
    variance: float

    @property
    def pair(self) -> tuple[int, int]:
        return (self.first, self.second)


class KnowledgeCache:
    """Stores per-pair BayesLSH evaluation state across probes.

    The cache exposes the two hooks :class:`repro.lsh.bayeslsh.BayesLSH`
    understands — ``lookup`` and ``record`` — plus aggregate views used by the
    cumulative APSS graph and by prior construction.
    """

    def __init__(self) -> None:
        self._pairs: dict[tuple[int, int], CachedPair] = {}
        self.probed_thresholds: list[float] = []
        self.hashes_saved = 0

    # ------------------------------------------------------------------ #
    # BayesLSH hooks
    # ------------------------------------------------------------------ #
    def lookup(self, pair: tuple[int, int]) -> tuple[int, int] | None:
        """Return cached ``(n_hashes, matches)`` for *pair*, or ``None``."""
        cached = self._pairs.get(self._key(pair))
        if cached is None:
            return None
        self.hashes_saved += cached.n_hashes
        return (cached.n_hashes, cached.matches)

    def record(self, evaluation) -> None:
        """Record a :class:`~repro.lsh.bayeslsh.PairEvaluation`.

        Only ever *upgrades* the cached state: an evaluation based on fewer
        hashes than what is already cached is ignored.
        """
        key = self._key((evaluation.first, evaluation.second))
        existing = self._pairs.get(key)
        if existing is not None and existing.n_hashes >= evaluation.n_hashes:
            return
        self._pairs[key] = CachedPair(
            first=key[0], second=key[1], n_hashes=evaluation.n_hashes,
            matches=evaluation.matches, estimate=evaluation.estimate,
            variance=evaluation.variance)

    # ------------------------------------------------------------------ #
    # Aggregate views
    # ------------------------------------------------------------------ #
    @property
    def n_pairs(self) -> int:
        return len(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __contains__(self, pair: tuple[int, int]) -> bool:
        return self._key(pair) in self._pairs

    def get(self, pair: tuple[int, int]) -> CachedPair | None:
        return self._pairs.get(self._key(pair))

    def pairs(self) -> list[CachedPair]:
        """All cached pair states (unspecified order)."""
        return list(self._pairs.values())

    def estimates(self) -> np.ndarray:
        """Array of cached similarity estimates (one per pair)."""
        if not self._pairs:
            return np.empty(0)
        return np.array([p.estimate for p in self._pairs.values()])

    def estimate_histogram(self, bins: int = 50,
                           value_range: tuple[float, float] = (0.0, 1.0)
                           ) -> tuple[np.ndarray, np.ndarray]:
        """Histogram of cached similarity estimates (counts, bin_edges).

        Plotting this cumulative distribution "gives a useful hint to the
        user as to the number of pairs to expect at different thresholds".
        """
        estimates = np.clip(self.estimates(), value_range[0], value_range[1])
        return np.histogram(estimates, bins=bins, range=value_range)

    def pairs_at_threshold(self, threshold: float) -> list[tuple[int, int]]:
        """Pairs whose cached estimate meets *threshold* (no data access)."""
        return [cached.pair for cached in self._pairs.values()
                if cached.estimate >= threshold]

    def prior_weights(self, similarity_grid: np.ndarray,
                      strength: float = 0.5) -> np.ndarray:
        """Empirical-prior weights over *similarity_grid* from cached estimates.

        A mixture of the uniform prior and a kernel-smoothed histogram of the
        cached estimates; ``strength`` is the weight of the empirical part.
        With an empty cache the prior is uniform.
        """
        uniform = np.ones_like(similarity_grid, dtype=float)
        uniform /= uniform.sum()
        estimates = self.estimates()
        if len(estimates) == 0 or not 0.0 < strength <= 1.0:
            return uniform
        bandwidth = 0.05
        deltas = similarity_grid[:, None] - estimates[None, :]
        kernel = np.exp(-0.5 * (deltas / bandwidth) ** 2).sum(axis=1)
        if kernel.sum() == 0:
            return uniform
        empirical = kernel / kernel.sum()
        mixed = strength * empirical + (1.0 - strength) * uniform
        return mixed / mixed.sum()

    def clear(self) -> None:
        self._pairs.clear()
        self.probed_thresholds.clear()
        self.hashes_saved = 0

    @staticmethod
    def _key(pair: tuple[int, int]) -> tuple[int, int]:
        first, second = int(pair[0]), int(pair[1])
        return (first, second) if first <= second else (second, first)
