"""The Cumulative APSS Graph: pair counts across the whole threshold spectrum.

After probing the data at one threshold, PLASMA-HD displays bounded estimates
of the number of similar pairs at *every* threshold (Figures 2.3 and 2.4).
Each cached pair contributes its probability of exceeding a query threshold —
computed from the pair's posterior similarity estimate and variance — so the
expected count and an error bar follow from summing independent Bernoulli
contributions.  Uncertainty grows below the probed threshold (many of those
pairs were pruned early, so their posteriors are wide), which reproduces the
asymmetric error bars the dissertation describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from repro.core.knowledge_cache import KnowledgeCache

__all__ = ["ThresholdEstimate", "CumulativeApssGraph", "exact_reference_counts"]


def exact_reference_counts(dataset, thresholds, measure: str = "cosine",
                           backend: str | None = None) -> dict[float, int]:
    """Exact pair counts per threshold, via the APSS engine.

    The ground-truth line the Cumulative APSS Graph is plotted against
    (Figures 2.3/2.4).  One engine search at the smallest threshold covers
    the whole grid; *backend* selects any registered exact backend.
    """
    from repro.similarity.allpairs import exact_pair_count

    return exact_pair_count(dataset, thresholds, measure=measure,
                            backend=backend)


@dataclass(frozen=True)
class ThresholdEstimate:
    """Estimated number of similar pairs at one threshold, with uncertainty."""

    threshold: float
    expected_pairs: float
    std: float

    @property
    def lower(self) -> float:
        """Lower error bar (expected - 2 std, floored at zero)."""
        return max(0.0, self.expected_pairs - 2.0 * self.std)

    @property
    def upper(self) -> float:
        """Upper error bar (expected + 2 std)."""
        return self.expected_pairs + 2.0 * self.std


class CumulativeApssGraph:
    """Pair-count estimates over a grid of thresholds, built from the cache.

    Parameters
    ----------
    cache:
        The knowledge cache holding per-pair similarity estimates.
    thresholds:
        Grid of thresholds the curve is evaluated on (defaults to
        0.05, 0.10, ..., 0.95).
    """

    def __init__(self, cache: KnowledgeCache, thresholds=None) -> None:
        self.cache = cache
        if thresholds is None:
            thresholds = np.round(np.arange(0.05, 1.0, 0.05), 2)
        self.thresholds = np.asarray(sorted(float(t) for t in thresholds))

    # ------------------------------------------------------------------ #
    def estimate(self, threshold: float) -> ThresholdEstimate:
        """Expected pair count and standard deviation at *threshold*."""
        pairs = self.cache.pairs()
        if not pairs:
            return ThresholdEstimate(threshold, 0.0, 0.0)
        estimates = np.array([p.estimate for p in pairs])
        variances = np.array([max(p.variance, 1e-12) for p in pairs])
        stds = np.sqrt(variances)
        # Probability that each pair's true similarity exceeds the threshold,
        # under a normal approximation of its posterior.
        prob_above = 1.0 - norm.cdf((threshold - estimates) / stds)
        expected = float(prob_above.sum())
        variance = float((prob_above * (1.0 - prob_above)).sum())
        return ThresholdEstimate(float(threshold), expected, float(np.sqrt(variance)))

    def curve(self, thresholds=None) -> list[ThresholdEstimate]:
        """The full estimate curve (one entry per threshold, descending count)."""
        if thresholds is None:
            thresholds = self.thresholds
        return [self.estimate(float(t)) for t in thresholds]

    def expected_counts(self, thresholds=None) -> dict[float, float]:
        """Convenience mapping threshold -> expected pair count."""
        return {e.threshold: e.expected_pairs for e in self.curve(thresholds)}

    def as_series(self, thresholds=None) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(thresholds, expected, std)`` arrays for plotting."""
        curve = self.curve(thresholds)
        xs = np.array([e.threshold for e in curve])
        ys = np.array([e.expected_pairs for e in curve])
        errs = np.array([e.std for e in curve])
        return xs, ys, errs

    # ------------------------------------------------------------------ #
    def relative_error_against(self, ground_truth: dict[float, int]) -> dict[float, float]:
        """Relative error of the estimate against exact counts per threshold.

        Thresholds with a zero exact count use absolute error instead (so the
        metric stays finite).
        """
        errors: dict[float, float] = {}
        for threshold, exact in ground_truth.items():
            estimate = self.estimate(threshold).expected_pairs
            if exact == 0:
                errors[threshold] = abs(estimate - exact)
            else:
                errors[threshold] = abs(estimate - exact) / exact
        return errors

    def relative_error_to_exact(self, dataset, measure: str = "cosine",
                                thresholds=None,
                                backend: str | None = None) -> dict[float, float]:
        """Relative error against engine-computed exact counts.

        Convenience wrapper pairing :meth:`relative_error_against` with
        :func:`exact_reference_counts` so experiment code audits the curve
        in one call.
        """
        if thresholds is None:
            thresholds = self.thresholds
        ground_truth = exact_reference_counts(dataset, thresholds,
                                              measure=measure, backend=backend)
        return self.relative_error_against(ground_truth)
