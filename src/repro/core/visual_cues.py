"""Visual cues driven solely by the knowledge cache.

Once an all-pairs probe has been run at one threshold, PLASMA-HD can render
structure cues for *any* other threshold without touching the source data:
the cached pair estimates define a similarity graph at the requested
threshold, and from it we compute

* the **triangle vertex-cover histogram** (Figure 2.5b) — the distribution of
  the number of triangles incident on each vertex, a proxy for clusterability;
* the **triangle density plot** (Figure 2.5c) — vertices in degeneracy
  (peeling) order with the running edge density of each prefix; flat, high
  plateaus indicate potential cliques / cohesive subgraphs.

The functions also accept an explicit :class:`~repro.graphs.Graph`, so the
same cues can be produced from exact graphs in tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.knowledge_cache import KnowledgeCache
from repro.graphs.graph import Graph
from repro.graphs.measures import triangle_count, triangles_per_vertex
from repro.graphs.similarity_graph import graph_from_pairs

__all__ = ["TriangleHistogram", "DensityPlot", "triangle_vertex_histogram",
           "density_plot", "graph_at_threshold"]


@dataclass(frozen=True)
class TriangleHistogram:
    """Histogram of per-vertex triangle counts plus summary statistics."""

    bin_edges: np.ndarray
    counts: np.ndarray
    total_triangles: int
    max_per_vertex: int
    mean_per_vertex: float

    def as_series(self) -> tuple[np.ndarray, np.ndarray]:
        """The histogram as plottable ``(bin centers, counts)`` arrays."""
        centers = (self.bin_edges[:-1] + self.bin_edges[1:]) / 2.0
        return centers, self.counts


@dataclass(frozen=True)
class DensityPlot:
    """Running edge density over the degeneracy (peeling) vertex order.

    ``positions[i]`` is the prefix size and ``densities[i]`` the edge density
    of the subgraph induced by the first ``positions[i]`` vertices in peeling
    order.  ``plateaus`` lists (start, stop, density) runs where the density
    stays within a small tolerance — candidate cohesive subgraphs.
    """

    order: np.ndarray
    positions: np.ndarray
    densities: np.ndarray
    plateaus: list[tuple[int, int, float]]


def graph_at_threshold(cache: KnowledgeCache, n_nodes: int,
                       threshold: float) -> Graph:
    """Similarity graph induced by cached estimates at *threshold*."""
    return graph_from_pairs(n_nodes, cache.pairs_at_threshold(threshold))


def triangle_vertex_histogram(source, threshold: float | None = None,
                              n_nodes: int | None = None,
                              bins: int = 20) -> TriangleHistogram:
    """Triangle vertex-cover histogram from a Graph or a KnowledgeCache.

    Parameters
    ----------
    source:
        Either a :class:`~repro.graphs.Graph` or a :class:`KnowledgeCache`
        (in which case *threshold* and *n_nodes* are required).
    """
    graph = _resolve_graph(source, threshold, n_nodes)
    per_vertex = triangles_per_vertex(graph)
    max_count = int(per_vertex.max(initial=0))
    counts, edges = np.histogram(per_vertex, bins=bins,
                                 range=(0, max(1, max_count)))
    return TriangleHistogram(
        bin_edges=edges,
        counts=counts,
        total_triangles=int(triangle_count(graph)),
        max_per_vertex=max_count,
        mean_per_vertex=float(per_vertex.mean()) if len(per_vertex) else 0.0,
    )


def density_plot(source, threshold: float | None = None,
                 n_nodes: int | None = None,
                 plateau_tolerance: float = 0.05,
                 min_plateau_length: int = 3) -> DensityPlot:
    """Triangle/clique density plot from a Graph or a KnowledgeCache.

    Vertices are peeled in increasing-degree order (degeneracy order
    reversed), so the *end* of the x axis holds the densest core.  Plateaus of
    near-constant high density correspond to near-cliques.
    """
    graph = _resolve_graph(source, threshold, n_nodes)
    order = _degeneracy_order(graph)
    # Build prefixes from the densest end: reverse the peeling order so the
    # first vertices added are the core.
    order = order[::-1]
    member_index = {node: i for i, node in enumerate(order)}

    positions = []
    densities = []
    edges_so_far = 0
    for prefix_size, node in enumerate(order, start=1):
        for neighbor in graph.neighbors(node):
            if member_index[neighbor] < prefix_size - 1:
                edges_so_far += 1
        possible = prefix_size * (prefix_size - 1) / 2
        density = edges_so_far / possible if possible else 0.0
        positions.append(prefix_size)
        densities.append(density)

    densities_arr = np.array(densities)
    plateaus = _find_plateaus(densities_arr, plateau_tolerance, min_plateau_length)
    return DensityPlot(order=np.array(order), positions=np.array(positions),
                       densities=densities_arr, plateaus=plateaus)


# --------------------------------------------------------------------------- #
def _resolve_graph(source, threshold, n_nodes) -> Graph:
    if isinstance(source, Graph):
        return source
    if isinstance(source, KnowledgeCache):
        if threshold is None or n_nodes is None:
            raise ValueError("threshold and n_nodes are required with a KnowledgeCache")
        return graph_at_threshold(source, n_nodes, threshold)
    raise TypeError("source must be a Graph or a KnowledgeCache")


def _degeneracy_order(graph: Graph) -> list[int]:
    """Peeling order: repeatedly remove a minimum-degree vertex."""
    import heapq

    degrees = graph.degrees()
    removed = [False] * graph.n_nodes
    heap = [(degrees[v], v) for v in range(graph.n_nodes)]
    heapq.heapify(heap)
    order: list[int] = []
    current = list(degrees)
    while heap:
        degree, node = heapq.heappop(heap)
        if removed[node] or degree != current[node]:
            continue
        removed[node] = True
        order.append(node)
        for neighbor in graph.neighbors(node):
            if not removed[neighbor]:
                current[neighbor] -= 1
                heapq.heappush(heap, (current[neighbor], neighbor))
    return order


def _find_plateaus(densities: np.ndarray, tolerance: float,
                   min_length: int) -> list[tuple[int, int, float]]:
    plateaus: list[tuple[int, int, float]] = []
    if len(densities) == 0:
        return plateaus
    start = 0
    for i in range(1, len(densities) + 1):
        at_end = i == len(densities)
        breaks = (not at_end
                  and abs(densities[i] - densities[start]) > tolerance)
        if at_end or breaks:
            if i - start >= min_length:
                plateaus.append((start, i - 1, float(densities[start:i].mean())))
            start = i
    return plateaus
