"""PLASMA-HD core: knowledge caching, cumulative APSS estimation, visual cues
and the interactive probing session."""

from repro.core.knowledge_cache import CachedPair, KnowledgeCache
from repro.core.apss_graph import ThresholdEstimate, CumulativeApssGraph
from repro.core.exploration import find_knee, find_inflection_points, suggest_next_threshold
from repro.core.visual_cues import (
    TriangleHistogram,
    DensityPlot,
    triangle_vertex_histogram,
    density_plot,
)
from repro.core.session import PlasmaSession, ProbeResult

__all__ = [
    "CachedPair",
    "KnowledgeCache",
    "ThresholdEstimate",
    "CumulativeApssGraph",
    "find_knee",
    "find_inflection_points",
    "suggest_next_threshold",
    "TriangleHistogram",
    "DensityPlot",
    "triangle_vertex_histogram",
    "density_plot",
    "PlasmaSession",
    "ProbeResult",
]
