"""The PLASMA-HD interactive session.

``PlasmaSession`` wires the substrates together into the workflow of
Figure 2.1: sketch the data once, probe it at a user-chosen threshold with
BayesLSH, memoize everything into the knowledge cache, and from the cache
produce the Cumulative APSS Graph, visual cues and a suggestion for the next
threshold — all without touching the raw data again.

The session also exposes the instrumentation the Chapter 2 experiments need:
incremental pair-count estimates while a probe is running (Figures 2.6–2.8),
sketch-generation time versus processing time (Figure 2.9) and the effect of
knowledge caching on successive probes (Figure 2.10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.apss_graph import CumulativeApssGraph
from repro.core.exploration import suggest_next_threshold
from repro.core.knowledge_cache import KnowledgeCache
from repro.core.visual_cues import (
    DensityPlot,
    TriangleHistogram,
    density_plot,
    graph_at_threshold,
    triangle_vertex_histogram,
)
from repro.datasets.vectors import VectorDataset
from repro.graphs.graph import Graph
from repro.lsh.bayeslsh import ApssResult, BayesLSHConfig
from repro.lsh.candidates import all_pair_candidates, banded_candidates
from repro.lsh.sketches import SketchStore, build_sketch_store
from repro.similarity.backends.bayeslsh import BayesLshBackend
from repro.similarity.cache import CachedApssEngine
from repro.similarity.engine import ApssEngine, EngineResult
from repro.similarity.tiered import TieredAnswer, TieredApssEngine
from repro.utils.timers import Stopwatch
from repro.utils.validation import check_threshold

__all__ = ["ProbeResult", "PlasmaSession"]


@dataclass
class ProbeResult:
    """Outcome of one interactive probe at a single threshold."""

    threshold: float
    apss: ApssResult
    pair_count: int
    total_seconds: float
    sketch_seconds: float
    processing_seconds: float
    used_cache: bool
    cached_hash_reuse: int
    incremental_estimates: list[tuple[float, dict[float, float]]] = field(
        default_factory=list)

    @property
    def sketch_fraction(self) -> float:
        """Fraction of the probe's total time spent building sketches."""
        if self.total_seconds == 0:
            return 0.0
        return self.sketch_seconds / self.total_seconds


class PlasmaSession:
    """Interactive PLASMA-HD exploration of one dataset.

    Parameters
    ----------
    dataset:
        The data to probe.
    measure:
        ``"cosine"`` or ``"jaccard"`` — selects the LSH family.
    n_hashes:
        Sketch length (also the per-pair hash budget for BayesLSH).
    config:
        BayesLSH stopping-rule parameters.
    candidate_strategy:
        ``"all"`` evaluates every pair (exact recall; fine for interactive
        dataset sizes); ``"banded"`` generates candidates by LSH banding
        (near-linear, recall limited to above-threshold pairs).
    use_empirical_prior:
        Whether later probes seed their posterior from the cache's estimate
        distribution.
    seed:
        Seed for sketch construction.
    engine:
        The :class:`~repro.similarity.engine.ApssEngine` used for exact
        baselines (ground truth, recall audits).  Probes themselves run the
        engine's ``bayeslsh`` backend against the session's long-lived
        sketch store.
    store:
        A :class:`~repro.store.SimilarityStore` making the session durable:
        sketches and the knowledge cache are persisted after every probe and
        restored on construction, so a *new process* opening the same store
        resumes exactly where the last one stopped (Figure 2.10's caching
        wins, across sessions).  A dataset produced by ``append_rows``
        resumes from its *parent's* persisted knowledge — per-pair hash
        state only involves old rows and stays valid under appends.
    snapshot:
        A :class:`~repro.store.StoreSnapshot` the session's exact sweeps
        read through.  With a *store* attached a snapshot is opened
        automatically, so every :meth:`exact_baseline` of the session sees
        one consistent manifest version regardless of concurrent ingest,
        compaction or GC; :meth:`extend_dataset` publishes the appended
        generation to the lineage and advances the snapshot past its own
        write.  Call :meth:`close` (or use the session as a context
        manager) to release the snapshot's pin lease.
    """

    def __init__(self, dataset: VectorDataset, *, measure: str = "cosine",
                 n_hashes: int = 128, config: BayesLSHConfig | None = None,
                 candidate_strategy: str = "all",
                 use_empirical_prior: bool = False, seed: int = 0,
                 engine: ApssEngine | None = None, store=None,
                 snapshot=None) -> None:
        if candidate_strategy not in ("all", "banded", "auto"):
            raise ValueError(
                "candidate_strategy must be 'all', 'banded' or 'auto'")
        if measure not in ("cosine", "jaccard"):
            raise ValueError("measure must be 'cosine' or 'jaccard'")
        self.dataset = dataset
        self.measure = measure
        self.n_hashes = n_hashes
        self.config = config or BayesLSHConfig(max_hashes=n_hashes)
        self.candidate_strategy = candidate_strategy
        self.use_empirical_prior = use_empirical_prior
        self.seed = seed
        self.engine = engine or ApssEngine()
        self.verifier: BayesLshBackend = self.engine.make_backend(
            "bayeslsh", n_hashes=n_hashes, seed=seed, config=self.config,
            candidate_strategy=candidate_strategy)

        self.cache = KnowledgeCache()
        self.history: list[ProbeResult] = []
        self._store: SketchStore | None = None
        if store is None and snapshot is not None:
            store = snapshot.store
        self.store = store
        #: The manifest snapshot all of this session's exact sweeps read
        #: (``None`` without a store): one consistent lineage version.
        self.snapshot = snapshot
        if self.snapshot is None and self.store is not None:
            self.snapshot = self.store.open_snapshot()
        self._sweeper: CachedApssEngine | None = None
        if self.snapshot is not None:
            self._sweeper = CachedApssEngine(
                engine=self.engine, store=self.store,
                snapshot=self.snapshot)
        self._tiered: TieredApssEngine | None = None
        self._closed = False
        #: How this session's knowledge cache started: ``"fresh"``, resumed
        #: from this dataset's persisted state (``"store"``), or seeded from
        #: the append parent's state (``"parent"``).
        self.resumed_from = "fresh"
        if self.store is not None:
            self._restore_session()

    # ------------------------------------------------------------------ #
    # Persistence (opt-in via the ``store`` constructor argument)
    # ------------------------------------------------------------------ #
    def _session_key(self, fingerprint: str) -> tuple:
        cfg = self.config
        return ("plasma-session", fingerprint, self.measure, self.n_hashes,
                self.seed, self.candidate_strategy, cfg.epsilon, cfg.delta,
                cfg.gamma, cfg.hash_batch, cfg.max_hashes, cfg.resolution)

    def _sketch_key(self, fingerprint: str) -> tuple:
        return ("sketches", fingerprint, self.measure, self.n_hashes,
                self.seed)

    def _restore_session(self) -> None:
        state = self.store.load_session(
            self._session_key(self.dataset.fingerprint()))
        if state is not None:
            self.cache = KnowledgeCache.from_state(state)
            self.resumed_from = "store"
            return
        delta = getattr(self.dataset, "parent_delta", None)
        if delta is not None:
            state = self.store.load_session(
                self._session_key(delta.parent_fingerprint))
            if state is not None:
                # Old-row pair evaluations stay valid under an append (their
                # sketches and similarities are untouched); only pairs that
                # involve a new row are genuinely unknown.
                self.cache = KnowledgeCache.from_state(state)
                self.resumed_from = "parent"

    def _persist_session(self) -> None:
        if self.store is not None:
            self.store.save_session(
                self._session_key(self.dataset.fingerprint()),
                self.cache.state())

    # ------------------------------------------------------------------ #
    # Sketches (built lazily, cached for the lifetime of the session)
    # ------------------------------------------------------------------ #
    def _make_sketcher(self):
        """The deterministic sketcher for this session's (measure, seed)."""
        from repro.lsh.minhash import MinHashSketcher
        from repro.lsh.random_projection import CosineSketcher

        if self.measure == "cosine":
            return CosineSketcher(self.n_hashes, self.dataset.n_features,
                                  seed=self.seed)
        return MinHashSketcher(self.n_hashes, seed=self.seed)

    def _sketch_rows(self, sketcher, rows) -> np.ndarray:
        if self.measure == "cosine":
            return sketcher.sketch_many(self.dataset.row(i) for i in rows)
        return sketcher.sketch_many(self.dataset.row(i)[0] for i in rows)

    def _build_sketch_store(self) -> SketchStore:
        persistable = self.store is not None and self.seed is not None
        key = (self._sketch_key(self.dataset.fingerprint())
               if persistable else None)
        expected = (self.dataset.n_rows, self.n_hashes)
        if persistable:
            sketches = self.store.load_sketches(key)
            if sketches is not None and sketches.shape == expected:
                # Same fingerprint + seed: the stored matrix is exactly what
                # a rebuild would produce, minus the build time.
                return SketchStore(sketches, self._make_sketcher(),
                                   build_seconds=0.0)
            delta = getattr(self.dataset, "parent_delta", None)
            if delta is not None and delta.n_new:
                parent = self.store.load_sketches(
                    self._sketch_key(delta.parent_fingerprint))
                if parent is not None and parent.shape == (
                        delta.parent_rows, self.n_hashes):
                    # Incremental sketching: rows are sketched independently
                    # under a seed-deterministic sketcher, so sketching only
                    # the appended rows reproduces a full rebuild bit-for-bit.
                    sketcher = self._make_sketcher()
                    new_rows = self._sketch_rows(sketcher, delta.new_rows)
                    sketches = np.vstack([parent, new_rows])
                    self.store.save_sketches(key, sketches)
                    return SketchStore(sketches, sketcher, build_seconds=0.0)
        built = build_sketch_store(self.dataset, kind=self.measure,
                                   n_hashes=self.n_hashes, seed=self.seed)
        if persistable:
            self.store.save_sketches(key, built.sketches)
        return built

    @property
    def sketch_store(self) -> SketchStore:
        """The session's sketch store, built on first use (and then cached)."""
        if self._store is None:
            self._store = self._build_sketch_store()
        return self._store

    def invalidate_sketches(self) -> None:
        """Drop cached sketches (they will be rebuilt on the next probe)."""
        self._store = None

    # ------------------------------------------------------------------ #
    # Mid-session ingest
    # ------------------------------------------------------------------ #
    def extend_dataset(self, rows, labels=None,
                       name: str | None = None) -> VectorDataset:
        """Append *rows* to the session's dataset without losing knowledge.

        The in-session twin of resuming an appended dataset from a parent
        session: the dataset is replaced by ``dataset.append_rows(rows)``,
        the knowledge cache is kept (per-pair hash state only involves old
        rows, which an append leaves untouched) and the cached sketch store
        is invalidated — with a persistent store attached, the next probe
        persists the pre-append session state under the parent fingerprint
        and rebuilds sketches incrementally, sketching only the new rows.
        Returns the new dataset (whose ``parent_delta`` ties it to the old
        content fingerprint, so exact floors held elsewhere can be
        delta-extended instead of recomputed).
        """
        if self.store is not None:
            # Make sure the parent's sketches/knowledge are on disk before
            # the session identity moves to the child fingerprint: the
            # incremental sketch path reads them back by parent fingerprint.
            _ = self.sketch_store
            self._persist_session()
        self.dataset = self.dataset.append_rows(rows, labels=labels, name=name)
        self.invalidate_sketches()
        if self.store is not None:
            self._persist_session()
            delta = self.dataset.parent_delta
            # Publish the appended generation to the versioned lineage, then
            # step this session's snapshot forward past its own write: MVCC
            # protects a session from *other* writers, not from itself.
            self.store.publish_generation(
                self.dataset.fingerprint(),
                parent=delta.parent_fingerprint,
                n_rows=self.dataset.n_rows,
                parent_rows=delta.parent_rows)
            self._step_snapshot()
        return self.dataset

    def _step_snapshot(self) -> None:
        """Re-pin the session's snapshot at the current manifest version.

        MVCC protects a session from *other* writers; stepping the pin is
        how the session advances past writes it asked for itself — its own
        ingest (:meth:`extend_dataset`) and landed tier refinements
        (:meth:`await_refinement`).
        """
        if self.snapshot is None:
            return
        self.snapshot.close()
        self.snapshot = self.store.open_snapshot()
        if self._sweeper is not None:
            self._sweeper.snapshot = self.snapshot

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    @property
    def refinement_queue_depth(self) -> int:
        """Exact refinements currently in flight for this session's probes.

        The health-check counterpart of
        :attr:`~repro.similarity.tiered.TieredApssEngine.pending_refinements`:
        0 when the session never tiered-probed, and 0 again once drained —
        a closed session always reports a clean queue.
        """
        if self._tiered is None:
            return 0
        return self._tiered.pending_refinements

    def close(self) -> None:
        """Release the session's snapshot pin lease and drain refinements.

        Idempotent.  After close the tiered engine refuses further probes
        (its refinement worker is gone for good — see
        :meth:`TieredApssEngine.close`); snapshot-pinned sweeps and the
        knowledge cache remain readable.
        """
        if self._closed:
            return
        self._closed = True
        try:
            if self._tiered is not None:
                self._tiered.close()
        finally:
            # Even if the tiered drain raises (a refinement failure
            # surfacing at close), the snapshot pin lease must be
            # released or GC can never reclaim the pinned version.
            if self.snapshot is not None:
                self.snapshot.close()

    def __enter__(self) -> "PlasmaSession":
        """Context-manager entry: the session itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: release the snapshot pin."""
        self.close()

    # ------------------------------------------------------------------ #
    # Probing
    # ------------------------------------------------------------------ #
    def _candidates(self) -> list[tuple[int, int]]:
        strategy = self.verifier.resolve_strategy(self.dataset.n_rows)
        if strategy == "all":
            return list(all_pair_candidates(self.dataset.n_rows))
        return banded_candidates(self.sketch_store.sketches)

    def probe(self, threshold: float, *, use_cache: bool = True,
              incremental_thresholds=None,
              incremental_checkpoints: int = 0) -> ProbeResult:
        """Probe the dataset at *threshold* and update the knowledge cache.

        Parameters
        ----------
        use_cache:
            Resume per-pair evaluations from cached hash-match state (the
            knowledge-caching speedup).  Disable to emulate independent,
            from-scratch queries.
        incremental_thresholds, incremental_checkpoints:
            When both are given, partial pair-count estimates for the listed
            thresholds are recorded at ``incremental_checkpoints`` evenly
            spaced points during the probe (the Figures 2.6–2.8 series).
        """
        check_threshold(threshold)
        total_watch = Stopwatch()
        total_watch.start()

        sketch_seconds = 0.0
        if self._store is None:
            _ = self.sketch_store
            sketch_seconds = self.sketch_store.build_seconds

        prior = None
        if self.use_empirical_prior and len(self.cache):
            # Build the empirical prior on the sketcher's similarity grid.
            from repro.lsh.inference import PosteriorGrid

            grid = PosteriorGrid(self.sketch_store.sketcher,
                                 resolution=self.config.resolution)
            prior = self.cache.prior_weights(grid.similarity_grid)

        candidates = self._candidates()

        incremental: list[tuple[float, dict[float, float]]] = []
        callback = None
        progress_every = 0
        if incremental_thresholds and incremental_checkpoints > 0:
            targets = [check_threshold(float(t)) for t in incremental_thresholds]
            progress_every = max(1, len(candidates) // incremental_checkpoints)

            def callback(fraction: float, partial: ApssResult) -> None:
                estimates = _extrapolated_counts(partial, targets, fraction)
                incremental.append((fraction, estimates))

        processing_watch = Stopwatch()
        processing_watch.start()
        apss = self.verifier.verify(self.sketch_store, candidates, threshold,
                                    cache=self.cache if use_cache else None,
                                    prior=prior,
                                    progress_callback=callback,
                                    progress_every=progress_every)
        processing_seconds = processing_watch.stop()

        if not use_cache:
            # Still memoize the results of this probe so future cached probes
            # and cumulative estimates can use them.
            for evaluation in apss.evaluations:
                self.cache.record(evaluation)
        self.cache.probed_thresholds.append(float(threshold))
        self._persist_session()

        total_seconds = total_watch.stop()
        result = ProbeResult(
            threshold=float(threshold), apss=apss, pair_count=apss.pair_count(),
            total_seconds=total_seconds, sketch_seconds=sketch_seconds,
            processing_seconds=processing_seconds, used_cache=use_cache,
            cached_hash_reuse=apss.cached_hash_reuse,
            incremental_estimates=incremental)
        self.history.append(result)
        return result

    # ------------------------------------------------------------------ #
    # Views over the knowledge cache (no data access)
    # ------------------------------------------------------------------ #
    def cumulative_graph(self, thresholds=None) -> CumulativeApssGraph:
        """The Cumulative APSS Graph built from everything cached so far."""
        return CumulativeApssGraph(self.cache, thresholds=thresholds)

    def similarity_graph(self, threshold: float) -> Graph:
        """Estimated similarity graph at *threshold*, from cached estimates."""
        check_threshold(threshold)
        return graph_at_threshold(self.cache, self.dataset.n_rows, threshold)

    def triangle_histogram(self, threshold: float, bins: int = 20) -> TriangleHistogram:
        """Triangle vertex-cover histogram cue at *threshold* (cache only)."""
        return triangle_vertex_histogram(self.cache, threshold=threshold,
                                         n_nodes=self.dataset.n_rows, bins=bins)

    def density_plot(self, threshold: float) -> DensityPlot:
        """Triangle density plot cue at *threshold* (cache only)."""
        return density_plot(self.cache, threshold=threshold,
                            n_nodes=self.dataset.n_rows)

    def suggest_threshold(self, thresholds=None) -> float:
        """Suggest the next threshold to probe from the cumulative curve."""
        graph = self.cumulative_graph(thresholds)
        xs, ys, _ = graph.as_series()
        probed = self.cache.probed_thresholds or [0.0]
        return suggest_next_threshold(xs, ys, probed)

    # ------------------------------------------------------------------ #
    # Baseline for the interactive-scenario comparison
    # ------------------------------------------------------------------ #
    def brute_force_sweep(self, thresholds) -> tuple[dict[float, int], float]:
        """Independently probe every threshold with no caching.

        Returns the per-threshold pair counts and the total wall-clock time —
        the "pre-canned, data-independent protocol" the interactive workflow
        is compared against (its two-probe session achieves an 83% time
        saving over this sweep in the dissertation's example).
        """
        watch = Stopwatch()
        watch.start()
        counts: dict[float, int] = {}
        for threshold in thresholds:
            result = self.verifier.verify(self.sketch_store, self._candidates(),
                                          float(threshold))
            counts[float(threshold)] = result.pair_count()
        return counts, watch.stop()

    # ------------------------------------------------------------------ #
    # Two-tier serving: sketch answers now, exact refinement behind
    # ------------------------------------------------------------------ #
    @property
    def tiered(self) -> TieredApssEngine:
        """The session's two-tier engine, built lazily on first use.

        Shares the session's snapshot-pinned sweep cache (when a store is
        attached) and its BayesLSH configuration, so sketch-tier floors and
        exact refinements land in the same store every other layer reads.
        """
        if self._tiered is None:
            cache = self._sweeper
            if cache is None:
                cache = CachedApssEngine(
                    engine=self.engine,
                    store=self.store if self.store is not None else False)
            self._tiered = TieredApssEngine(
                cache,
                sketch_options={"n_hashes": self.n_hashes, "seed": self.seed,
                                "config": self.config,
                                "candidate_strategy": self.candidate_strategy})
        return self._tiered

    def tiered_probe(self, threshold: float) -> TieredAnswer:
        """Probe *threshold*, answering now and refining to exact behind.

        Returns a :class:`~repro.similarity.tiered.TieredAnswer` that
        unpacks as ``(result, tier, bound)``: an immediate sketch-tier
        answer carries ``bound = 1 − ε`` and schedules a background exact
        sweep; once that lands (see :meth:`await_refinement`) the same call
        transparently re-serves the exact floor with ``bound = 1.0`` — no
        kernel work, audited by ``session.engine.search_calls``.
        """
        check_threshold(threshold)
        return self.tiered.probe(self.dataset, threshold, self.measure)

    def await_refinement(self, timeout: float | None = None) -> list[EngineResult]:
        """Block until scheduled exact refinements land, then step the pin.

        After this returns, the upgraded (exact) floors are visible both to
        this session's :meth:`tiered_probe`/:meth:`exact_baseline` *and* —
        because the snapshot pin is re-opened past the upgrade — to any
        lineage-consistent reader of the session's snapshot.
        """
        results = self.tiered.wait(timeout)
        if results:
            self._step_snapshot()
        return results

    def exact_baseline(self, threshold: float,
                       backend: str | None = None) -> EngineResult:
        """Exact APSS over the session's dataset through the engine.

        The ground truth the probe estimates are audited against; *backend*
        may name any registered exact backend.  With a store attached the
        sweep runs through the session's snapshot-pinned cache layer: every
        baseline of this session reads one manifest version, and kernel
        floors it computes are published back to the lineage.
        """
        check_threshold(threshold)
        if self._sweeper is not None:
            return self._sweeper.search(self.dataset, threshold, self.measure,
                                        backend=backend)
        return self.engine.search(self.dataset, threshold, self.measure,
                                  backend=backend)


def _extrapolated_counts(partial: ApssResult, thresholds, fraction: float
                         ) -> dict[float, float]:
    """Extrapolate final pair counts from a partially processed candidate list."""
    if fraction <= 0:
        return {t: 0.0 for t in thresholds}
    estimates = np.array([e.estimate for e in partial.evaluations])
    counts = {}
    for threshold in thresholds:
        seen = float(np.count_nonzero(estimates >= threshold))
        counts[float(threshold)] = seen / fraction
    return counts
