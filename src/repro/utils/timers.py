"""Lightweight timing helpers used by benchmark harnesses and introspection.

The dissertation reports per-phase runtime breakdowns (e.g. Figure 4.4, the
LAM localize/mine split, and Figure 2.9, sketch time versus processing time).
``PhaseTimer`` accumulates named phases so those breakdowns can be produced
without littering algorithm code with ad-hoc clocks.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["Stopwatch", "PhaseTimer"]


class Stopwatch:
    """A simple start/stop wall-clock stopwatch with an accumulating total."""

    def __init__(self) -> None:
        self._start: float | None = None
        self.total = 0.0

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("stopwatch already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch is not running")
        elapsed = time.perf_counter() - self._start
        self.total += elapsed
        self._start = None
        return elapsed

    @property
    def running(self) -> bool:
        return self._start is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else "stopped"
        return f"Stopwatch(total={self.total:.6f}s, {state})"


class PhaseTimer:
    """Accumulate wall-clock time per named phase.

    Example
    -------
    >>> timer = PhaseTimer()
    >>> with timer.phase("localize"):
    ...     pass
    >>> "localize" in timer.totals
    True
    """

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    @contextmanager
    def phase(self, name: str):
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Record *seconds* against *name* without running a context."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    @property
    def grand_total(self) -> float:
        return sum(self.totals.values())

    def fraction(self, name: str) -> float:
        """Fraction of the grand total spent in *name* (0 if nothing timed)."""
        total = self.grand_total
        if total == 0:
            return 0.0
        return self.totals.get(name, 0.0) / total

    def as_dict(self) -> dict[str, float]:
        return dict(self.totals)
