"""Small shared utilities: random-state handling, validation and timers."""

from repro.utils.random_state import ensure_rng, spawn_rngs
from repro.utils.timers import Stopwatch, PhaseTimer
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
    check_threshold,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Stopwatch",
    "PhaseTimer",
    "check_fraction",
    "check_positive_int",
    "check_threshold",
]
