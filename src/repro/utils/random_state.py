"""Helpers for deterministic, reproducible randomness.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  ``ensure_rng`` normalises all
three into a Generator so call sites never need to branch.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "resolve_seed", "spawn_rngs"]


def resolve_seed(seed_or_rng=None):
    """Normalise *seed_or_rng* into something reproducible-by-value.

    Integers pass through as ``int`` and Generators pass through untouched
    (the caller owns that stream).  ``None`` — the flaky-prone case — is
    replaced by a freshly drawn 32-bit integer seed, so a "random" run can
    still be replayed once the seed is reported; the dataset factories embed
    the resolved seed in their default dataset names for exactly that.
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if seed_or_rng is None:
        return int(np.random.SeedSequence().entropy % (2 ** 32))
    return int(seed_or_rng)


def ensure_rng(seed_or_rng=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed_or_rng*.

    Parameters
    ----------
    seed_or_rng:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, or an
        existing Generator (returned unchanged).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_rngs(seed_or_rng, count: int) -> list[np.random.Generator]:
    """Derive *count* independent child generators from one seed or generator.

    Independent streams matter when components (e.g. the K min-hash
    permutations) must be statistically independent yet reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = ensure_rng(seed_or_rng)
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
