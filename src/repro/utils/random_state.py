"""Helpers for deterministic, reproducible randomness.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  ``ensure_rng`` normalises all
three into a Generator so call sites never need to branch.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]


def ensure_rng(seed_or_rng=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed_or_rng*.

    Parameters
    ----------
    seed_or_rng:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, or an
        existing Generator (returned unchanged).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_rngs(seed_or_rng, count: int) -> list[np.random.Generator]:
    """Derive *count* independent child generators from one seed or generator.

    Independent streams matter when components (e.g. the K min-hash
    permutations) must be statistically independent yet reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = ensure_rng(seed_or_rng)
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
