"""Argument validation helpers shared across the library."""

from __future__ import annotations

__all__ = ["check_fraction", "check_positive_int", "check_threshold"]


def check_fraction(value: float, name: str, *, inclusive_low: bool = True,
                   inclusive_high: bool = True) -> float:
    """Validate that *value* lies in [0, 1] (bounds optionally exclusive)."""
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    high_ok = value <= 1.0 if inclusive_high else value < 1.0
    if not (low_ok and high_ok):
        raise ValueError(f"{name} must be a fraction in [0, 1], got {value!r}")
    return float(value)


def check_positive_int(value: int, name: str) -> int:
    """Validate that *value* is a positive integer."""
    if not isinstance(value, (int,)) or isinstance(value, bool) or value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return int(value)


def check_threshold(value: float, name: str = "threshold") -> float:
    """Validate a similarity threshold, which must lie in (0, 1]."""
    if not (0.0 < value <= 1.0):
        raise ValueError(f"{name} must lie in (0, 1], got {value!r}")
    return float(value)
