"""The 2-dimensional energy-reduction visualization model (Section 5.1.1).

Between two adjacent coordinates an assistant coordinate is inserted; every
polyline crosses it at a position ``z_i`` chosen to minimise a physics-style
energy with three terms:

* elastic    — ``alpha * (z_i - (x_i + y_i)/2)^2`` keeps lines straight;
* attraction — ``beta * (z_i - c_p)^2`` pulls a line towards its cluster's
  (pseudo-)center on the assistant coordinate;
* repulsion  — ``gamma * [w_prev (z_i - c_{p-1})^2 + w_next (z_i - c_{p+1})^2]``
  keeps adjacent clusters apart; formulated as attraction towards the two
  neighbouring centers, it is minimised midway between them.  The unweighted
  model uses ``w_prev = w_next = 1`` (Lemmas 1-2); the size-weighted variant
  (Corollaries 1-2) sets the weights from neighbouring cluster sizes so
  larger clusters get more room.

Algorithm 7 alternates closed-form position updates and pseudo-center updates
until the total energy stops decreasing; Lemma 3 guarantees pseudo-centers
track the true centers, and Theorem 1 guarantees convergence, which the test
suite checks as a monotone-energy invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_fraction

__all__ = ["EnergyModel", "EnergyResult"]


@dataclass
class EnergyResult:
    """Converged assistant-coordinate layout for one pair of coordinates."""

    positions: np.ndarray
    centers: np.ndarray
    cluster_order: list
    energy_history: list[float]
    iterations: int
    converged: bool

    @property
    def final_energy(self) -> float:
        return self.energy_history[-1] if self.energy_history else 0.0


class EnergyModel:
    """Energy-reduction layout of polylines on an assistant coordinate.

    Parameters
    ----------
    alpha, beta, gamma:
        Weights of the elastic, attraction and repulsion energies (the paper's
        experiments use 1/3 each).  Any non-negative weights with a positive
        sum are accepted and normalised to sum to one.
    weighted:
        Use the cluster-size-weighted repulsion variant (Corollaries 1-2).
    tolerance:
        Relative energy-decrease threshold at which iteration stops.
    max_iterations:
        Hard cap on iterations.
    """

    def __init__(self, alpha: float = 1 / 3, beta: float = 1 / 3,
                 gamma: float = 1 / 3, *, weighted: bool = False,
                 tolerance: float = 1e-4, max_iterations: int = 500) -> None:
        if alpha < 0 or beta < 0 or gamma < 0:
            raise ValueError("energy weights must be non-negative")
        total = alpha + beta + gamma
        if total <= 0:
            raise ValueError("at least one energy weight must be positive")
        self.alpha = alpha / total
        self.beta = beta / total
        self.gamma = gamma / total
        self.weighted = weighted
        check_fraction(tolerance, "tolerance", inclusive_low=False)
        self.tolerance = tolerance
        if max_iterations < 1:
            raise ValueError("max_iterations must be positive")
        self.max_iterations = max_iterations

    # ------------------------------------------------------------------ #
    def layout(self, x_values, y_values, clusters) -> EnergyResult:
        """Compute assistant-coordinate positions for every polyline.

        Parameters
        ----------
        x_values, y_values:
            Values of each item on the left and right coordinate.
        clusters:
            Cluster label of each item (any hashable labels).
        """
        x = np.asarray(x_values, dtype=float)
        y = np.asarray(y_values, dtype=float)
        labels = np.asarray(clusters)
        if not (len(x) == len(y) == len(labels)):
            raise ValueError("x_values, y_values and clusters must have equal length")
        if len(x) == 0:
            return EnergyResult(np.empty(0), np.empty(0), [], [], 0, True)

        midpoints = (x + y) / 2.0

        # Clusters are ranked by their initial center on the assistant axis.
        unique_labels = list(dict.fromkeys(labels.tolist()))
        initial_centers = {label: float(midpoints[labels == label].mean())
                           for label in unique_labels}
        ordered_labels = sorted(unique_labels, key=lambda lab: initial_centers[lab])
        cluster_of = {label: i for i, label in enumerate(ordered_labels)}
        members = [np.where(labels == label)[0] for label in ordered_labels]
        sizes = np.array([len(m) for m in members], dtype=float)
        item_cluster = np.array([cluster_of[label] for label in labels.tolist()])

        centers = np.array([initial_centers[label] for label in ordered_labels])
        z = midpoints.copy()

        energy_history = [self._total_energy(z, midpoints, centers, members, sizes)]
        converged = False
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            z = self._update_positions(midpoints, centers, item_cluster, sizes)
            centers = self._update_centers(z, centers, members, sizes)
            energy = self._total_energy(z, midpoints, centers, members, sizes)
            previous = energy_history[-1]
            energy_history.append(energy)
            if previous - energy <= self.tolerance * max(abs(previous), 1e-12):
                converged = True
                break

        return EnergyResult(positions=z, centers=centers,
                            cluster_order=ordered_labels,
                            energy_history=energy_history,
                            iterations=iterations, converged=converged)

    # ------------------------------------------------------------------ #
    # Repulsion weights
    # ------------------------------------------------------------------ #
    def _repulsion_weights(self, sizes: np.ndarray, index: int) -> tuple[float, float]:
        """(w_prev, w_next) for an interior cluster's repulsion term.

        Unweighted model: both 1 (Lemma 1 denominator alpha + beta + 2 gamma).
        Weighted model: the weight towards a neighbouring center is
        proportional to the *other* neighbour's size (Corollary 1), so the
        two weights sum to one and bigger clusters push the line further away.
        """
        if not self.weighted:
            return 1.0, 1.0
        size_prev = sizes[index - 1]
        size_next = sizes[index + 1]
        total = size_prev + size_next
        if total == 0:
            return 0.5, 0.5
        return float(size_next / total), float(size_prev / total)

    # ------------------------------------------------------------------ #
    # Update rules (Lemma 1 / Corollary 1 and Lemma 2 / Corollary 2)
    # ------------------------------------------------------------------ #
    def _update_positions(self, midpoints: np.ndarray, centers: np.ndarray,
                          item_cluster: np.ndarray, sizes: np.ndarray) -> np.ndarray:
        alpha, beta, gamma = self.alpha, self.beta, self.gamma
        n_clusters = len(centers)
        new_positions = midpoints.copy()
        for index in range(n_clusters):
            selector = item_cluster == index
            own_center = centers[index]
            interior = 0 < index < n_clusters - 1
            if not interior or gamma == 0.0:
                denominator = alpha + beta
                if denominator > 0:
                    new_positions[selector] = (
                        alpha * midpoints[selector] + beta * own_center) / denominator
                continue
            w_prev, w_next = self._repulsion_weights(sizes, index)
            denominator = alpha + beta + gamma * (w_prev + w_next)
            new_positions[selector] = (
                alpha * midpoints[selector]
                + beta * own_center
                + gamma * (w_prev * centers[index - 1] + w_next * centers[index + 1])
            ) / denominator
        return new_positions

    def _update_centers(self, positions: np.ndarray, centers: np.ndarray,
                        members: list[np.ndarray], sizes: np.ndarray) -> np.ndarray:
        beta, gamma = self.beta, self.gamma
        n_clusters = len(centers)
        new_centers = centers.copy()
        for index in range(n_clusters):
            own = members[index]
            numerator = beta * positions[own].sum()
            denominator = beta * len(own)
            # Center c_p also appears in the repulsion energy of the two
            # neighbouring clusters' members — but only when those neighbours
            # are interior clusters (boundary clusters carry no repulsion),
            # which is exactly the p' = 0 / p'' = 0 cases of Lemma 2.
            if gamma > 0:
                for neighbor in (index - 1, index + 1):
                    if not 0 < neighbor < n_clusters - 1:
                        continue
                    w_prev, w_next = self._repulsion_weights(sizes, neighbor)
                    weight = w_next if neighbor < index else w_prev
                    neighbor_members = members[neighbor]
                    numerator += gamma * weight * positions[neighbor_members].sum()
                    denominator += gamma * weight * len(neighbor_members)
            if denominator > 0:
                new_centers[index] = numerator / denominator
        return new_centers

    # ------------------------------------------------------------------ #
    def _total_energy(self, positions: np.ndarray, midpoints: np.ndarray,
                      centers: np.ndarray, members: list[np.ndarray],
                      sizes: np.ndarray) -> float:
        alpha, beta, gamma = self.alpha, self.beta, self.gamma
        n_clusters = len(centers)
        energy = float(alpha * np.sum((positions - midpoints) ** 2))
        for index in range(n_clusters):
            own = members[index]
            energy += float(beta * np.sum((positions[own] - centers[index]) ** 2))
            if gamma == 0 or not 0 < index < n_clusters - 1:
                continue
            w_prev, w_next = self._repulsion_weights(sizes, index)
            energy += float(gamma * np.sum(
                w_prev * (positions[own] - centers[index - 1]) ** 2
                + w_next * (positions[own] - centers[index + 1]) ** 2))
        return energy
