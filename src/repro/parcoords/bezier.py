"""Bézier curve geometry for smoothly bent polylines (Section 5.1.1).

Instead of bending a polyline sharply at the assistant coordinate, the
visualization connects the left point, the assistant-coordinate point and the
right point with a quadratic Bézier curve, which softens the distortion the
assistant coordinate introduces.
"""

from __future__ import annotations

import numpy as np

__all__ = ["quadratic_bezier", "polyline_with_assistant"]


def quadratic_bezier(start, control, end, n_points: int = 32) -> np.ndarray:
    """Sample a quadratic Bézier curve defined by three 2-D points.

    Returns an ``(n_points, 2)`` array from *start* to *end*; the curve is
    pulled towards *control* (it passes through the control point's influence
    at t = 0.5 but not through the point itself, per the Bézier definition).
    """
    if n_points < 2:
        raise ValueError("n_points must be at least 2")
    start = np.asarray(start, dtype=float)
    control = np.asarray(control, dtype=float)
    end = np.asarray(end, dtype=float)
    if start.shape != (2,) or control.shape != (2,) or end.shape != (2,):
        raise ValueError("points must be 2-D")
    t = np.linspace(0.0, 1.0, n_points)[:, None]
    return ((1 - t) ** 2) * start + 2 * (1 - t) * t * control + (t ** 2) * end


def polyline_with_assistant(left_x: float, left_value: float, right_x: float,
                            right_value: float, assistant_value: float,
                            n_points: int = 32, curved: bool = True) -> np.ndarray:
    """Geometry of one item's line between two coordinates with an assistant.

    The assistant coordinate sits halfway between the two coordinate axes.
    With ``curved=True`` the three points are joined by a quadratic Bézier
    curve whose control point is lifted so the curve passes through the
    assistant position at its midpoint; otherwise two straight segments are
    returned.
    """
    assistant_x = (left_x + right_x) / 2.0
    start = np.array([left_x, left_value])
    end = np.array([right_x, right_value])
    if not curved:
        middle = np.array([assistant_x, assistant_value])
        return np.vstack([start, middle, end])
    # A quadratic Bézier passes through (start + end)/4 + control/2 at t=0.5;
    # choose the control point so that midpoint equals the assistant position.
    control_y = 2.0 * assistant_value - (left_value + right_value) / 2.0
    control = np.array([assistant_x, control_y])
    return quadratic_bezier(start, control, end, n_points=n_points)
