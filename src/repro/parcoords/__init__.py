"""Enhanced parallel-coordinates visualization model (Chapter 5)."""

from repro.parcoords.crossings import count_crossings, count_crossings_brute_force, crossing_matrix
from repro.parcoords.ordering import (
    order_dimensions_exact,
    order_dimensions_mst,
    order_dimensions_greedy,
    order_dimensions,
    path_cost,
)
from repro.parcoords.energy import EnergyModel, EnergyResult
from repro.parcoords.bezier import quadratic_bezier
from repro.parcoords.model import ParallelCoordinatesModel, ParallelCoordinatesLayout

__all__ = [
    "count_crossings",
    "count_crossings_brute_force",
    "crossing_matrix",
    "order_dimensions_exact",
    "order_dimensions_mst",
    "order_dimensions_greedy",
    "order_dimensions",
    "path_cost",
    "EnergyModel",
    "EnergyResult",
    "quadratic_bezier",
    "ParallelCoordinatesModel",
    "ParallelCoordinatesLayout",
]
