"""Dimension ordering to minimise (or maximise) crossings (Section 5.2.2).

Finding the coordinate order with the fewest total crossings is the minimum
weighted Hamiltonian path problem on the complete graph whose edge weights are
the pairwise crossing counts — NP-hard in general.  Three solvers are
provided:

* ``order_dimensions_exact`` — branch-free exhaustive search, for small k
  (used to validate the approximation and for Table 5.2's "Order-ex" column);
* ``order_dimensions_mst`` — the chapter's linear-time 2-approximation: build
  a minimum spanning tree and read off a DFS preorder (the classic metric-TSP
  construction);
* ``order_dimensions_greedy`` — nearest-neighbour chaining, a cheap heuristic
  included for comparison.

A prescribed partial order (some coordinates pinned) is supported by fixing
those positions and ordering the rest around them.
"""

from __future__ import annotations

import itertools

import numpy as np

__all__ = ["path_cost", "order_dimensions_exact", "order_dimensions_mst",
           "order_dimensions_greedy", "order_dimensions"]


def path_cost(order, weights: np.ndarray) -> float:
    """Total weight of consecutive pairs along *order*."""
    order = list(order)
    return float(sum(weights[order[i], order[i + 1]] for i in range(len(order) - 1)))


def _validate_weights(weights: np.ndarray) -> np.ndarray:
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
        raise ValueError("weights must be a square matrix")
    if not np.allclose(weights, weights.T):
        raise ValueError("weights must be symmetric")
    return weights


def order_dimensions_exact(weights: np.ndarray, maximize: bool = False) -> list[int]:
    """Optimal ordering by exhaustive search (factorial; small k only)."""
    weights = _validate_weights(weights)
    k = weights.shape[0]
    if k > 10:
        raise ValueError("exact ordering is limited to 10 dimensions")
    if k == 0:
        return []
    best_order = list(range(k))
    best_cost = path_cost(best_order, weights)
    better = (lambda a, b: a > b) if maximize else (lambda a, b: a < b)
    # Fix the first element's relative direction by only enumerating orders
    # whose first entry is smaller than the last (a path reversed is the same
    # path), halving the search.
    for permutation in itertools.permutations(range(k)):
        if permutation[0] > permutation[-1]:
            continue
        cost = path_cost(permutation, weights)
        if better(cost, best_cost):
            best_cost = cost
            best_order = list(permutation)
    return best_order


def order_dimensions_mst(weights: np.ndarray, maximize: bool = False) -> list[int]:
    """2-approximation via a minimum (maximum) spanning tree DFS preorder."""
    weights = _validate_weights(weights)
    k = weights.shape[0]
    if k == 0:
        return []
    if k == 1:
        return [0]
    effective = -weights if maximize else weights

    # Prim's algorithm for the MST over the complete graph.
    in_tree = [False] * k
    parent = [-1] * k
    key = np.full(k, np.inf)
    key[0] = 0.0
    adjacency: dict[int, list[int]] = {i: [] for i in range(k)}
    for _ in range(k):
        candidates = [i for i in range(k) if not in_tree[i]]
        node = min(candidates, key=lambda i: key[i])
        in_tree[node] = True
        if parent[node] >= 0:
            adjacency[parent[node]].append(node)
            adjacency[node].append(parent[node])
        for other in range(k):
            if not in_tree[other] and effective[node, other] < key[other]:
                key[other] = effective[node, other]
                parent[other] = node

    # DFS preorder of the tree gives the Hamiltonian-path approximation.
    order: list[int] = []
    visited = [False] * k
    stack = [0]
    while stack:
        node = stack.pop()
        if visited[node]:
            continue
        visited[node] = True
        order.append(node)
        # Visit cheaper children first so the preorder follows light edges.
        children = sorted((child for child in adjacency[node] if not visited[child]),
                          key=lambda child: effective[node, child], reverse=True)
        stack.extend(children)
    return order


def order_dimensions_greedy(weights: np.ndarray, maximize: bool = False) -> list[int]:
    """Nearest-neighbour chaining from the lightest (heaviest) edge."""
    weights = _validate_weights(weights)
    k = weights.shape[0]
    if k == 0:
        return []
    if k == 1:
        return [0]
    effective = -weights if maximize else weights
    masked = effective.astype(float).copy()
    np.fill_diagonal(masked, np.inf)
    start = int(np.unravel_index(np.argmin(masked), masked.shape)[0])
    order = [start]
    remaining = set(range(k)) - {start}
    while remaining:
        last = order[-1]
        next_node = min(remaining, key=lambda node: effective[last, node])
        order.append(next_node)
        remaining.remove(next_node)
    return order


def order_dimensions(weights: np.ndarray, method: str = "mst",
                     maximize: bool = False,
                     pinned: dict[int, int] | None = None) -> list[int]:
    """Order dimensions by the named method, honouring pinned positions.

    Parameters
    ----------
    weights:
        Pairwise crossing-count matrix.
    method:
        ``"exact"``, ``"mst"`` or ``"greedy"``.
    maximize:
        Maximise crossings instead of minimising them (useful when negative
        correlations are the interesting signal).
    pinned:
        Optional ``{position: dimension}`` constraints; the named dimensions
        are fixed at those positions and the remaining dimensions are ordered
        by the chosen method and filled into the free positions in order.
    """
    solvers = {
        "exact": order_dimensions_exact,
        "mst": order_dimensions_mst,
        "greedy": order_dimensions_greedy,
    }
    try:
        solver = solvers[method]
    except KeyError:
        raise KeyError(f"unknown ordering method {method!r}; known: {sorted(solvers)}"
                       ) from None
    weights = _validate_weights(weights)
    k = weights.shape[0]
    if not pinned:
        return solver(weights, maximize=maximize)

    for position, dimension in pinned.items():
        if not (0 <= position < k and 0 <= dimension < k):
            raise ValueError("pinned positions and dimensions must be in range")
    pinned_dims = set(pinned.values())
    if len(pinned_dims) != len(pinned):
        raise ValueError("a dimension may be pinned to only one position")

    free_dims = [d for d in range(k) if d not in pinned_dims]
    if free_dims:
        sub_weights = weights[np.ix_(free_dims, free_dims)]
        sub_order = solver(sub_weights, maximize=maximize)
        ordered_free = [free_dims[i] for i in sub_order]
    else:
        ordered_free = []

    result: list[int | None] = [None] * k
    for position, dimension in pinned.items():
        result[position] = dimension
    iterator = iter(ordered_free)
    for position in range(k):
        if result[position] is None:
            result[position] = next(iterator)
    return [int(d) for d in result]
