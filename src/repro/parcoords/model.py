"""The full parallel-coordinates model: ordering plus energy layout.

``ParallelCoordinatesModel`` is the user-facing object of Chapter 5: give it a
moderate-dimensional dataset with cluster labels and it

1. normalises each dimension to [0, 1] (standard parallel-coordinates axes);
2. counts pairwise crossings between all dimensions and chooses a dimension
   order (exact / MST 2-approximation / greedy, optionally honouring a
   prescribed partial order);
3. runs the energy-reduction model between every pair of adjacent coordinates
   to place the assistant-coordinate points;
4. exposes the resulting polyline geometry and the before/after crossing
   counts and timing needed by the Chapter 5 experiments (Figures 5.4–5.10
   and Table 5.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.vectors import VectorDataset
from repro.parcoords.bezier import polyline_with_assistant
from repro.parcoords.crossings import count_crossings, crossing_matrix
from repro.parcoords.energy import EnergyModel, EnergyResult
from repro.parcoords.ordering import order_dimensions, path_cost

__all__ = ["ParallelCoordinatesLayout", "ParallelCoordinatesModel"]


@dataclass
class ParallelCoordinatesLayout:
    """Everything needed to draw (or evaluate) one parallel-coordinates view."""

    dimension_order: list[int]
    normalized: np.ndarray
    clusters: np.ndarray
    energy_results: list[EnergyResult]
    crossings_before: int
    crossings_after_ordering: int
    ordering_seconds: float
    energy_seconds: float
    max_energy_iterations: int
    metadata: dict = field(default_factory=dict)

    def assistant_positions(self) -> np.ndarray:
        """(n_items, n_dims - 1) assistant-coordinate positions per gap."""
        if not self.energy_results:
            return np.empty((self.normalized.shape[0], 0))
        return np.column_stack([result.positions for result in self.energy_results])

    def polyline(self, item: int, curved: bool = True,
                 n_points: int = 16) -> np.ndarray:
        """Drawable geometry for one item across all ordered coordinates."""
        order = self.dimension_order
        pieces = []
        for gap in range(len(order) - 1):
            left_value = self.normalized[item, order[gap]]
            right_value = self.normalized[item, order[gap + 1]]
            assistant = (self.energy_results[gap].positions[item]
                         if self.energy_results else (left_value + right_value) / 2)
            piece = polyline_with_assistant(float(gap), float(left_value),
                                            float(gap + 1), float(right_value),
                                            float(assistant), curved=curved,
                                            n_points=n_points)
            pieces.append(piece if gap == 0 else piece[1:])
        if not pieces:
            column = self.normalized[item, order[0]] if order else 0.0
            return np.array([[0.0, column]])
        return np.vstack(pieces)


class ParallelCoordinatesModel:
    """Builds de-cluttered parallel-coordinates layouts for clustered data.

    Parameters
    ----------
    ordering_method:
        ``"mst"`` (the linear 2-approximation), ``"exact"`` or ``"greedy"``.
    maximize_crossings:
        Order to *maximise* crossings instead (for negative-correlation
        hunting).
    energy_model:
        Configured :class:`EnergyModel`; defaults to equal 1/3 weights.
    """

    def __init__(self, ordering_method: str = "mst", *,
                 maximize_crossings: bool = False,
                 energy_model: EnergyModel | None = None) -> None:
        self.ordering_method = ordering_method
        self.maximize_crossings = maximize_crossings
        self.energy_model = energy_model or EnergyModel()

    # ------------------------------------------------------------------ #
    def layout(self, data, clusters=None, *, pinned: dict[int, int] | None = None,
               run_energy: bool = True) -> ParallelCoordinatesLayout:
        """Compute a layout for *data* (array or VectorDataset) and labels."""
        matrix, labels = self._coerce(data, clusters)
        normalized = self._normalize(matrix)
        n_dimensions = normalized.shape[1]

        ordering_start = time.perf_counter()
        weights = crossing_matrix(normalized)
        natural_order = list(range(n_dimensions))
        order = order_dimensions(weights, method=self.ordering_method,
                                 maximize=self.maximize_crossings, pinned=pinned)
        ordering_seconds = time.perf_counter() - ordering_start

        crossings_before = int(path_cost(natural_order, weights))
        crossings_after = int(path_cost(order, weights))

        energy_results: list[EnergyResult] = []
        energy_seconds = 0.0
        max_iterations = 0
        if run_energy and n_dimensions >= 2:
            energy_start = time.perf_counter()
            for gap in range(len(order) - 1):
                result = self.energy_model.layout(normalized[:, order[gap]],
                                                  normalized[:, order[gap + 1]],
                                                  labels)
                energy_results.append(result)
                max_iterations = max(max_iterations, result.iterations)
            energy_seconds = time.perf_counter() - energy_start

        return ParallelCoordinatesLayout(
            dimension_order=order, normalized=normalized, clusters=labels,
            energy_results=energy_results, crossings_before=crossings_before,
            crossings_after_ordering=crossings_after,
            ordering_seconds=ordering_seconds, energy_seconds=energy_seconds,
            max_energy_iterations=max_iterations,
            metadata={"ordering_method": self.ordering_method,
                      "maximize": self.maximize_crossings})

    # ------------------------------------------------------------------ #
    def compare_orderings(self, data, clusters=None) -> dict[str, dict[str, float]]:
        """Crossing cost and runtime of the exact, MST and greedy orderings.

        The exact solver is skipped above 10 dimensions (it is factorial);
        this is the data behind Table 5.2's order-time columns.
        """
        matrix, _ = self._coerce(data, clusters)
        normalized = self._normalize(matrix)
        weights = crossing_matrix(normalized)
        results: dict[str, dict[str, float]] = {}
        for method in ("exact", "mst", "greedy"):
            if method == "exact" and weights.shape[0] > 10:
                continue
            start = time.perf_counter()
            order = order_dimensions(weights, method=method,
                                     maximize=self.maximize_crossings)
            seconds = time.perf_counter() - start
            results[method] = {"crossings": path_cost(order, weights),
                               "seconds": seconds}
        return results

    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(data, clusters) -> tuple[np.ndarray, np.ndarray]:
        if isinstance(data, VectorDataset):
            matrix = data.to_dense()
            if clusters is None:
                clusters = data.labels
        else:
            matrix = np.asarray(data, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("data must be 2-D (items x dimensions)")
        if clusters is None:
            clusters = np.zeros(matrix.shape[0], dtype=int)
        labels = np.asarray(clusters)
        if len(labels) != matrix.shape[0]:
            raise ValueError("clusters must have one label per item")
        return matrix, labels

    @staticmethod
    def _normalize(matrix: np.ndarray) -> np.ndarray:
        low = matrix.min(axis=0)
        span = matrix.max(axis=0) - low
        span[span == 0] = 1.0
        return (matrix - low) / span
