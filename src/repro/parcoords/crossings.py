"""Crossing counting between adjacent parallel coordinates (Algorithm 8).

A crossing between two items on adjacent coordinates x and y is an order
change: ``x_i < x_j`` but ``y_i > y_j``.  Counting order changes is counting
inversions, which the chapter does in O(n log n) by inserting items in
ascending y-order into a balanced structure keyed by x-rank and asking, for
each insertion, how many already-inserted items have a larger x-rank.  A
binary indexed tree over x-ranks provides exactly that query; a quadratic
brute-force version is kept as the test oracle.
"""

from __future__ import annotations

import numpy as np

__all__ = ["count_crossings", "count_crossings_brute_force", "crossing_matrix"]


class _BinaryIndexedTree:
    """Prefix-sum tree over ``size`` integer positions (1-indexed)."""

    def __init__(self, size: int) -> None:
        self.size = size
        self._tree = [0] * (size + 1)

    def add(self, position: int, value: int = 1) -> None:
        index = position + 1
        while index <= self.size:
            self._tree[index] += value
            index += index & (-index)

    def prefix_sum(self, position: int) -> int:
        """Sum of values at positions [0, position]."""
        index = position + 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total


def count_crossings(x_values, y_values) -> int:
    """Number of pairwise order changes between two adjacent coordinates.

    A pair (i, j) crosses when ``(x_i - x_j) * (y_i - y_j) < 0``; ties on
    either coordinate do not cross.  Runs in O(n log n) via a binary indexed
    tree over dense x-ranks, processing items in ascending-y groups so that
    equal-y items never count against each other.
    """
    x_values = np.asarray(x_values, dtype=float)
    y_values = np.asarray(y_values, dtype=float)
    if x_values.shape != y_values.shape:
        raise ValueError("x_values and y_values must have the same length")
    n = len(x_values)
    if n < 2:
        return 0

    # Dense x-ranks: equal values share a rank so they are never "greater".
    _, x_ranks = np.unique(x_values, return_inverse=True)
    n_ranks = int(x_ranks.max()) + 1
    y_order = np.argsort(y_values, kind="stable")

    tree = _BinaryIndexedTree(n_ranks)
    crossings = 0
    inserted = 0
    position = 0
    while position < n:
        # Collect the run of items sharing this y value.
        group_end = position
        current_y = y_values[y_order[position]]
        while group_end < n and y_values[y_order[group_end]] == current_y:
            group_end += 1
        group = y_order[position:group_end]
        # Query first (equal-y items must not count), then insert the group.
        for item in group:
            rank = int(x_ranks[item])
            crossings += inserted - tree.prefix_sum(rank)
        for item in group:
            tree.add(int(x_ranks[item]))
        inserted += len(group)
        position = group_end
    return int(crossings)


def count_crossings_brute_force(x_values, y_values) -> int:
    """O(n^2) reference implementation of the crossing count."""
    x_values = np.asarray(x_values, dtype=float)
    y_values = np.asarray(y_values, dtype=float)
    if x_values.shape != y_values.shape:
        raise ValueError("x_values and y_values must have the same length")
    n = len(x_values)
    crossings = 0
    for i in range(n):
        for j in range(i + 1, n):
            x_cmp = np.sign(x_values[i] - x_values[j])
            y_cmp = np.sign(y_values[i] - y_values[j])
            if x_cmp * y_cmp < 0:
                crossings += 1
    return crossings


def crossing_matrix(data) -> np.ndarray:
    """Pairwise crossing counts between every pair of dimensions.

    ``data`` is an ``(n_items, n_dimensions)`` array; entry (a, b) of the
    result is the number of crossings if coordinates a and b were adjacent.
    The matrix is symmetric with a zero diagonal — it is the weight matrix of
    the complete graph the dimension-ordering step searches over.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError("data must be a 2-D (items x dimensions) array")
    n_dimensions = data.shape[1]
    matrix = np.zeros((n_dimensions, n_dimensions), dtype=np.int64)
    for a in range(n_dimensions):
        for b in range(a + 1, n_dimensions):
            crossings = count_crossings(data[:, a], data[:, b])
            matrix[a, b] = crossings
            matrix[b, a] = crossings
    return matrix
