"""Setuptools entry point.

A classic setup.py (rather than a PEP 517 pyproject build) is used because the
target environment has no network access and no `wheel` package, so editable
installs must go through the legacy `setup.py develop` path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of PLASMA-HD: probing the lattice structure and "
        "makeup of high-dimensional data"
    ),
    author="PLASMA-HD reproduction authors",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy", "scipy", "networkx"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
