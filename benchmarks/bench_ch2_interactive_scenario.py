"""Figures 2.3-2.4 and Section 2.2.2: the two-probe interactive scenario.

The user probes at t1 = 0.8, sees the cumulative APSS estimate, notices the
knee, probes at t1 = 0.5, and ends up with a close approximation of the
ground-truth pair-count curve — in far less time than the brute-force sweep
over every threshold (an 83% saving in the paper's example).
"""

import numpy as np

from repro.core import PlasmaSession
from repro.core.apss_graph import exact_reference_counts
from repro.lsh.bayeslsh import BayesLSHConfig


def test_figures_2_3_2_4_interactive_two_probe_session(benchmark, record, wine_like):
    grid = [round(t, 2) for t in np.arange(0.1, 1.0, 0.1)]
    # Ground truth through the APSS engine (one blocked search covers the grid).
    ground_truth = exact_reference_counts(wine_like, grid)

    def interactive_session():
        session = PlasmaSession(wine_like, n_hashes=192, seed=3,
                                config=BayesLSHConfig(max_hashes=192))
        first = session.probe(0.8)
        curve_after_first = session.cumulative_graph(grid).expected_counts()
        suggestion = session.suggest_threshold(grid)
        second = session.probe(0.5)
        curve_after_second = session.cumulative_graph(grid).expected_counts()
        return session, first, second, suggestion, curve_after_first, curve_after_second

    (session, first, second, suggestion, curve_one,
     curve_two) = benchmark.pedantic(interactive_session, rounds=1, iterations=1)

    sweep_counts, sweep_seconds = session.brute_force_sweep(grid)
    interactive_seconds = first.total_seconds + second.total_seconds
    saving = 1.0 - interactive_seconds / sweep_seconds

    def mean_relative_error(curve):
        errors = []
        for threshold, exact in ground_truth.items():
            if exact > 0:
                errors.append(abs(curve[threshold] - exact) / exact)
        return float(np.mean(errors))

    record("figures_2_3_2_4_interactive_scenario", {
        "ground_truth": ground_truth,
        "estimate_after_first_probe": curve_one,
        "estimate_after_second_probe": curve_two,
        "suggested_second_threshold": suggestion,
        "interactive_seconds": interactive_seconds,
        "brute_force_sweep_seconds": sweep_seconds,
        "time_saving": saving,
        "error_after_first": mean_relative_error(curve_one),
        "error_after_second": mean_relative_error(curve_two),
    })

    # The second probe refines the curve (or leaves it as accurate as before).
    assert mean_relative_error(curve_two) <= mean_relative_error(curve_one) + 0.05
    # After two probes the estimate tracks ground truth reasonably closely.
    assert mean_relative_error(curve_two) < 0.5
    # Two interactive probes are much cheaper than the 9-threshold sweep
    # (the paper reports an 83% saving; the shape — a large saving — is what
    # must hold here).
    assert saving > 0.5
    # The system suggests exploring below the first probe, where the knee is.
    assert suggestion < 0.8
