"""Tables 4.3, 4.4 and 4.6: transactional and web-graph dataset characteristics."""

from repro.datasets import dataset_spec, load_transactions

FIMI_NAMES = ["accidents", "adult_trans", "mushroom_trans", "kosarak",
              "pageblocks", "tictactoe"]
WEBGRAPH_NAMES = ["eu2005", "it2004", "uk2006"]


def test_tables_4_3_4_4_4_6_dataset_characteristics(benchmark, record):
    def build():
        rows = []
        for name in FIMI_NAMES + WEBGRAPH_NAMES:
            database = load_transactions(name, max_rows=800, seed=3)
            spec = dataset_spec(name)
            row = database.characteristics()
            row["kind"] = spec.kind
            row["paper_rows"] = spec.paper_rows
            rows.append(row)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    record("tables_4_3_4_4_4_6_datasets", rows)

    by_name = {row["name"]: row for row in rows}
    # Web graphs: label universe equals the node count (adjacency transactions).
    for name in WEBGRAPH_NAMES:
        assert by_name[name]["labels"] == by_name[name]["transactions"]
        assert by_name[name]["kind"] == "webgraph"
    # FIMI-style data: many more transactions than labels, density ordering
    # consistent with Table 4.4 (kosarak sparse, mushroom dense).
    assert by_name["kosarak"]["avg_len"] < by_name["mushroom_trans"]["avg_len"]
    # Documented paper sizes keep their ordering (kosarak ~1M >> tictactoe ~1K).
    assert by_name["kosarak"]["paper_rows"] > by_name["tictactoe"]["paper_rows"]
