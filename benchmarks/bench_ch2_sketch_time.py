"""Figure 2.9: time to generate initial sketches versus processing time.

Sketch generation is a start-up cost paid before any incremental output can
be shown; its share of the total runtime varies by dataset and motivates
caching the sketches across probes.
"""

from repro.core import PlasmaSession
from repro.lsh.bayeslsh import BayesLSHConfig


def test_figure_2_9_initial_sketch_time(benchmark, record, wine_like,
                                        twitter_like, rcv1_like):
    datasets = {"wine": wine_like, "twitter": twitter_like, "rcv1": rcv1_like}

    def measure():
        rows = []
        for name, dataset in datasets.items():
            session = PlasmaSession(dataset, n_hashes=160, seed=13,
                                    config=BayesLSHConfig(max_hashes=160))
            result = session.probe(0.9)
            rows.append({
                "dataset": name,
                "sketch_seconds": result.sketch_seconds,
                "processing_seconds": result.processing_seconds,
                "sketch_fraction": result.sketch_fraction,
            })
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    record("figure_2_9_sketch_time", rows)

    for row in rows:
        # Sketching is a real but minority share of the first probe.
        assert row["sketch_seconds"] > 0
        assert 0.0 < row["sketch_fraction"] < 0.9
