"""Figures 3.1-3.6: graph measures across densities, real data versus the
Erdos-Renyi and random geometric generation models.

The headline observation: data-driven densifying graphs carry much more local
structure (triangles, clustering) than ER graphs of the same size, with the
geometric model sitting in between / closer to the data.
"""

import numpy as np

from repro.growth import build_densifying_series, edge_count_schedule

MEASURES = ["triangle_count", "average_clustering", "mean_core_number",
            "largest_connected_component", "number_connected_components",
            "mean_degree"]


def test_figures_3_1_to_3_6_measures_vs_generation_models(benchmark, record,
                                                          growth_dataset):
    n_nodes = growth_dataset.n_rows
    schedule = edge_count_schedule(n_nodes, n_steps=6)

    def compute():
        series = {
            "data": build_densifying_series(growth_dataset, schedule),
            "erdos_renyi": build_densifying_series(n_nodes, schedule,
                                                   model="erdos_renyi", seed=1),
            "random_geometric": build_densifying_series(n_nodes, schedule,
                                                        model="random_geometric",
                                                        seed=1),
        }
        curves = {}
        for source, dens_series in series.items():
            curves[source] = {measure: dens_series.measures(measure)
                              for measure in MEASURES}
        return curves

    curves = benchmark.pedantic(compute, rounds=1, iterations=1)
    record("figures_3_1_3_6_measures_vs_models", {
        "edge_counts": schedule, "curves": curves})

    data = curves["data"]
    er = curves["erdos_renyi"]
    geom = curves["random_geometric"]

    # Real (clustered) data has far more triangles and clustering than an ER
    # graph with the same number of edges, at every density.
    for step in range(2, len(schedule)):
        assert data["triangle_count"][step] > er["triangle_count"][step]
        assert data["average_clustering"][step] > er["average_clustering"][step]
    # The geometric model captures local structure better than ER.
    assert sum(geom["triangle_count"]) > sum(er["triangle_count"])
    # Connectivity measures grow monotonically with density for every source.
    for source_curves in curves.values():
        lcc = source_curves["largest_connected_component"]
        assert all(later >= earlier for earlier, later in zip(lcc, lcc[1:]))
        components = source_curves["number_connected_components"]
        assert all(later <= earlier for earlier, later in zip(components,
                                                              components[1:]))
