"""Figure 4.5: LAM5 compression ratio under the Area and RC utilities.

The two utilities produce very similar compression (RC occasionally a touch
better), so Area — the cheaper one — is the default.
"""

from repro.lam import LAM


def test_figure_4_5_utility_compression(benchmark, record, planted_db, webgraph_db):
    datasets = {"mushroom_like": planted_db, "eu_like": webgraph_db}

    def run():
        ratios = {}
        for name, database in datasets.items():
            for utility in ("area", "rc"):
                result = LAM(n_passes=5, utility=utility, max_partition_size=100,
                             seed=0).run(database)
                ratios[f"{name}/{utility}"] = result.compression_ratio
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    record("figure_4_5_utility_compression", ratios)

    for name in ("mushroom_like", "eu_like"):
        area = ratios[f"{name}/area"]
        rc = ratios[f"{name}/rc"]
        assert area > 1.0 and rc > 1.0
        # Differences between the two utilities are marginal (paper: "largely
        # negligible").
        assert abs(area - rc) / max(area, rc) < 0.25
