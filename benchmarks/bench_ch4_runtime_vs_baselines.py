"""Figure 4.7: execution time of LAM versus Krimp, Slim and CDB-Hyper.

LAM is one to several orders of magnitude faster than the candidate-
enumeration based approaches; at this scaled-down size the required shape is
"LAM is clearly the fastest, usually by >5x".
"""

import time

from repro.lam import LAM, cdb_compress, krimp_compress, slim_compress


def test_figure_4_7_runtime_vs_baselines(benchmark, record, planted_db):
    support = 30

    def run():
        start = time.perf_counter()
        LAM(n_passes=5, max_partition_size=100, seed=0).run(planted_db)
        lam_seconds = time.perf_counter() - start
        krimp = krimp_compress(planted_db, min_support=support, max_length=10)
        slim = slim_compress(planted_db, max_iterations=120)
        cdb = cdb_compress(planted_db, min_support=support, max_length=10)
        return {
            "lam5": lam_seconds,
            "krimp": krimp.seconds,
            "slim": slim.seconds,
            "cdb": cdb.seconds,
        }

    seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    record("figure_4_7_runtime_vs_baselines", seconds)

    assert seconds["lam5"] < seconds["krimp"]
    assert seconds["lam5"] < seconds["cdb"]
    assert seconds["lam5"] < seconds["slim"] * 1.5
    # LAM is the clear winner against the candidate-based miners.
    assert min(seconds["krimp"], seconds["cdb"]) / seconds["lam5"] > 3.0
