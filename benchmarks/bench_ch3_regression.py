"""Figures 3.12-3.17: regression predictions of triangle counts."""

from repro.growth import GraphGrowthEstimator


def test_figures_3_12_to_3_17_regression(benchmark, record, growth_dataset):
    def run():
        results = {}
        for method in ("random", "concentrated", "stratified"):
            estimator = GraphGrowthEstimator(
                measure="triangle_count", sampling_method=method,
                prediction_method="regression", sample_size=70, seed=5)
            results[method] = estimator.run(growth_dataset)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    record("figures_3_12_3_17_regression", {
        method: {
            "predicted": estimate.predicted_values,
            "actual": estimate.actual_values,
            "mean_log_error": estimate.error()[0],
        } for method, estimate in results.items()})

    for method, estimate in results.items():
        mean_error, _ = estimate.error()
        # Regression errors in the paper are a few percent (0.3% - 3.3%);
        # allow a wider band at this scale but demand the same order.
        assert mean_error < 0.2, f"{method} error too high: {mean_error}"
