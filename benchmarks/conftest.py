"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the dissertation at
laptop scale: it computes the same rows/series the paper reports, asserts the
qualitative shape (who wins, the direction of trends, where inflections
fall), records the numbers as JSON under ``benchmarks/results/`` so
EXPERIMENTS.md can reference them, and times the core computation through
pytest-benchmark.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.datasets import (
    load_dataset,
    make_clustered_vectors,
    make_labeled_transactions,
    make_planted_transactions,
    make_weblike_graph_transactions,
)

RESULTS_DIR = Path(__file__).parent / "results"


def record_result(name: str, payload) -> Path:
    """Write *payload* as JSON under benchmarks/results/<name>.json."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=float)
    return path


@pytest.fixture(scope="session")
def record():
    """Fixture exposing :func:`record_result`."""
    return record_result


@pytest.fixture(scope="session")
def wine_like():
    """Wine-sized dense dataset (Table 2.1 row 1), unit-normalised."""
    return load_dataset("wine", seed=7).l2_normalized()


@pytest.fixture(scope="session")
def twitter_like():
    """A scaled-down sparse corpus standing in for the Twitter dataset."""
    return load_dataset("twitter", max_rows=250, seed=7)


@pytest.fixture(scope="session")
def rcv1_like():
    """A scaled-down sparse corpus standing in for RCV1."""
    return load_dataset("rcv1", max_rows=250, seed=7)


@pytest.fixture(scope="session")
def growth_dataset():
    """Image-segmentation-like clustered data for the Chapter 3 benches."""
    return make_clustered_vectors(180, 10, 5, separation=4.5, cluster_std=0.9,
                                  seed=33, name="image-segmentation-like")


@pytest.fixture(scope="session")
def planted_db():
    """FIMI-like transaction database with planted patterns (Table 4.4)."""
    return make_planted_transactions(400, 180, n_patterns=12,
                                     pattern_support=(0.08, 0.22), seed=41,
                                     name="mushroom-like")


@pytest.fixture(scope="session")
def webgraph_db():
    """Web-graph adjacency transactions (Table 4.3, EU2005-like)."""
    return make_weblike_graph_transactions(500, avg_degree=14, n_communities=15,
                                           seed=43, name="eu2005-like")


@pytest.fixture(scope="session")
def labeled_db():
    """Labeled transactions for the compressed-analytics classification bench."""
    return make_labeled_transactions(300, 80, 3, class_pattern_support=0.7,
                                     seed=47, name="labeled")
