"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the dissertation at
laptop scale: it computes the same rows/series the paper reports, asserts the
qualitative shape (who wins, the direction of trends, where inflections
fall), records the numbers as JSON under ``benchmarks/results/`` so
EXPERIMENTS.md can reference them, and times the core computation through
pytest-benchmark.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.datasets import (
    load_dataset,
    make_clustered_vectors,
    make_labeled_transactions,
    make_planted_transactions,
    make_weblike_graph_transactions,
)

RESULTS_DIR = Path(__file__).parent / "results"


def record_result(name: str, payload) -> Path:
    """Write *payload* as JSON under benchmarks/results/<name>.json."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=float)
    return path


@pytest.fixture(scope="session")
def record():
    """Fixture exposing :func:`record_result`."""
    return record_result


#: Driver run in a *separate interpreter* by the cold-vs-warm store
#: scenarios: build the dataset from its factory expression, open the store,
#: probe once (the session persists itself), then report timings as JSON on
#: stdout.  Exiting the process is the point — it proves the knowledge
#: survives an actual process death, not just a new object.
_COLD_PROBE_DRIVER = """
import json, sys
from repro.core import PlasmaSession
from repro.datasets import load_dataset, make_clustered_vectors
from repro.store import SimilarityStore

store_root, threshold, n_hashes, seed, dataset_expr = sys.argv[1:6]
dataset = eval(dataset_expr)
session = PlasmaSession(dataset, n_hashes=int(n_hashes), seed=int(seed),
                        store=SimilarityStore(store_root))
probe = session.probe(float(threshold))
print(json.dumps({
    "pair_count": probe.pair_count,
    "total_seconds": probe.total_seconds,
    "sketch_seconds": probe.sketch_seconds,
    "hash_comparisons": probe.apss.hash_comparisons,
    "cached_hash_reuse": probe.cached_hash_reuse,
    "resumed_from": session.resumed_from,
}))
"""


def cold_probe_in_subprocess(store_root, dataset_expr: str, threshold: float,
                             *, n_hashes: int = 128, seed: int = 7) -> dict:
    """Probe *dataset_expr* at *threshold* in a fresh process, then exit.

    The child process persists its session into ``store_root`` and dies —
    the caller then reopens the store in-process to measure the warm side of
    the cold-vs-warm comparison.  *dataset_expr* must be an expression over
    the dataset factories (``load_dataset``/``make_clustered_vectors``) so
    the child rebuilds the exact dataset from its seed.
    """
    env = dict(os.environ)
    src = str(Path(repro.__file__).parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", _COLD_PROBE_DRIVER, str(store_root),
         str(threshold), str(n_hashes), str(seed), dataset_expr],
        env=env, capture_output=True, text=True, timeout=600)
    assert completed.returncode == 0, completed.stderr
    return json.loads(completed.stdout.strip().splitlines()[-1])


@pytest.fixture(scope="session")
def cold_probe():
    """Fixture exposing :func:`cold_probe_in_subprocess`."""
    return cold_probe_in_subprocess


@pytest.fixture(scope="session")
def wine_like():
    """Wine-sized dense dataset (Table 2.1 row 1), unit-normalised."""
    return load_dataset("wine", seed=7).l2_normalized()


@pytest.fixture(scope="session")
def twitter_like():
    """A scaled-down sparse corpus standing in for the Twitter dataset."""
    return load_dataset("twitter", max_rows=250, seed=7)


@pytest.fixture(scope="session")
def rcv1_like():
    """A scaled-down sparse corpus standing in for RCV1."""
    return load_dataset("rcv1", max_rows=250, seed=7)


@pytest.fixture(scope="session")
def growth_dataset():
    """Image-segmentation-like clustered data for the Chapter 3 benches."""
    return make_clustered_vectors(180, 10, 5, separation=4.5, cluster_std=0.9,
                                  seed=33, name="image-segmentation-like")


@pytest.fixture(scope="session")
def planted_db():
    """FIMI-like transaction database with planted patterns (Table 4.4)."""
    return make_planted_transactions(400, 180, n_patterns=12,
                                     pattern_support=(0.08, 0.22), seed=41,
                                     name="mushroom-like")


@pytest.fixture(scope="session")
def webgraph_db():
    """Web-graph adjacency transactions (Table 4.3, EU2005-like)."""
    return make_weblike_graph_transactions(500, avg_degree=14, n_communities=15,
                                           seed=43, name="eu2005-like")


@pytest.fixture(scope="session")
def labeled_db():
    """Labeled transactions for the compressed-analytics classification bench."""
    return make_labeled_transactions(300, 80, 3, class_pattern_support=0.7,
                                     seed=47, name="labeled")
