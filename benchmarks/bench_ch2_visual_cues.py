"""Figure 2.5: triangle count estimates, triangle histogram and density plot
for the wine dataset, generated from the knowledge cache alone."""

from repro.core import PlasmaSession
from repro.graphs.measures import triangle_count
from repro.graphs.similarity_graph import similarity_graph
from repro.lsh.bayeslsh import BayesLSHConfig


def test_figure_2_5_wine_triangle_cues(benchmark, record, wine_like):
    session = PlasmaSession(wine_like, n_hashes=192, seed=5,
                            config=BayesLSHConfig(max_hashes=192))
    session.probe(0.9)

    def cues():
        histogram = session.triangle_histogram(0.95, bins=15)
        plot = session.density_plot(0.95)
        return histogram, plot

    histogram, plot = benchmark.pedantic(cues, rounds=1, iterations=1)

    # Exact reference edges via the engine's blocked backend.
    exact_graph = similarity_graph(wine_like, 0.95, backend="exact-blocked")
    exact_triangles = triangle_count(exact_graph)

    record("figure_2_5_visual_cues", {
        "estimated_triangles": histogram.total_triangles,
        "exact_triangles": exact_triangles,
        "max_triangles_per_vertex": histogram.max_per_vertex,
        "histogram_counts": histogram.counts.tolist(),
        "density_plateaus": plot.plateaus,
    })

    # The cue is produced without touching the data again and tracks the
    # exact triangle count within a reasonable factor.
    assert histogram.counts.sum() == wine_like.n_rows
    if exact_triangles > 0:
        ratio = histogram.total_triangles / exact_triangles
        assert 0.4 < ratio < 2.5
    # Clusterable data shows high-density plateaus in the density plot.
    assert plot.plateaus
    assert max(p[2] for p in plot.plateaus) > 0.5
