"""Table 5.1: the parallel-coordinates dataset characteristics."""

from repro.datasets import dataset_spec, load_dataset

TABLE_5_1 = ["forestfires", "water_treatment", "wdbc", "parkinsons",
             "pima_indians_diabetes", "wine", "eighthr"]


def test_table_5_1_parcoords_datasets(benchmark, record):
    def build():
        rows = []
        for name in TABLE_5_1:
            dataset = load_dataset(name, scale=0.3, seed=5)
            spec = dataset_spec(name)
            rows.append({"name": name, "dimensions": dataset.n_features,
                         "paper_rows": spec.paper_rows,
                         "generated_rows": dataset.n_rows})
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    record("table_5_1_datasets", rows)

    by_name = {row["name"]: row for row in rows}
    assert len(rows) == 7
    # Moderate dimensionality is the point of the chapter (5-72 dimensions).
    assert all(4 <= row["dimensions"] <= 80 for row in rows)
    assert by_name["wine"]["dimensions"] == 13
    assert by_name["eighthr"]["dimensions"] == 72
