"""Tables 4.1-4.2 / Figure 4.3: the worked LAM example as a benchmark.

The exact-value checks live in tests/lam/test_worked_example.py; this bench
times the trie construction + potential-itemset generation + consumption on
the paper's example partition and records the resulting candidate list.
"""

from repro.lam import CodeTable, PatternTrie, mine_consume_phase

TABLE_4_1 = {
    23: (6, 10, 5, 12, 15, 1, 2, 3),
    102: (1, 2, 3, 20),
    55: (2, 3, 10, 12, 1, 5, 6, 15),
    204: (1, 7, 8, 9, 3),
    13: (1, 2, 3, 8),
    64: (1, 2, 3, 5, 6, 10, 12, 15),
    43: (1, 2, 5, 10, 22, 31, 8, 23, 36, 6),
    431: (1, 2, 5, 10, 21, 31, 67, 8, 23, 36, 6),
}


def test_table_4_1_4_2_worked_example(benchmark, record):
    def run():
        transactions = {tid: tuple(sorted(items)) for tid, items in TABLE_4_1.items()}
        trie = PatternTrie.from_transactions(transactions, min_item_count=2)
        potentials = trie.potential_itemsets()
        rows = [set(items) for items in TABLE_4_1.values()]
        code_table = CodeTable(n_labels=100)
        consumed = mine_consume_phase(rows, list(range(len(rows))), code_table)
        return potentials, consumed

    potentials, consumed = benchmark(run)
    record("tables_4_1_4_2_worked_example", {
        "potential_itemsets": [
            {"items": list(p.items), "transactions": len(p.transaction_ids)}
            for p in potentials],
        "consumed": [{"items": list(c.items), "covered": c.n_covered,
                      "utility": c.utility} for c in consumed],
    })

    assert len(potentials) == 4
    assert consumed[0].items == (1, 2, 3, 5, 6, 10, 12, 15)
    assert consumed[0].utility == 14
