"""Ablation: LAM design choices — pass count and partition size.

Not a paper figure; this quantifies the two knobs DESIGN.md calls out for
LAM: additional passes keep improving compression with roughly linear extra
cost, and the partition-size threshold trades per-partition mining cost
against the reach of each pattern.
"""

import time

from repro.lam import LAM


def test_ablation_lam_passes_and_partition_size(benchmark, record, planted_db):
    def run():
        by_passes = []
        for n_passes in (1, 2, 5, 8):
            start = time.perf_counter()
            result = LAM(n_passes=n_passes, max_partition_size=100, seed=0) \
                .run(planted_db)
            by_passes.append({"passes": n_passes,
                              "ratio": result.compression_ratio,
                              "seconds": time.perf_counter() - start,
                              "patterns": result.n_patterns})
        by_partition = []
        for size in (20, 100, 400):
            result = LAM(n_passes=3, max_partition_size=size, seed=0).run(planted_db)
            by_partition.append({"max_partition_size": size,
                                 "ratio": result.compression_ratio,
                                 "partitions_first_pass": result.passes[0].n_partitions})
        return by_passes, by_partition

    by_passes, by_partition = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablation_lam", {"by_passes": by_passes, "by_partition": by_partition})

    ratios = [row["ratio"] for row in by_passes]
    # Compression is monotone in the number of passes with diminishing returns.
    assert ratios == sorted(ratios)
    assert ratios[1] - ratios[0] >= ratios[-1] - ratios[-2] - 0.05
    # Runtime grows with passes.
    assert by_passes[-1]["seconds"] > by_passes[0]["seconds"]
    # Smaller partitions mean more of them ...
    partitions = [row["partitions_first_pass"] for row in by_partition]
    assert partitions == sorted(partitions, reverse=True)
    # ... and localization itself earns its keep: mining min-hash-localized
    # partitions compresses at least as well as mining one giant partition,
    # because the greedy consumption sees groups of genuinely similar rows.
    assert max(row["ratio"] for row in by_partition[:-1]) >= \
        by_partition[-1]["ratio"] - 0.05
