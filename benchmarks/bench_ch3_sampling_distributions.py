"""Figure 3.18: distribution of pairwise similarity values under each
sampling method (Abalone).

Concentrated samples skew towards high similarities; random and stratified
samples closely track each other and the full dataset's distribution.
"""

import numpy as np

from repro.datasets import make_clustered_vectors
from repro.growth import sample_dataset
from repro.similarity import apss_search


def _upper_triangle(dataset):
    # All pairwise similarities via the engine's blocked backend: a search at
    # threshold -2 (below the cosine floor) yields the full upper triangle.
    result = apss_search(dataset, -2.0, measure="cosine")
    return np.array([pair.similarity for pair in result.pairs])


def test_figure_3_18_sampling_similarity_distributions(benchmark, record):
    dataset = make_clustered_vectors(300, 8, 3, separation=4.0, seed=71,
                                     name="abalone-like")

    def compute():
        distributions = {"actual": _upper_triangle(dataset)}
        for method in ("concentrated", "random", "stratified"):
            sample = sample_dataset(dataset, 100, method=method, seed=3)
            distributions[method] = _upper_triangle(sample)
        return distributions

    distributions = benchmark.pedantic(compute, rounds=1, iterations=1)
    summary = {
        name: {"mean": float(values.mean()), "median": float(np.median(values)),
               "q90": float(np.quantile(values, 0.9))}
        for name, values in distributions.items()}
    record("figure_3_18_sampling_distributions", summary)

    # Concentrated sampling produces a similarity distribution shifted towards
    # high values compared to every other method.
    assert summary["concentrated"]["mean"] > summary["random"]["mean"]
    assert summary["concentrated"]["mean"] > summary["actual"]["mean"]
    # Random and stratified sampling closely track each other (the paper's
    # observation that the learned strata add little over random sampling).
    assert abs(summary["random"]["mean"] - summary["stratified"]["mean"]) < 0.1
    # Both are close to the full dataset's distribution.
    assert abs(summary["random"]["mean"] - summary["actual"]["mean"]) < 0.1
