"""Figures 3.19-3.20: runtime of graph measures as density increases.

The expensive, combinatoric measures get dramatically slower as edges double,
while the analytic complete-graph shortcut keeps the final (complete) point
cheap for measures that support it.
"""

import time

from repro.graphs.measures import compute_measure
from repro.growth import build_densifying_series, edge_count_schedule

MEASURES = ["triangle_count", "average_clustering", "mean_betweenness",
            "number_of_cliques", "mean_core_number", "number_connected_components"]


def test_figures_3_19_3_20_measure_runtimes_vs_density(benchmark, record,
                                                       growth_dataset):
    schedule = edge_count_schedule(growth_dataset.n_rows, n_steps=6)
    series = build_densifying_series(growth_dataset, schedule)

    def time_measures():
        timings = {measure: [] for measure in MEASURES}
        for graph in series.graphs:
            for measure in MEASURES:
                start = time.perf_counter()
                compute_measure(graph, measure)
                timings[measure].append(time.perf_counter() - start)
        return timings

    timings = benchmark.pedantic(time_measures, rounds=1, iterations=1)
    record("figures_3_19_3_20_measure_runtimes", {
        "edge_counts": [g.n_edges for g in series.graphs],
        "seconds": timings})

    for measure in ("triangle_count", "average_clustering", "mean_betweenness"):
        runtimes = timings[measure]
        # Dense graphs cost substantially more than sparse graphs.
        assert runtimes[-1] > runtimes[0]
        assert max(runtimes) > 2 * min(r for r in runtimes if r > 0)
    # Cheap measures stay cheap at every density.
    assert max(timings["number_connected_components"]) < 1.0
