"""MVCC store maintenance: chain resolution, compaction and GC economics.

Three claims of the versioned-manifest layer, measured end to end:

* resolving a k-step delta chain through a snapshot is pure pair merging —
  cheap, but linear in chain length; after ``compact()`` the same lookup
  reads one consolidated entry (and returns the identical pair set);
* compaction itself runs **zero** kernel searches (audited via
  ``ApssEngine.search_calls``) — it is strictly cheaper than recomputing
  the tip floor from scratch;
* GC actually returns bytes: after compact + close + collect, the lineage
  footprint drops back toward a single generation's worth.
"""

from __future__ import annotations

import time

import pytest

from repro.datasets import make_clustered_vectors
from repro.similarity import ApssEngine
from repro.store import DeltaApssBackend, SimilarityStore, fsck

THRESHOLD = 0.3
BASE_ROWS = 400
BATCH_ROWS = 40
GENERATIONS = 5


@pytest.fixture(scope="module")
def chain():
    full = make_clustered_vectors(
        BASE_ROWS + GENERATIONS * BATCH_ROWS, 12, 6, separation=4.0,
        seed=37, name="mvcc-bench")
    datasets = [full.subset(range(BASE_ROWS), name="gen-0")]
    for generation in range(1, GENERATIONS + 1):
        stop = BASE_ROWS + generation * BATCH_ROWS
        rows = full.subset(range(stop - BATCH_ROWS, stop))
        datasets.append(datasets[-1].append_rows(rows,
                                                 name=f"gen-{generation}"))
    return datasets


def _key(dataset):
    return (dataset.fingerprint(), "cosine", "exact-blocked", ())


def _publish(store, chain, engine):
    floor = engine.search(chain[0], THRESHOLD)
    store.publish_floor(_key(chain[0]), floor)
    delta_backend = DeltaApssBackend(n_workers=1)
    for child in chain[1:]:
        delta = child.parent_delta
        store.publish_generation(child.fingerprint(),
                                 parent=delta.parent_fingerprint,
                                 n_rows=child.n_rows,
                                 parent_rows=delta.parent_rows)
        floor = delta_backend.extend(floor, child)
        store.publish_floor(_key(child), floor, delta=delta)
    return floor


def _timed_resolves(store, key, rounds=20):
    start = time.perf_counter()
    for _ in range(rounds):
        with store.open_snapshot() as snapshot:
            result = snapshot.load_result(key)
    return (time.perf_counter() - start) / rounds, result


def test_compaction_consolidates_without_kernel_work(benchmark, record,
                                                     tmp_path_factory, chain):
    store = SimilarityStore(tmp_path_factory.mktemp("mvcc") / "store")
    engine = ApssEngine()
    _publish(store, chain, engine)
    tip_key = _key(chain[-1])

    chained_seconds, chained = _timed_resolves(store, tip_key)
    assert chained.details["lineage"]["chain_length"] == GENERATIONS + 1
    bytes_before = store.lineage_bytes()
    calls_before = engine.search_calls

    stats = benchmark.pedantic(store.compact, rounds=1, iterations=1)
    assert stats.chains_folded == 1
    assert engine.search_calls == calls_before, \
        "compaction must not touch the kernel"

    consolidated_seconds, consolidated = _timed_resolves(store, tip_key)
    assert consolidated.details["lineage"]["chain_length"] == 1
    assert [(p.first, p.second, p.similarity) for p in consolidated.pairs] \
        == [(p.first, p.second, p.similarity) for p in chained.pairs]

    gc_stats = store.gc()
    bytes_after = store.lineage_bytes()
    assert bytes_after < bytes_before, \
        "GC after compaction must reclaim superseded chain entries"
    assert fsck(store.root, strict_orphans=True).ok

    record("store_mvcc_maintenance", {
        "generations": GENERATIONS + 1,
        "tip_rows": chain[-1].n_rows,
        "tip_pairs": len(consolidated.pairs),
        "resolve_seconds_chained": chained_seconds,
        "resolve_seconds_consolidated": consolidated_seconds,
        "lineage_bytes_before": bytes_before,
        "lineage_bytes_after_gc": bytes_after,
        "bytes_reclaimed": gc_stats.bytes_reclaimed,
        "manifests_removed": gc_stats.manifests_removed,
        "entries_removed": gc_stats.files_removed,
    })
