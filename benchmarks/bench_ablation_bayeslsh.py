"""Ablation: BayesLSH design choices — hash budget and early pruning.

Not a paper figure; this sweeps the per-pair hash budget and toggles the
pruning rule to quantify the design choices DESIGN.md calls out: more hashes
buy accuracy at a linear cost, and early pruning removes most of the hash
comparisons without hurting recall at the probed threshold.
"""

from repro.lsh import BayesLSH, BayesLSHConfig, all_pair_candidates, build_sketch_store
from repro.similarity import exact_pair_count


def test_ablation_bayeslsh_hash_budget_and_pruning(benchmark, record, wine_like):
    threshold = 0.9
    exact = exact_pair_count(wine_like, [threshold])[threshold]

    def run():
        rows = []
        for n_hashes in (32, 64, 128, 256):
            store = build_sketch_store(wine_like, kind="cosine",
                                       n_hashes=n_hashes, seed=2)
            engine = BayesLSH(store, BayesLSHConfig(max_hashes=n_hashes))
            result = engine.run(all_pair_candidates(wine_like.n_rows), threshold)
            rows.append({
                "n_hashes": n_hashes,
                "retained": result.n_retained,
                "relative_error": abs(result.n_retained - exact) / exact,
                "hash_comparisons": result.hash_comparisons,
                "pruned": result.n_pruned,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablation_bayeslsh_hash_budget", {"exact_pairs": exact, "sweep": rows})

    errors = [row["relative_error"] for row in rows]
    comparisons = [row["hash_comparisons"] for row in rows]
    # More hashes -> more work, and the largest budget is the most accurate
    # of the sweep.
    assert comparisons == sorted(comparisons)
    assert errors[-1] == min(errors)
    assert errors[-1] < 0.25
    # Pruning is doing real work at every budget: most candidate pairs are
    # discarded long before the full sketch is compared.
    n_candidates = wine_like.n_rows * (wine_like.n_rows - 1) // 2
    for row in rows:
        assert row["pruned"] > 0.3 * n_candidates
        assert row["hash_comparisons"] < n_candidates * row["n_hashes"]
