"""Ablation: BayesLSH design choices — hash budget and early pruning.

Not a paper figure; this sweeps the per-pair hash budget and toggles the
pruning rule to quantify the design choices DESIGN.md calls out: more hashes
buy accuracy at a linear cost, and early pruning removes most of the hash
comparisons without hurting recall at the probed threshold.
"""

from repro.similarity import ApssEngine


def test_ablation_bayeslsh_hash_budget_and_pruning(benchmark, record, wine_like):
    threshold = 0.9
    engine = ApssEngine()
    exact = engine.search(wine_like, threshold, "cosine").pair_count()

    def run():
        rows = []
        for n_hashes in (32, 64, 128, 256):
            result = engine.search(wine_like, threshold, "cosine",
                                   backend="bayeslsh", n_hashes=n_hashes,
                                   seed=2)
            rows.append({
                "n_hashes": n_hashes,
                "retained": result.pair_count(),
                "relative_error": abs(result.pair_count() - exact) / exact,
                "hash_comparisons": result.details["hash_comparisons"],
                "pruned": result.n_pruned,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablation_bayeslsh_hash_budget", {"exact_pairs": exact, "sweep": rows})

    errors = [row["relative_error"] for row in rows]
    comparisons = [row["hash_comparisons"] for row in rows]
    # More hashes -> more work, and the largest budget is the most accurate
    # of the sweep.
    assert comparisons == sorted(comparisons)
    assert errors[-1] == min(errors)
    assert errors[-1] < 0.25
    # Pruning is doing real work at every budget: most candidate pairs are
    # discarded long before the full sketch is compared.
    n_candidates = wine_like.n_rows * (wine_like.n_rows - 1) // 2
    for row in rows:
        assert row["pruned"] > 0.3 * n_candidates
        assert row["hash_comparisons"] < n_candidates * row["n_hashes"]
