"""Table 4.5 and Figure 4.12: serial LAM cost, PLAM scalability, and
compression across passes.

The PLAM numbers are produced with the longest-processing-time scheduling
model over the measured per-partition mining times (see DESIGN.md), which is
the quantity behind the paper's speedup-versus-machines curve.
"""

import time

from repro.lam import LAM, parallel_speedup_estimate


def test_table_4_5_figure_4_12_scalability(benchmark, record, webgraph_db):
    def run():
        start = time.perf_counter()
        result = LAM(n_passes=5, max_partition_size=60, seed=0).run(webgraph_db)
        serial_seconds = time.perf_counter() - start
        partition_seconds = [t for stats in result.passes
                             for t in stats.partition_seconds]
        speedups = {workers: parallel_speedup_estimate(partition_seconds, workers)
                    for workers in (1, 2, 4, 8, 16, 32)}
        per_pass_ratio = [stats.compression_ratio for stats in result.passes]
        return result, serial_seconds, speedups, per_pass_ratio

    result, serial_seconds, speedups, per_pass_ratio = benchmark.pedantic(
        run, rounds=1, iterations=1)

    record("table_4_5_figure_4_12_scalability", {
        "serial_seconds": serial_seconds,
        "useful_itemsets": result.n_patterns,
        "mean_dereferences": result.compressed.mean_dereferences(),
        "speedup_by_workers": speedups,
        "compression_by_pass": per_pass_ratio,
    })

    # Table 4.5: a meaningful number of useful itemsets is produced and the
    # pointer chains stay shallow (paper: 1.4-1.5 dereferences on average).
    assert result.n_patterns > 0
    assert result.compressed.mean_dereferences() < 3.0
    # Figure 4.12(1): speedup grows with workers and stays sub-linear.
    assert speedups[1] == 1.0
    assert speedups[8] > speedups[2] >= 1.0
    assert speedups[32] >= speedups[8]
    assert speedups[8] <= 8.0 + 1e-9
    # Figure 4.12(2): compression improves with successive passes.
    assert per_pass_ratio[-1] >= per_pass_ratio[0]
