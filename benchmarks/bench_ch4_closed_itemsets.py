"""Figures 4.10-4.11: LAM versus closed itemset mining.

Closed-set mining gets dramatically slower as the support threshold drops and
never yields the very long patterns LAM finds; LAM is parameter-free, faster,
and compresses at least as well once a couple of passes have run.
"""

import time

from repro.lam import LAM, closed_itemsets


def test_figures_4_10_4_11_lam_vs_closed_itemsets(benchmark, record, webgraph_db):
    supports = [10, 5, 3]

    def run():
        closed_rows = []
        for support in supports:
            start = time.perf_counter()
            closed = closed_itemsets(webgraph_db, min_support=support, max_length=8)
            seconds = time.perf_counter() - start
            longest = max((len(items) for items in closed), default=0)
            closed_rows.append({"support": support, "n_itemsets": len(closed),
                                "longest": longest, "seconds": seconds})
        start = time.perf_counter()
        lam1 = LAM(n_passes=1, max_partition_size=100, seed=0).run(webgraph_db)
        lam1_seconds = time.perf_counter() - start
        start = time.perf_counter()
        lam5 = LAM(n_passes=5, max_partition_size=100, seed=0).run(webgraph_db)
        lam5_seconds = time.perf_counter() - start
        return closed_rows, lam1, lam1_seconds, lam5, lam5_seconds

    closed_rows, lam1, lam1_seconds, lam5, lam5_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1)

    lam_longest = max(lam5.code_table.pattern_lengths(), default=0)
    record("figures_4_10_4_11_closed_itemsets", {
        "closed": closed_rows,
        "lam1": {"seconds": lam1_seconds, "ratio": lam1.compression_ratio,
                 "patterns": lam1.n_patterns},
        "lam5": {"seconds": lam5_seconds, "ratio": lam5.compression_ratio,
                 "patterns": lam5.n_patterns, "longest_pattern": lam_longest},
    })

    # Closed-set mining cost explodes as support drops (Figure 4.10a).
    assert closed_rows[-1]["seconds"] > closed_rows[0]["seconds"]
    assert closed_rows[-1]["n_itemsets"] > closed_rows[0]["n_itemsets"]
    # LAM (even five passes) is far faster than the lowest-support closed run.
    assert lam5_seconds < closed_rows[-1]["seconds"]
    assert closed_rows[-1]["seconds"] / lam5_seconds > 5.0
    # Multiple passes improve compression over a single pass (Figure 4.10b).
    assert lam5.compression_ratio >= lam1.compression_ratio
    # LAM finds multi-item patterns without any support threshold; its longest
    # pattern is comparable to what closed mining only reaches at the most
    # expensive support level (Figure 4.11's long-pattern tail).
    assert lam_longest >= 4
