"""Figures 2.6-2.8: incremental number-of-pairs estimates while a probe runs.

The estimates for other thresholds converge to their final values after only
a small fraction of the candidate pairs have been processed (10-20% in the
paper), which is what makes partial results useful interactively.
"""

import pytest

from repro.core import PlasmaSession
from repro.lsh.bayeslsh import BayesLSHConfig


CASES = [
    # (fixture name, probe threshold t1, report thresholds t2)
    ("wine_like", 0.5, (0.75, 0.8, 0.85)),
    ("twitter_like", 0.95, (0.75, 0.85, 0.95)),
    ("rcv1_like", 0.9, (0.5, 0.9, 0.95)),
]


@pytest.mark.parametrize("fixture_name,probe_threshold,report_thresholds", CASES)
def test_figures_2_6_to_2_8_incremental_estimates(benchmark, record, request,
                                                  fixture_name, probe_threshold,
                                                  report_thresholds):
    dataset = request.getfixturevalue(fixture_name)
    session = PlasmaSession(dataset, n_hashes=160, seed=11,
                            config=BayesLSHConfig(max_hashes=160))

    def probe():
        return session.probe(probe_threshold,
                             incremental_thresholds=report_thresholds,
                             incremental_checkpoints=20)

    result = benchmark.pedantic(probe, rounds=1, iterations=1)
    series = result.incremental_estimates
    record(f"figures_2_6_2_8_incremental_{fixture_name}", {
        "probe_threshold": probe_threshold,
        "checkpoints": [
            {"fraction": fraction, "estimates": estimates}
            for fraction, estimates in series
        ],
    })

    assert len(series) >= 10
    final_estimates = series[-1][1]
    # By the time ~20-25% of the candidates are processed the estimates are
    # already close to their final values (the paper's 5-10x early answer).
    early = next(estimates for fraction, estimates in series if fraction >= 0.2)
    for threshold in report_thresholds:
        final = final_estimates[threshold]
        if final >= 50:
            assert early[threshold] == pytest.approx(final, rel=0.35)
