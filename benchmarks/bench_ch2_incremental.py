"""Figures 2.6-2.8: incremental number-of-pairs estimates while a probe runs.

The estimates for other thresholds converge to their final values after only
a small fraction of the candidate pairs have been processed (10-20% in the
paper), which is what makes partial results useful interactively.

Two persistence scenarios ride along:

* cold-vs-warm store — probe in a subprocess, let it die, reopen the store
  here and re-probe: cross-session reuse of sketches and per-pair knowledge;
* append-delta vs full recompute (``slow``, scheduled stress lane) — a 1%
  append to a 5000-row dataset answered by the O(new x total) delta path
  must beat the O(total^2) from-scratch search while returning the identical
  pair set.
"""

import pytest

from repro.core import PlasmaSession
from repro.lsh.bayeslsh import BayesLSHConfig
from repro.store import SimilarityStore


CASES = [
    # (fixture name, probe threshold t1, report thresholds t2)
    ("wine_like", 0.5, (0.75, 0.8, 0.85)),
    ("twitter_like", 0.95, (0.75, 0.85, 0.95)),
    ("rcv1_like", 0.9, (0.5, 0.9, 0.95)),
]


@pytest.mark.parametrize("fixture_name,probe_threshold,report_thresholds", CASES)
def test_figures_2_6_to_2_8_incremental_estimates(benchmark, record, request,
                                                  fixture_name, probe_threshold,
                                                  report_thresholds):
    dataset = request.getfixturevalue(fixture_name)
    session = PlasmaSession(dataset, n_hashes=160, seed=11,
                            config=BayesLSHConfig(max_hashes=160))

    def probe():
        return session.probe(probe_threshold,
                             incremental_thresholds=report_thresholds,
                             incremental_checkpoints=20)

    result = benchmark.pedantic(probe, rounds=1, iterations=1)
    series = result.incremental_estimates
    record(f"figures_2_6_2_8_incremental_{fixture_name}", {
        "probe_threshold": probe_threshold,
        "checkpoints": [
            {"fraction": fraction, "estimates": estimates}
            for fraction, estimates in series
        ],
    })

    assert len(series) >= 10
    final_estimates = series[-1][1]
    # By the time ~20-25% of the candidates are processed the estimates are
    # already close to their final values (the paper's 5-10x early answer).
    early = next(estimates for fraction, estimates in series if fraction >= 0.2)
    for threshold in report_thresholds:
        final = final_estimates[threshold]
        if final >= 50:
            assert early[threshold] == pytest.approx(final, rel=0.35)


def test_cold_vs_warm_store_incremental_reprobe(record, cold_probe, tmp_path,
                                                wine_like):
    """Probe, kill the process, reopen the store, re-probe (Figures 2.6-2.8
    workload): the warm probe resumes sketches + knowledge across sessions."""
    threshold, n_hashes, seed = 0.75, 160, 7
    expr = 'load_dataset("wine", seed=7).l2_normalized()'
    store_root = tmp_path / "incremental-store"

    cold = cold_probe(store_root, expr, threshold,
                      n_hashes=n_hashes, seed=seed)
    assert cold["resumed_from"] == "fresh"

    warm_session = PlasmaSession(wine_like, n_hashes=n_hashes, seed=seed,
                                 store=SimilarityStore(store_root))
    assert warm_session.resumed_from == "store"
    warm = warm_session.probe(threshold,
                              incremental_thresholds=(0.8, 0.85),
                              incremental_checkpoints=10)

    record("figures_2_6_2_8_cold_vs_warm_store", {
        "threshold": threshold,
        "cold": cold,
        "warm": {
            "pair_count": warm.pair_count,
            "sketch_seconds": warm.sketch_seconds,
            "hash_comparisons": warm.apss.hash_comparisons,
            "cached_hash_reuse": warm.cached_hash_reuse,
            "checkpoints": len(warm.incremental_estimates),
        },
    })

    assert warm.sketch_seconds == 0.0
    assert warm.cached_hash_reuse > 0
    assert warm.apss.hash_comparisons < cold["hash_comparisons"]
    assert abs(warm.pair_count - cold["pair_count"]) <= \
        max(2, 0.02 * cold["pair_count"])


@pytest.mark.slow
def test_append_delta_beats_full_recompute(record):
    """A 1% append to a 5000-row dataset: delta paths vs full recompute.

    The delta pass computes only the new-vs-all cross block (O(new x total))
    and must return pair sets identical to a from-scratch quadratic search
    on the concatenated dataset — decisively faster.  The sharded columns
    time the same ingest fanned over the worker pool (shared-memory
    transport): the hard bound is the 2x-vs-full-recompute floor for every
    worker count; beating the single-process delta additionally requires
    actual cores, so that comparison is only asserted on multicore machines
    and recorded everywhere.
    """
    import os

    from repro.datasets import make_clustered_vectors
    from repro.similarity import ApssEngine, reset_shared_pools
    from repro.store import DeltaApssBackend
    from repro.utils.timers import Stopwatch

    threshold = 0.6
    dataset = make_clustered_vectors(5050, 64, 10, separation=4.0, seed=97,
                                     name="append-bench-5050x64")
    parent = dataset.subset(range(5000), name="append-bench-parent")
    child = parent.append_rows(dataset.subset(range(5000, 5050)),
                               name="append-bench-child")
    assert child.fingerprint() == dataset.fingerprint()

    engine = ApssEngine()
    base = engine.search(parent, threshold)    # the already-paid-for sweep

    def timed_extend(backend):
        watch = Stopwatch()
        watch.start()
        extended = backend.extend(base, child)
        return extended, watch.stop()

    # Best-of-two timings everywhere: single scheduler hiccups on contended
    # CI runners must not decide the sharded-vs-single comparison below.
    single_backend = DeltaApssBackend()
    extended, first_seconds = timed_extend(single_backend)
    delta_seconds = min(first_seconds, timed_extend(single_backend)[1])
    sharded_seconds = {}
    for n_workers in (1, 2):
        # Warm the pool (and the published segments) outside the clock, as a
        # long-lived ingest deployment would run.
        sharded_backend = DeltaApssBackend(n_workers=n_workers)
        sharded_result, _ = timed_extend(sharded_backend)
        assert sharded_result.pair_set() == extended.pair_set()
        seconds = min(timed_extend(sharded_backend)[1],
                      timed_extend(sharded_backend)[1])
        sharded_seconds[n_workers] = seconds

    full = engine.search(dataset, threshold)
    record("append_delta_vs_full_recompute", {
        "n_rows": dataset.n_rows,
        "appended_rows": child.parent_delta.n_new,
        "threshold": threshold,
        "cpu_count": os.cpu_count(),
        "delta_seconds": delta_seconds,
        "sharded_delta_seconds": {f"{w}w": s
                                  for w, s in sharded_seconds.items()},
        "full_seconds": full.seconds,
        "speedup": full.seconds / delta_seconds if delta_seconds else None,
        "sharded_speedup_vs_full": {
            f"{w}w": full.seconds / s if s else None
            for w, s in sharded_seconds.items()},
        "pairs": extended.pair_count(),
    })
    reset_shared_pools()

    assert extended.pair_set() == full.pair_set()
    # "Beats" with a hard margin: O(new x total) vs O(total^2) at 1% should
    # be far more than 2x even on noisy CI machines.
    assert delta_seconds * 2 < full.seconds, (
        f"delta path took {delta_seconds:.3f}s vs full {full.seconds:.3f}s")
    for n_workers, seconds in sharded_seconds.items():
        assert seconds * 2 < full.seconds, (
            f"sharded ingest @{n_workers}w took {seconds:.3f}s vs full "
            f"{full.seconds:.3f}s")
    if (os.cpu_count() or 1) >= 2:
        # With real cores the fanned cross block must beat the in-process
        # delta; on a single-core box the ladder inverts (pure IPC tax), so
        # the numbers are recorded but not asserted.
        assert sharded_seconds[2] < delta_seconds, (
            f"sharded ingest @2w ({sharded_seconds[2]:.3f}s) did not beat "
            f"the single-process delta ({delta_seconds:.3f}s)")
