"""Figure 4.4: LAM5 runtime phase breakdown (localize versus mine) across
utility functions.

The paper's trends: Phase 2 (mining) dominates the total runtime, and the
Area utility is never slower than RC.
"""

from repro.lam import LAM


def test_figure_4_4_phase_breakdown(benchmark, record, planted_db, webgraph_db):
    datasets = {"mushroom_like": planted_db, "eu_like": webgraph_db}

    def run():
        results = {}
        for name, database in datasets.items():
            for utility in ("area", "rc"):
                # Run twice and keep the faster repetition: the absolute times
                # are tens of milliseconds, so a single run is noisy.
                outcomes = [LAM(n_passes=5, utility=utility,
                                max_partition_size=100, seed=0).run(database)
                            for _ in range(2)]
                outcome = min(outcomes, key=lambda o: o.timers.grand_total)
                totals = outcome.timers.as_dict()
                results[f"{name}/{utility}"] = {
                    "localize_seconds": totals.get("localize", 0.0),
                    "mine_seconds": totals.get("mine", 0.0),
                    "total_seconds": outcome.timers.grand_total,
                    "mine_fraction": outcome.timers.fraction("mine"),
                }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    record("figure_4_4_phase_breakdown", results)

    for name in ("mushroom_like", "eu_like"):
        area = results[f"{name}/area"]
        rc = results[f"{name}/rc"]
        # Mining is a major share of the end-to-end time on every dataset ...
        assert area["mine_fraction"] > 0.3
        # Area is not meaningfully slower than RC (generous bound: the
        # absolute runtimes here are tens of milliseconds, so only gross
        # regressions are meaningful).
        assert area["total_seconds"] <= rc["total_seconds"] * 2.0
    # ... and dominates outright on at least one of them (the paper's trend,
    # which widens further with dataset size).
    assert max(results[f"{name}/area"]["mine_fraction"]
               for name in ("mushroom_like", "eu_like")) > 0.45
