"""Figure 3.21 and the Section 3.5 speedup report: triangle-count runtimes of
sampled versus original graphs, and the speedup of predicting the dense half
instead of computing it."""

from repro.datasets import make_clustered_vectors
from repro.growth import GraphGrowthEstimator


def test_figure_3_21_prediction_speedup(benchmark, record):
    datasets = {
        "image_like": make_clustered_vectors(200, 18, 7, separation=4.5, seed=81),
        "yeast_like": make_clustered_vectors(170, 8, 10, separation=4.0, seed=82),
    }

    def run():
        rows = []
        for name, dataset in datasets.items():
            estimator = GraphGrowthEstimator(measure="triangle_count",
                                             prediction_method="regression",
                                             sample_size=70, seed=9)
            estimate = estimator.run(dataset, compute_ground_truth=True)
            rows.append({
                "dataset": name,
                "train_seconds": estimate.train_seconds,
                "dense_truth_seconds": estimate.dense_truth_seconds,
                "speedup": estimate.speedup(),
                "mean_log_error": estimate.error()[0],
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record("figure_3_21_speedup", rows)

    for row in rows:
        # Predicting the dense half is faster than computing it exactly
        # (the paper reports 3.7x - 117x; the scaled data sits at the low end).
        assert row["speedup"] is not None and row["speedup"] > 1.0
        # ... while the estimate stays accurate.
        assert row["mean_log_error"] < 0.2
