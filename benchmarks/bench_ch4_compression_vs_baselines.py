"""Figure 4.6: compression ratio of LAM versus Krimp, Slim and CDB-Hyper.

The paper's picture: no single method dominates every dataset, but LAM is
competitive everywhere and wins on the larger datasets.
"""

from repro.lam import LAM, cdb_compress, krimp_compress, slim_compress


def test_figure_4_6_compression_vs_baselines(benchmark, record, planted_db,
                                             webgraph_db):
    datasets = {"mushroom_like": (planted_db, 30), "eu_like": (webgraph_db, 10)}

    def run():
        table = {}
        for name, (database, support) in datasets.items():
            table[name] = {
                "lam5": LAM(n_passes=5, max_partition_size=100, seed=0)
                .run(database).compression_ratio,
                "krimp": krimp_compress(database, min_support=support,
                                        max_length=10).compression_ratio,
                "slim": slim_compress(database, max_iterations=120).compression_ratio,
                "cdb": cdb_compress(database, min_support=support,
                                    max_length=10).compression_ratio,
            }
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    record("figure_4_6_compression_vs_baselines", table)

    for name, ratios in table.items():
        assert all(ratio >= 1.0 for ratio in ratios.values())
        best = max(ratios.values())
        # LAM's compression is in the same ballpark as the best baseline
        # (within 2x on every dataset, as in Figure 4.6's log-scale bars).
        assert ratios["lam5"] >= best / 2.0
