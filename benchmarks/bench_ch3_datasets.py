"""Table 3.1: the Graph Growth datasets (attributes and point counts)."""

from repro.datasets import dataset_spec, load_dataset

TABLE_3_1 = ["abalone", "adult", "image_segmentation", "letter_recognition",
             "mushroom", "online_news", "spambase", "statlog", "waveform",
             "wine_quality_red", "wine_quality_white", "yeast"]


def test_table_3_1_growth_datasets(benchmark, record):
    def build():
        rows = []
        for name in TABLE_3_1:
            dataset = load_dataset(name, scale=0.05, seed=3)
            spec = dataset_spec(name)
            rows.append({
                "name": name,
                "attributes": dataset.n_features,
                "paper_points": spec.paper_rows,
                "generated_points": dataset.n_rows,
            })
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    record("table_3_1_growth_datasets", rows)

    by_name = {row["name"]: row for row in rows}
    assert len(rows) == 12
    # Attribute counts follow Table 3.1.
    assert by_name["abalone"]["attributes"] == 8
    assert by_name["spambase"]["attributes"] == 57
    assert by_name["image_segmentation"]["attributes"] == 18
    # The paper caps large datasets at 8000 points; the registry records that
    # capped size and the loader scales it down further.
    assert by_name["online_news"]["paper_points"] >= 8000
    assert all(row["generated_points"] >= 30 for row in rows)
