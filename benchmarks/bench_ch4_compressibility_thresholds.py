"""Figure 4.14: LAM compression ratio of the similarity graph across
similarity thresholds, for corpus-like and clustered datasets.

The required shape: ratios are always above 1 (LAM always finds structure),
the curve is not monotone/flat everywhere, and inflection points — the
thresholds PLASMA-HD would surface for further exploration — exist.
"""

from repro.core.exploration import find_inflection_points
from repro.datasets import make_clustered_vectors
from repro.lam import LAM, compressibility_scan

THRESHOLDS = [0.3, 0.45, 0.6, 0.75, 0.9]


def test_figure_4_14_compressibility_across_thresholds(benchmark, record,
                                                       twitter_like):
    clustered = make_clustered_vectors(120, 10, 5, separation=5.0, cluster_std=0.8,
                                       seed=57, name="wiki-like")
    datasets = {"twitter_like": twitter_like, "wiki_like": clustered}

    def run():
        curves = {}
        for name, dataset in datasets.items():
            points, interesting = compressibility_scan(
                dataset, THRESHOLDS, lam=LAM(n_passes=3, max_partition_size=150))
            curves[name] = {
                "thresholds": [p.threshold for p in points],
                "compression_ratio": [p.compression_ratio for p in points],
                "edges": [p.n_edges for p in points],
                "interesting_thresholds": interesting,
            }
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    record("figure_4_14_compressibility_thresholds", curves)

    for name, curve in curves.items():
        ratios = curve["compression_ratio"]
        populated = [r for r, e in zip(ratios, curve["edges"]) if e > 0]
        # Compression ratios always exceed 1.0 wherever the graph has edges.
        assert all(ratio >= 1.0 for ratio in populated)
        assert max(populated) > 1.1
        # The curve varies across thresholds (it is not flat), which is what
        # makes it a useful clusterability signal.
        assert max(populated) - min(populated) > 0.05
    # At least one dataset exhibits explicit inflection points for the
    # PLASMA-HD workflow to propose.
    assert any(curve["interesting_thresholds"] for curve in curves.values())
