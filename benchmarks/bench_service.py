"""Service benchmark: a multi-tenant probe trace against the session server.

Replays the serving scenario the service layer exists for: T tenant
threads, each issuing a deterministic trace of sweep requests over a
shared pool of datasets and thresholds (hot keys overlap across tenants),
against one :class:`~repro.service.SimilarityService`.  Reported per
workload:

* ``p50_ms`` / ``p99_ms`` / ``mean_ms`` — per-request serving latency over
  the whole trace (timings: trend only, runners are noisy);
* ``throughput_rps`` — completed requests per wall-clock second;
* ``kernel_passes`` / ``coalesced`` / ``search_calls`` — the
  machine-speed-free signals: how much kernel work the scheduler and the
  sweep cache saved.  ``search_calls <= distinct_keys`` is a hard
  invariant (every duplicate — sequential *or* concurrent — must be
  kernel-free), checked by :func:`check_matrix`.

Dual interface, matching ``bench_tiered_serving.py``:

* ``PYTHONPATH=src python benchmarks/bench_service.py [--smoke]
  [--json PATH]`` — standalone CLI printing the table; ``--json`` writes
  machine-readable rows that ``tools/bench_summary.py --service`` renders
  into the CI trend table.
* ``pytest benchmarks/bench_service.py`` — smoke-scale harness with shape
  assertions.

Results land in ``benchmarks/results/service_trace*.json``.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.datasets import make_clustered_vectors
from repro.service import SimilarityService

THRESHOLDS = (0.5, 0.6, 0.7)

#: (workload name, tenants, requests per tenant, datasets in pool, rows each)
SMOKE_WORKLOADS = [("trace-4x25", 4, 25, 6, 200)]
FULL_WORKLOADS = [
    ("trace-4x25", 4, 25, 6, 200),
    ("trace-8x100", 8, 100, 12, 400),
    ("trace-8x100-hot", 8, 100, 3, 400),  # 3 hot datasets: max overlap
]


def percentile(samples: list[float], pct: float) -> float:
    """The nearest-rank percentile of *samples* (len >= 1)."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(pct / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def run_scenario(name: str, tenants: int, per_tenant: int, pool: int,
                 n_rows: int, store_root) -> dict:
    """Replay one trace; returns the benchmark row."""
    datasets = [make_clustered_vectors(n_rows, 24, 4, seed=seed)
                for seed in range(pool)]
    latencies: list[float] = []
    errors: list[BaseException] = []
    lock = threading.Lock()

    with SimilarityService(store_root, probe_slots=2 * tenants) as service:
        sessions = [service.open_session(f"tenant-{i}")
                    for i in range(tenants)]
        start_barrier = threading.Barrier(tenants)

        def replay(tenant_idx: int) -> None:
            rng = np.random.default_rng(1000 + tenant_idx)
            session = sessions[tenant_idx]
            samples = []
            try:
                start_barrier.wait()
                for _ in range(per_tenant):
                    dataset = datasets[int(rng.integers(len(datasets)))]
                    threshold = THRESHOLDS[int(rng.integers(len(THRESHOLDS)))]
                    begin = time.perf_counter()
                    session.sweep(dataset, threshold)
                    samples.append(time.perf_counter() - begin)
            except BaseException as exc:  # pragma: no cover - shape guard
                with lock:
                    errors.append(exc)
            with lock:
                latencies.extend(samples)

        wall_start = time.perf_counter()
        threads = [threading.Thread(target=replay, args=(i,))
                   for i in range(tenants)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall_seconds = time.perf_counter() - wall_start
        health = service.health()

    distinct_keys = pool * len(THRESHOLDS)
    return {
        "workload": name,
        "tenants": tenants,
        "requests": tenants * per_tenant,
        "datasets": pool,
        "n_rows": n_rows,
        "errors": len(errors),
        "completed": len(latencies),
        "p50_ms": percentile(latencies, 50) * 1e3,
        "p99_ms": percentile(latencies, 99) * 1e3,
        "mean_ms": statistics.fmean(latencies) * 1e3,
        "throughput_rps": len(latencies) / wall_seconds,
        "wall_seconds": wall_seconds,
        "kernel_passes": health["kernel_passes"],
        "coalesced": health["coalesced"],
        "search_calls": health["search_calls"],
        "distinct_keys": distinct_keys,
        "shed": health["lanes"]["probe"]["shed"],
    }


def run_matrix(smoke: bool = True) -> list[dict]:
    """Run every workload against a throwaway store; one row per workload."""
    workloads = SMOKE_WORKLOADS if smoke else FULL_WORKLOADS
    rows = []
    for name, tenants, per_tenant, pool, n_rows in workloads:
        with tempfile.TemporaryDirectory(prefix="service-bench-") as root:
            rows.append(run_scenario(name, tenants, per_tenant, pool,
                                     n_rows, Path(root) / "store"))
    return rows


def check_matrix(rows: list[dict]) -> None:
    """Assert the qualitative shape the service contract promises."""
    for row in rows:
        assert row["errors"] == 0, (
            f"{row['workload']}: {row['errors']} requests failed")
        assert row["completed"] == row["requests"], (
            f"{row['workload']}: {row['completed']}/{row['requests']} "
            "requests completed")
        # The coalescing/caching invariant: the engine never ran more
        # kernel passes than there are distinct (dataset, threshold) keys —
        # every duplicate request, sequential or concurrent, was kernel-free.
        assert row["search_calls"] <= row["distinct_keys"], (
            f"{row['workload']}: {row['search_calls']} kernel searches for "
            f"{row['distinct_keys']} distinct request keys")
        assert row["shed"] == 0, (
            f"{row['workload']}: {row['shed']} requests shed — the probe "
            "lane was sized below the trace's concurrency")


def format_table(rows: list[dict]) -> str:
    header = (f"{'workload':<18} {'req':>5} {'p50':>8} {'p99':>8} "
              f"{'rps':>7} {'kernel':>7} {'coalesced':>10} {'searches':>9}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['workload']:<18} {row['requests']:>5} "
            f"{row['p50_ms']:>6.1f}ms {row['p99_ms']:>6.1f}ms "
            f"{row['throughput_rps']:>7.1f} {row['kernel_passes']:>7} "
            f"{row['coalesced']:>10} {row['search_calls']:>9}")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# pytest harness (smoke scale)
# --------------------------------------------------------------------- #

def test_service_trace(benchmark, record):
    rows = benchmark.pedantic(lambda: run_matrix(smoke=True),
                              rounds=1, iterations=1)
    record("service_trace_smoke", json_payload(rows, smoke=True))
    check_matrix(rows)


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #

def json_payload(rows: list[dict], smoke: bool) -> dict:
    """The machine-readable payload ``--json`` writes."""
    return {
        "benchmark": "service_trace",
        "smoke": bool(smoke),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rows": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the reduced CI-sized trace")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write rows as machine-readable JSON")
    args = parser.parse_args(argv)

    rows = run_matrix(smoke=args.smoke)
    check_matrix(rows)
    print(format_table(rows))
    name = "service_trace_smoke" if args.smoke else "service_trace"
    results = Path(__file__).parent / "results" / f"{name}.json"
    results.parent.mkdir(exist_ok=True)
    results.write_text(json.dumps(json_payload(rows, args.smoke), indent=2,
                                  default=float))
    print(f"\nresults written to {results}")
    if args.json:
        Path(args.json).write_text(json.dumps(
            json_payload(rows, args.smoke), indent=2, default=float))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
