"""Figure 2.2: the toy dataset at too-sparse / well-connected / over-connected
thresholds, with the community structure only visible at the middle one."""

from repro.datasets import make_toy_dataset
from repro.graphs import graph_from_pairs
from repro.graphs.measures import number_connected_components
from repro.similarity import CachedApssEngine

THRESHOLDS = (0.97, 0.7, 0.3)


def _modularity_like(graph, labels):
    """Fraction of edges that stay within a ground-truth cluster."""
    if graph.n_edges == 0:
        return 0.0
    within = sum(1 for u, v in graph.edges() if labels[u] == labels[v])
    return within / graph.n_edges


def test_figure_2_2_toy_threshold_sweep(benchmark, record):
    dataset = make_toy_dataset()
    labels = dataset.labels
    engine = CachedApssEngine()
    # One quadratic engine pass at the loosest threshold serves the whole
    # sweep from the cache — no dense similarity matrix anywhere.
    engine.search(dataset, min(THRESHOLDS))

    # The paper probes the toy data at t = 0.8 / 0.5 / 0.2; the synthetic
    # stand-in uses cosine similarity, whose scale differs, so the same three
    # regimes (too sparse / well connected / over connected) fall at slightly
    # different threshold values.
    def sweep():
        rows = []
        for threshold in THRESHOLDS:
            pairs = engine.search(dataset, threshold).pairs
            graph = graph_from_pairs(dataset.n_rows, pairs)
            rows.append({
                "threshold": threshold,
                "edges": graph.n_edges,
                "components": number_connected_components(graph),
                "within_cluster_edge_fraction": _modularity_like(graph, labels),
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("figure_2_2_toy_overview", rows)

    sparse, good, dense = rows
    # Sparse: under-connected (within-cluster edges missing).  Good: the
    # three communities are clearly separated.  Dense: over-connected
    # (cross-cluster edges blur the communities into one component).
    assert sparse["edges"] < good["edges"] < dense["edges"]
    assert sparse["components"] >= good["components"]
    assert good["within_cluster_edge_fraction"] >= 0.95
    assert dense["within_cluster_edge_fraction"] < 0.85
    assert dense["components"] == 1
