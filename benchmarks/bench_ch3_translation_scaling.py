"""Figures 3.7-3.11: translation-scaling predictions of triangle counts."""

from repro.growth import GraphGrowthEstimator


def test_figures_3_7_to_3_11_translation_scaling(benchmark, record, growth_dataset):
    def run():
        results = {}
        for method in ("random", "concentrated", "stratified"):
            estimator = GraphGrowthEstimator(
                measure="triangle_count", sampling_method=method,
                prediction_method="translation_scaling", sample_size=70, seed=5)
            results[method] = estimator.run(growth_dataset)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    record("figures_3_7_3_11_translation_scaling", {
        method: {
            "predicted": estimate.predicted_values,
            "actual": estimate.actual_values,
            "sample_curve": estimate.sample_values,
            "mean_log_error": estimate.error()[0],
        } for method, estimate in results.items()})

    for method, estimate in results.items():
        mean_error, _ = estimate.error()
        # Paper band for translation-scaling: ~0.3% up to ~28% log error.
        assert mean_error < 0.35, f"{method} error too high: {mean_error}"
        # The sample graph always has fewer triangles than the full graph.
        dense_half = len(estimate.predicted_values)
        assert all(s <= a for s, a in zip(estimate.sample_values[-dense_half:],
                                          estimate.actual_values))
