"""Table 2.1: dataset characteristics (vectors, dimensions, avg length, nnz)."""

from repro.datasets import dataset_spec, load_dataset

#: The Table 2.1 rows; corpora are generated at a reduced scale.
TABLE_2_1 = ["wine", "credit", "twitter", "rcv1"]


def test_table_2_1_dataset_characteristics(benchmark, record):
    def build():
        rows = []
        for name in TABLE_2_1:
            dataset = load_dataset(name, max_rows=250, seed=7)
            row = dataset.characteristics()
            row["paper_vectors"] = dataset_spec(name).paper_rows
            row["paper_dimensions"] = dataset_spec(name).paper_dims
            rows.append(row)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    record("table_2_1_datasets", rows)

    by_name = {row["name"]: row for row in rows}
    # Shape checks mirroring the table: wine is tiny and dense, the corpora
    # are much sparser relative to their dimensionality.
    assert by_name["wine"]["vectors"] == 178
    assert by_name["wine"]["dimensions"] == 13
    assert by_name["wine"]["avg_len"] == by_name["wine"]["dimensions"]
    for corpus in ("twitter", "rcv1"):
        assert by_name[corpus]["avg_len"] < by_name[corpus]["dimensions"] * 0.5
    # The ordering of dataset sizes in the paper (wine < credit < corpora)
    # is preserved by the registry's documented row counts.
    assert (by_name["wine"]["paper_vectors"] < by_name["credit"]["paper_vectors"]
            < by_name["twitter"]["paper_vectors"] < by_name["rcv1"]["paper_vectors"])
