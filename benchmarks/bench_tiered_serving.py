"""Two-tier serving benchmark: time-to-first-answer vs time-to-exact.

Replays the two-tier HTAP acceptance scenario at bench scale: a
near-duplicate corpus with an approximate floor already parked, an append,
then an interactive probe on the appended dataset.  Reported per workload:

* ``first_answer_seconds`` — the sketch tier's delta-extended answer
  (sketch only Δn rows, verify only new-vs-all candidates);
* ``exact_seconds`` — a direct exact sweep of the same probe (the cost the
  sketch tier defers), and ``refine_seconds`` — the background refinement
  that actually upgraded the store entry;
* ``recall`` — measured against the exact sweep, alongside the advertised
  ``recall_bound`` (1 − ε) the tier serves under.

Dual interface, matching ``bench_apss_backends.py``:

* ``PYTHONPATH=src python benchmarks/bench_tiered_serving.py [--smoke]
  [--json PATH]`` — standalone CLI printing the table; ``--json`` writes
  machine-readable rows that ``tools/bench_summary.py --tiered`` renders
  into the CI trend table.
* ``pytest benchmarks/bench_tiered_serving.py`` — smoke-scale harness with
  shape assertions (first answer beats the exact sweep, recall within its
  bound, entry upgraded in place).

Results land in ``benchmarks/results/tiered_serving*.json``.
"""

from __future__ import annotations

import argparse
import json
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.datasets import VectorDataset
from repro.similarity import ApssEngine, TieredApssEngine
from repro.store import SimilarityStore

THRESHOLD = 0.5
SKETCH = {"n_hashes": 256, "seed": 0, "candidate_strategy": "auto",
          "band_size": 4}

#: (workload name, total rows, appended rows)
SMOKE_WORKLOADS = [("neardup-1200+50", 1200, 50)]
FULL_WORKLOADS = [
    ("neardup-1200+50", 1200, 50),
    ("neardup-5000+100", 5000, 100),     # the ISSUE acceptance scale
    ("neardup-5000+500", 5000, 500),     # a 10x larger append batch
]


def near_duplicate_rows(seed: int, n_base: int, vocab: int = 2000,
                        doc_length: int = 40) -> list[dict]:
    """``2 * n_base`` binary doc rows: each base doc plus a near duplicate."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n_base):
        base = rng.choice(vocab, size=doc_length, replace=False)
        duplicate = base.copy()
        swap = rng.choice(doc_length, size=4, replace=False)
        duplicate[swap] = rng.choice(vocab, size=4, replace=False)
        rows.append({int(t): 1.0 for t in base})
        rows.append({int(t): 1.0 for t in duplicate})
    return rows


def run_scenario(name: str, n_rows: int, n_appended: int,
                 store_root) -> dict:
    """One append-then-probe scenario; returns the benchmark row."""
    rows = near_duplicate_rows(12, n_rows // 2)
    parent = VectorDataset.from_rows(rows[:n_rows - n_appended],
                                     n_features=2000,
                                     name=f"{name}-parent")
    child = parent.append_rows(rows[n_rows - n_appended:], name=name)

    engine = ApssEngine()
    with TieredApssEngine(engine=engine, store=SimilarityStore(store_root),
                          refine="off",
                          sketch_options=dict(SKETCH)) as tiered:
        tiered.probe(parent, THRESHOLD, "jaccard")    # park the history
        tiered.refine = "background"

        start = time.perf_counter()
        answer = tiered.probe(child, THRESHOLD, "jaccard")
        first_answer_seconds = time.perf_counter() - start
        tiered.wait()
        refine_seconds = time.perf_counter() - start
        upgraded = tiered.probe(child, THRESHOLD, "jaccard")

    start = time.perf_counter()
    exact = ApssEngine().search(child, THRESHOLD, "jaccard")
    exact_seconds = time.perf_counter() - start
    reference = exact.pair_set()
    recall = (len(answer.result.pair_set() & reference)
              / max(1, len(reference)))
    return {
        "workload": name,
        "n_rows": n_rows,
        "n_appended": n_appended,
        "threshold": THRESHOLD,
        "first_answer_seconds": first_answer_seconds,
        "refine_seconds": refine_seconds,
        "exact_seconds": exact_seconds,
        "speedup_first_vs_exact": (exact_seconds / first_answer_seconds
                                   if first_answer_seconds > 0 else None),
        "recall": recall,
        "recall_bound": answer.bound,
        "first_tier": answer.tier,
        "served_exact_after_refine": upgraded.exact,
        "pairs": len(answer.result.pair_set()),
        "exact_pairs": len(reference),
    }


def run_matrix(smoke: bool = True) -> list[dict]:
    """Run every workload in a throwaway store; one row per workload."""
    workloads = SMOKE_WORKLOADS if smoke else FULL_WORKLOADS
    rows = []
    for name, n_rows, n_appended in workloads:
        with tempfile.TemporaryDirectory(prefix="tiered-bench-") as root:
            rows.append(run_scenario(name, n_rows, n_appended,
                                     Path(root) / "store"))
    return rows


def check_matrix(rows: list[dict]) -> None:
    """Assert the qualitative shape the two-tier contract promises."""
    for row in rows:
        assert row["first_tier"] == "sketch", (
            f"{row['workload']}: first answer came from {row['first_tier']}")
        assert row["served_exact_after_refine"], (
            f"{row['workload']}: refinement never upgraded the entry")
        assert row["recall"] >= row["recall_bound"], (
            f"{row['workload']}: recall {row['recall']:.4f} below bound "
            f"{row['recall_bound']}")
        # Below a few thousand rows both paths finish in tens of
        # milliseconds and the comparison is noise; the o(exact) claim is
        # asserted where the asymptotics separate (the 5000-row workloads).
        if row["n_rows"] >= 2000:
            assert row["first_answer_seconds"] < row["exact_seconds"], (
                f"{row['workload']}: first answer "
                f"{row['first_answer_seconds']:.3f}s did not beat the exact "
                f"sweep {row['exact_seconds']:.3f}s")


def format_table(rows: list[dict]) -> str:
    header = (f"{'workload':<20} {'first-answer':>13} {'refined':>9} "
              f"{'exact':>8} {'speedup':>8} {'recall':>8} {'bound':>7}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['workload']:<20} {row['first_answer_seconds']:>12.3f}s "
            f"{row['refine_seconds']:>8.3f}s {row['exact_seconds']:>7.3f}s "
            f"{row['speedup_first_vs_exact']:>7.1f}x {row['recall']:>8.4f} "
            f"{row['recall_bound']:>7.3f}")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# pytest harness (smoke scale)
# --------------------------------------------------------------------- #

def test_tiered_serving(benchmark, record):
    rows = benchmark.pedantic(lambda: run_matrix(smoke=True),
                              rounds=1, iterations=1)
    record("tiered_serving_smoke", json_payload(rows, smoke=True))
    check_matrix(rows)


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #

def json_payload(rows: list[dict], smoke: bool) -> dict:
    """The machine-readable payload ``--json`` writes."""
    return {
        "benchmark": "tiered_serving",
        "smoke": bool(smoke),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rows": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the reduced CI-sized scenario")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write rows as machine-readable JSON")
    args = parser.parse_args(argv)

    rows = run_matrix(smoke=args.smoke)
    check_matrix(rows)
    print(format_table(rows))
    name = "tiered_serving_smoke" if args.smoke else "tiered_serving"
    results = Path(__file__).parent / "results" / f"{name}.json"
    results.parent.mkdir(exist_ok=True)
    results.write_text(json.dumps(json_payload(rows, args.smoke), indent=2,
                                  default=float))
    print(f"\nresults written to {results}")
    if args.json:
        Path(args.json).write_text(json.dumps(
            json_payload(rows, args.smoke), indent=2, default=float))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
