"""Table 3.2: mean/std relative error of log(#triangles) for every
(dataset, sampling method, prediction method) combination.

The headline finding reproduced here: regression beats translation-scaling
for the overwhelming majority of configurations.
"""

import numpy as np

from repro.datasets import make_clustered_vectors
from repro.growth import GraphGrowthEstimator

DATASETS = {
    "abalone_like": dict(n_rows=160, n_features=8, n_clusters=3, seed=61),
    "image_like": dict(n_rows=160, n_features=18, n_clusters=7, seed=62),
    "yeast_like": dict(n_rows=150, n_features=8, n_clusters=10, seed=63),
}


def test_table_3_2_error_results(benchmark, record):
    def build_table():
        rows = []
        for dataset_name, params in DATASETS.items():
            dataset = make_clustered_vectors(
                params["n_rows"], params["n_features"], params["n_clusters"],
                separation=4.5, seed=params["seed"], name=dataset_name)
            for sampling in ("concentrated", "random", "stratified"):
                row = {"dataset": dataset_name, "sampling": sampling}
                for prediction, key in (("translation_scaling", "ts"),
                                        ("regression", "reg")):
                    estimator = GraphGrowthEstimator(
                        measure="triangle_count", sampling_method=sampling,
                        prediction_method=prediction, sample_size=60, seed=7)
                    mean, std = estimator.run(dataset).error()
                    row[f"{key}_mean"] = mean
                    row[f"{key}_std"] = std
                rows.append(row)
        return rows

    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    record("table_3_2_error_results", rows)

    # Every configuration lands in the paper's error band (<= ~28% for TS,
    # <= ~4% for regression; allow slack for the scaled-down data).
    for row in rows:
        assert row["ts_mean"] < 0.40
        assert row["reg_mean"] < 0.20

    # Regression wins for the large majority of configurations (10/11
    # datasets in the paper).
    wins = sum(1 for row in rows if row["reg_mean"] <= row["ts_mean"])
    assert wins >= 0.6 * len(rows)
