"""Figure 4.9: compressed-analytics classification, LAM versus Krimp.

The LAM-based classifier is on par with the Krimp-based one: the accuracy gap
stays small on class-structured transactional data.
"""

from repro.lam import PatternClassifier, train_test_split_transactions


def test_figure_4_9_compressed_analytics_classification(benchmark, record,
                                                        labeled_db):
    train, test = train_test_split_transactions(labeled_db, test_fraction=0.3,
                                                seed=9)

    def run():
        lam_accuracy = PatternClassifier("lam", seed=1).fit(train).accuracy(test)
        krimp_accuracy = PatternClassifier("krimp", min_support=3,
                                           seed=1).fit(train).accuracy(test)
        return lam_accuracy, krimp_accuracy

    lam_accuracy, krimp_accuracy = benchmark.pedantic(run, rounds=1, iterations=1)

    labels = list(test.labels)
    majority = max(labels.count(label) for label in set(labels)) / len(labels)
    record("figure_4_9_classification", {
        "lam_accuracy": lam_accuracy,
        "krimp_accuracy": krimp_accuracy,
        "majority_baseline": majority,
    })

    # Both classifiers clearly beat the majority baseline, and LAM is on par
    # with (here: at least as good as within a small margin) Krimp.
    assert lam_accuracy > majority + 0.05
    assert krimp_accuracy > majority - 0.05
    assert lam_accuracy >= krimp_accuracy - 0.10
