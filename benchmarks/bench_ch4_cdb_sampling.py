"""Figure 4.8: CDB on sampled data — runtime shrinks a little, compression
drops, and even then LAM remains much faster."""

import time

from repro.lam import LAM, cdb_compress


def test_figure_4_8_cdb_on_samples(benchmark, record, planted_db):
    base_support = 30

    def run():
        rows = []
        for fraction in (1.0, 0.7, 0.4):
            sample = (planted_db if fraction == 1.0
                      else planted_db.sample(fraction, seed=5))
            support = max(2, int(round(base_support * fraction)))
            result = cdb_compress(sample, min_support=support, max_length=10)
            rows.append({"fraction": fraction,
                         "compression_ratio": result.compression_ratio,
                         "seconds": result.seconds})
        start = time.perf_counter()
        lam_ratio = LAM(n_passes=5, max_partition_size=100, seed=0) \
            .run(planted_db).compression_ratio
        lam_seconds = time.perf_counter() - start
        return rows, lam_ratio, lam_seconds

    rows, lam_ratio, lam_seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    record("figure_4_8_cdb_sampling", {"cdb": rows, "lam_ratio": lam_ratio,
                                       "lam_seconds": lam_seconds})

    full = rows[0]
    # Sampling does not rescue CDB: the runtime changes only fractionally
    # (the candidate lattice per transaction is unchanged) ...
    fastest_cdb = min(row["seconds"] for row in rows)
    assert fastest_cdb > 0.25 * full["seconds"]
    # ... while the compression achieved never improves on the full run.
    assert all(row["compression_ratio"] <= full["compression_ratio"] + 0.1
               for row in rows[1:])
    # And even the fastest CDB configuration is slower than the full LAM run,
    # which still compresses the data.
    assert lam_seconds < fastest_cdb
    assert lam_ratio > 1.0
