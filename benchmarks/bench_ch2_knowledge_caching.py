"""Figure 2.10: effect of knowledge caching on a descending-threshold workload.

The workload probes thresholds 0.95, 0.90, ..., 0.70 in order.  Without
caching each query runs from scratch; with caching each query reuses the hash
match-sets memoized by the previous one, which cuts the work of every probe
after the first (the paper reports 16-29% speedups per threshold).

The cold-vs-warm scenario extends the figure across *process* boundaries:
the first probe runs in a subprocess that persists its session into a
:class:`~repro.store.SimilarityStore` and exits; this process then reopens
the store and re-probes, demonstrating that the caching wins survive a
process death instead of being process-lifetime only.
"""

import numpy as np

from repro.core import PlasmaSession
from repro.lsh.bayeslsh import BayesLSHConfig
from repro.store import SimilarityStore

WORKLOAD = [0.95, 0.90, 0.85, 0.80, 0.75, 0.70]


def test_figure_2_10_knowledge_caching(benchmark, record, twitter_like):
    config = BayesLSHConfig(max_hashes=160)

    def run_workloads():
        cached = PlasmaSession(twitter_like, n_hashes=160, seed=17, config=config)
        uncached = PlasmaSession(twitter_like, n_hashes=160, seed=17, config=config)
        cached_comparisons = []
        uncached_comparisons = []
        cached_seconds = []
        uncached_seconds = []
        for threshold in WORKLOAD:
            with_cache = cached.probe(threshold, use_cache=True)
            without_cache = uncached.probe(threshold, use_cache=False)
            cached_comparisons.append(with_cache.apss.hash_comparisons)
            uncached_comparisons.append(without_cache.apss.hash_comparisons)
            cached_seconds.append(with_cache.processing_seconds)
            uncached_seconds.append(without_cache.processing_seconds)
        return (cached_comparisons, uncached_comparisons,
                cached_seconds, uncached_seconds)

    (cached_comparisons, uncached_comparisons, cached_seconds,
     uncached_seconds) = benchmark.pedantic(run_workloads, rounds=1, iterations=1)

    work_savings = [1.0 - c / u if u else 0.0
                    for c, u in zip(cached_comparisons, uncached_comparisons)]
    record("figure_2_10_knowledge_caching", {
        "thresholds": WORKLOAD,
        "cached_hash_comparisons": cached_comparisons,
        "uncached_hash_comparisons": uncached_comparisons,
        "cached_seconds": cached_seconds,
        "uncached_seconds": uncached_seconds,
        "hash_work_saving_per_threshold": work_savings,
    })

    # The first threshold gains nothing (no cache yet) ...
    assert abs(work_savings[0]) < 0.05
    # ... and every subsequent threshold is cheaper with the cache, by a
    # meaningful margin on average (paper band: 16-29%).
    assert all(saving > 0.0 for saving in work_savings[1:])
    assert float(np.mean(work_savings[1:])) > 0.10


def test_cold_vs_warm_store_knowledge_caching(record, cold_probe, tmp_path,
                                              twitter_like):
    """Probe, kill the process, reopen the store, re-probe.

    The cold probe happens in a subprocess that exits; the warm probe in this
    process resumes from the reopened store and must (a) skip the sketch
    build entirely and (b) do measurably less hash-comparison work.
    """
    threshold, n_hashes, seed = 0.8, 160, 7
    expr = 'load_dataset("twitter", max_rows=250, seed=7)'
    store_root = tmp_path / "knowledge-store"

    cold = cold_probe(store_root, expr, threshold,
                      n_hashes=n_hashes, seed=seed)
    assert cold["resumed_from"] == "fresh"
    assert cold["cached_hash_reuse"] == 0

    warm_session = PlasmaSession(twitter_like, n_hashes=n_hashes, seed=seed,
                                 store=SimilarityStore(store_root))
    assert warm_session.resumed_from == "store"
    warm = warm_session.probe(threshold)

    record("figure_2_10_cold_vs_warm_store", {
        "threshold": threshold,
        "cold": cold,
        "warm": {
            "pair_count": warm.pair_count,
            "total_seconds": warm.total_seconds,
            "sketch_seconds": warm.sketch_seconds,
            "hash_comparisons": warm.apss.hash_comparisons,
            "cached_hash_reuse": warm.cached_hash_reuse,
        },
    })

    assert warm.sketch_seconds == 0.0, "sketches must restore, not rebuild"
    assert warm.cached_hash_reuse > 0, "warm probes must resume hash state"
    assert warm.apss.hash_comparisons < cold["hash_comparisons"], \
        "cross-session reuse must cut the hash-comparison work"
    # Same sketches, same seed: the answers agree (up to boundary pairs
    # whose deeper resumed posteriors may flip them).
    assert abs(warm.pair_count - cold["pair_count"]) <= \
        max(2, 0.02 * cold["pair_count"])
