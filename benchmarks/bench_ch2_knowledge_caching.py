"""Figure 2.10: effect of knowledge caching on a descending-threshold workload.

The workload probes thresholds 0.95, 0.90, ..., 0.70 in order.  Without
caching each query runs from scratch; with caching each query reuses the hash
match-sets memoized by the previous one, which cuts the work of every probe
after the first (the paper reports 16-29% speedups per threshold).
"""

import numpy as np

from repro.core import PlasmaSession
from repro.lsh.bayeslsh import BayesLSHConfig

WORKLOAD = [0.95, 0.90, 0.85, 0.80, 0.75, 0.70]


def test_figure_2_10_knowledge_caching(benchmark, record, twitter_like):
    config = BayesLSHConfig(max_hashes=160)

    def run_workloads():
        cached = PlasmaSession(twitter_like, n_hashes=160, seed=17, config=config)
        uncached = PlasmaSession(twitter_like, n_hashes=160, seed=17, config=config)
        cached_comparisons = []
        uncached_comparisons = []
        cached_seconds = []
        uncached_seconds = []
        for threshold in WORKLOAD:
            with_cache = cached.probe(threshold, use_cache=True)
            without_cache = uncached.probe(threshold, use_cache=False)
            cached_comparisons.append(with_cache.apss.hash_comparisons)
            uncached_comparisons.append(without_cache.apss.hash_comparisons)
            cached_seconds.append(with_cache.processing_seconds)
            uncached_seconds.append(without_cache.processing_seconds)
        return (cached_comparisons, uncached_comparisons,
                cached_seconds, uncached_seconds)

    (cached_comparisons, uncached_comparisons, cached_seconds,
     uncached_seconds) = benchmark.pedantic(run_workloads, rounds=1, iterations=1)

    work_savings = [1.0 - c / u if u else 0.0
                    for c, u in zip(cached_comparisons, uncached_comparisons)]
    record("figure_2_10_knowledge_caching", {
        "thresholds": WORKLOAD,
        "cached_hash_comparisons": cached_comparisons,
        "uncached_hash_comparisons": uncached_comparisons,
        "cached_seconds": cached_seconds,
        "uncached_seconds": uncached_seconds,
        "hash_work_saving_per_threshold": work_savings,
    })

    # The first threshold gains nothing (no cache yet) ...
    assert abs(work_savings[0]) < 0.05
    # ... and every subsequent threshold is cheaper with the cache, by a
    # meaningful margin on average (paper band: 16-29%).
    assert all(saving > 0.0 for saving in work_savings[1:])
    assert float(np.mean(work_savings[1:])) > 0.10
