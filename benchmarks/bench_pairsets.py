"""Factorised pair-set benchmark: compression ratio, decompression, top-k.

Measures what the ``pairs-factorized`` entry kind buys (and costs) on real
engine floors:

* ``ratio`` — factorised payload bytes over raw pair bytes (24 per pair).
  The machine-speed-free headline: clustered floors must land well under
  the store's ``MAX_FACTORIZE_RATIO`` fallback bar, clusterless floors
  must fall back to raw (``encoding == "raw"``, ratio 1.0).
* ``factorize_ms`` — one-time encode cost at landing time;
* ``decompress_ms`` vs ``raw_decompress_ms`` — materialising the full
  canonical pair list from the compressed form vs from the raw arrays
  (filter + lexsort), at the floor threshold;
* ``topk_ms`` vs ``topk_raw_ms`` — a ``TopKReducer`` pass streamed from
  compressed chunks vs fed the raw floor in one update.

:func:`check_matrix` asserts the correctness half regardless of timings:
the decompressed floor is bit-identical to raw at every swept threshold
and the top-k answers agree pair-for-pair.

Dual interface, matching ``bench_service.py``:

* ``PYTHONPATH=src python benchmarks/bench_pairsets.py [--smoke]
  [--json PATH]`` — standalone CLI printing the table; ``--json`` writes
  machine-readable rows that ``tools/bench_summary.py --pairsets`` renders
  into the CI trend table.
* ``pytest benchmarks/bench_pairsets.py`` — smoke-scale harness with
  shape assertions.

Results land in ``benchmarks/results/pairsets*.json``.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.datasets import make_clustered_vectors
from repro.similarity import ApssEngine
from repro.similarity.streaming import TopKReducer
from repro.store.pairsets import (
    MAX_FACTORIZE_RATIO,
    RAW_PAIR_BYTES,
    FactorizedPairSet,
    maybe_factorize,
)

TOP_K = 50

#: (workload name, rows, features, clusters, threshold, expect_factorized)
SMOKE_WORKLOADS = [
    ("clustered-1200", 1200, 16, 12, 0.6, True),
    ("uniform-1200", 1200, 16, 0, 0.15, False),
]
FULL_WORKLOADS = [
    ("clustered-1200", 1200, 16, 12, 0.6, True),
    ("clustered-5000", 5000, 16, 12, 0.6, True),
    ("uniform-1200", 1200, 16, 0, 0.15, False),
]


def _floor_arrays(name: str, n_rows: int, n_features: int, n_clusters: int,
                  threshold: float):
    """One engine floor as parallel numpy arrays (canonical order)."""
    if n_clusters:
        dataset = make_clustered_vectors(n_rows, n_features, n_clusters,
                                         separation=6.0, cluster_std=0.6,
                                         seed=42, name=name)
    else:
        # Clusterless: i.i.d. Gaussian rows, no block structure to find.
        rng = np.random.default_rng(42)
        from repro.datasets import VectorDataset

        dataset = VectorDataset.from_dense(
            rng.standard_normal((n_rows, n_features)), name=name)
    result = ApssEngine().search(dataset, threshold)
    first = np.array([p.first for p in result.pairs], dtype=np.int64)
    second = np.array([p.second for p in result.pairs], dtype=np.int64)
    value = np.array([p.similarity for p in result.pairs], dtype=np.float64)
    return first, second, value


def _raw_pairs(first, second, value, threshold):
    keep = value >= threshold
    f, s, v = first[keep], second[keep], value[keep]
    order = np.lexsort((s, f))
    return list(zip(f[order].tolist(), s[order].tolist(),
                    v[order].tolist()))


def _raw_topk(first, second, value, threshold, k):
    keep = value >= threshold
    reducer = TopKReducer(k)
    reducer.update(first[keep], second[keep], value[keep])
    return reducer


def run_workload(name: str, n_rows: int, n_features: int, n_clusters: int,
                 threshold: float, expect_factorized: bool) -> dict:
    """Benchmark one floor; returns the row dict."""
    first, second, value = _floor_arrays(name, n_rows, n_features,
                                         n_clusters, threshold)
    n_pairs = len(first)

    begin = time.perf_counter()
    pairset = maybe_factorize(first, second, value, n_rows=n_rows,
                              threshold=threshold)
    factorize_seconds = time.perf_counter() - begin
    encoding = "factorized" if pairset is not None else "raw"
    if pairset is None:
        pairset = FactorizedPairSet.from_raw_arrays(
            first, second, value, n_rows=n_rows, threshold=threshold)

    begin = time.perf_counter()
    decompressed = pairset.pairs(threshold)
    decompress_seconds = time.perf_counter() - begin
    begin = time.perf_counter()
    raw_reference = _raw_pairs(first, second, value, threshold)
    raw_decompress_seconds = time.perf_counter() - begin

    begin = time.perf_counter()
    reducer = TopKReducer(TOP_K)
    for f, s, v in pairset.iter_chunks(threshold):
        reducer.update(f, s, v)
    topk_seconds = time.perf_counter() - begin
    begin = time.perf_counter()
    raw_reducer = _raw_topk(first, second, value, threshold, TOP_K)
    topk_raw_seconds = time.perf_counter() - begin

    # The correctness half: bit-identical decompression at the floor
    # threshold and two higher sweeps, and identical top-k answers.
    identical = [(p.first, p.second, p.similarity)
                 for p in decompressed] == raw_reference
    for sweep in (threshold + 0.1, threshold + 0.25):
        identical = identical and (
            [(p.first, p.second, p.similarity)
             for p in pairset.pairs(sweep)]
            == _raw_pairs(first, second, value, sweep))
    topk_identical = ([p.as_tuple() for p in reducer.pairs()]
                      == [p.as_tuple() for p in raw_reducer.pairs()])

    return {
        "workload": name,
        "n_rows": n_rows,
        "threshold": threshold,
        "n_pairs": n_pairs,
        "encoding": encoding,
        "expect_factorized": expect_factorized,
        "nbytes": pairset.nbytes() if encoding == "factorized"
        else RAW_PAIR_BYTES * n_pairs,
        "raw_nbytes": RAW_PAIR_BYTES * n_pairs,
        "ratio": (pairset.compression_ratio()
                  if encoding == "factorized" else 1.0),
        "n_cliques": pairset.n_cliques,
        "n_blocks": pairset.n_blocks,
        "residual_pairs": pairset.n_residual,
        "factorize_ms": factorize_seconds * 1e3,
        "decompress_ms": decompress_seconds * 1e3,
        "raw_decompress_ms": raw_decompress_seconds * 1e3,
        "topk_ms": topk_seconds * 1e3,
        "topk_raw_ms": topk_raw_seconds * 1e3,
        "identical": bool(identical),
        "topk_identical": bool(topk_identical),
    }


def run_matrix(smoke: bool = True) -> list[dict]:
    """Run every workload; one row per workload."""
    workloads = SMOKE_WORKLOADS if smoke else FULL_WORKLOADS
    return [run_workload(*workload) for workload in workloads]


def check_matrix(rows: list[dict]) -> None:
    """Assert the qualitative shape the factorised store promises."""
    for row in rows:
        assert row["identical"], (
            f"{row['workload']}: decompression is not bit-identical to raw")
        assert row["topk_identical"], (
            f"{row['workload']}: top-k join disagrees with the raw-floor "
            "reducer pass")
        if row["expect_factorized"]:
            assert row["encoding"] == "factorized", (
                f"{row['workload']}: clustered floor failed to factorise")
            assert row["ratio"] <= 0.6, (
                f"{row['workload']}: ratio {row['ratio']:.2f} above the "
                "0.6 clustered-compression bar")
            assert row["ratio"] <= MAX_FACTORIZE_RATIO
        else:
            assert row["encoding"] == "raw", (
                f"{row['workload']}: clusterless floor should have fallen "
                "back to raw")


def format_table(rows: list[dict]) -> str:
    header = (f"{'workload':<16} {'pairs':>8} {'enc':>11} {'ratio':>6} "
              f"{'fact':>8} {'decomp':>8} {'raw':>8} {'topk':>8} "
              f"{'topk raw':>9}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['workload']:<16} {row['n_pairs']:>8} "
            f"{row['encoding']:>11} {row['ratio']:>6.2f} "
            f"{row['factorize_ms']:>6.1f}ms {row['decompress_ms']:>6.1f}ms "
            f"{row['raw_decompress_ms']:>6.1f}ms {row['topk_ms']:>6.1f}ms "
            f"{row['topk_raw_ms']:>7.1f}ms")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# pytest harness (smoke scale)
# --------------------------------------------------------------------- #

def test_pairsets_matrix(benchmark, record):
    rows = benchmark.pedantic(lambda: run_matrix(smoke=True),
                              rounds=1, iterations=1)
    record("pairsets_smoke", json_payload(rows, smoke=True))
    check_matrix(rows)


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #

def json_payload(rows: list[dict], smoke: bool) -> dict:
    """The machine-readable payload ``--json`` writes."""
    return {
        "benchmark": "pairsets",
        "smoke": bool(smoke),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rows": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the reduced CI-sized matrix")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write rows as machine-readable JSON")
    args = parser.parse_args(argv)

    rows = run_matrix(smoke=args.smoke)
    check_matrix(rows)
    print(format_table(rows))
    name = "pairsets_smoke" if args.smoke else "pairsets"
    results = Path(__file__).parent / "results" / f"{name}.json"
    results.parent.mkdir(exist_ok=True)
    results.write_text(json.dumps(json_payload(rows, args.smoke), indent=2,
                                  default=float))
    print(f"\nresults written to {results}")
    if args.json:
        Path(args.json).write_text(json.dumps(
            json_payload(rows, args.smoke), indent=2, default=float))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
