"""Figures 5.4-5.10: visualization effects per dataset.

Rendered pictures cannot be compared automatically, so the quantitative
proxies for "de-cluttered" are used: dimension reordering reduces the total
crossing count, and the energy layout tightens clusters around their centers
(smaller within-cluster spread on the assistant coordinates) while the total
energy decreases monotonically.
"""

import numpy as np

from repro.datasets import make_uci_like
from repro.parcoords import EnergyModel, ParallelCoordinatesModel

FIGURE_DATASETS = {
    "forestfires": 6, "water_treatment": 3, "wdbc": 4, "parkinsons": 4,
    "pima_indians_diabetes": 10, "wine": 4, "eighthr": 2,
}


def _within_cluster_spread(positions, labels):
    spreads = []
    for label in np.unique(labels):
        members = positions[labels == label]
        if len(members) > 1:
            spreads.append(float(np.std(members)))
    return float(np.mean(spreads)) if spreads else 0.0


def test_figures_5_4_to_5_10_visual_effects(benchmark, record):
    datasets = {}
    for name, n_clusters in FIGURE_DATASETS.items():
        dataset = make_uci_like(name, scale=0.25, seed=5, noise_fraction=0.0)
        # The paper clusters each dataset first and visualizes those clusters;
        # the generator's ground-truth labels play that role here, re-mapped to
        # the figure's cluster count by modulo grouping.
        labels = dataset.labels % n_clusters
        datasets[name] = (dataset, labels)

    def run():
        rows = {}
        for name, (dataset, labels) in datasets.items():
            model = ParallelCoordinatesModel(
                ordering_method="mst",
                energy_model=EnergyModel(1 / 3, 1 / 3, 1 / 3))
            layout = model.layout(dataset.to_dense()[:, :12], labels)
            assistant = layout.assistant_positions()
            baseline = np.column_stack([
                (layout.normalized[:, layout.dimension_order[i]]
                 + layout.normalized[:, layout.dimension_order[i + 1]]) / 2
                for i in range(len(layout.dimension_order) - 1)])
            rows[name] = {
                "crossings_before": layout.crossings_before,
                "crossings_after": layout.crossings_after_ordering,
                "spread_without_energy": _within_cluster_spread(baseline, labels),
                "spread_with_energy": _within_cluster_spread(assistant, labels),
                "max_energy_iterations": layout.max_energy_iterations,
                "energy_monotone": all(
                    np.all(np.diff(result.energy_history) <= 1e-9)
                    for result in layout.energy_results),
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record("figures_5_4_5_10_visual_effects", rows)

    improved_crossings = 0
    for name, row in rows.items():
        assert row["energy_monotone"], name
        # The energy layout pulls cluster members together between axes.
        assert row["spread_with_energy"] <= row["spread_without_energy"] + 1e-9, name
        assert row["crossings_after"] <= row["crossings_before"], name
        if row["crossings_after"] < row["crossings_before"]:
            improved_crossings += 1
    # Reordering strictly helps on most datasets.
    assert improved_crossings >= len(rows) - 2
