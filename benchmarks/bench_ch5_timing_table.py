"""Table 5.2: ordering time (approximate versus exact), energy-reduction
convergence time and iteration counts, per dataset.

The required shape: the approximate (MST) ordering is never slower than the
exhaustive ordering while staying within the 2-approximation bound, and the
energy reduction converges in a small number of iterations.
"""

from repro.datasets import make_uci_like
from repro.parcoords import EnergyModel, ParallelCoordinatesModel

DATASETS = {"wine": 4, "parkinsons": 4, "wdbc": 4}


def test_table_5_2_timing(benchmark, record):
    def run():
        rows = []
        for name, n_clusters in DATASETS.items():
            dataset = make_uci_like(name, scale=0.3, seed=5, noise_fraction=0.0)
            labels = dataset.labels % n_clusters
            data = dataset.to_dense()[:, :9]  # keep the exact solver feasible
            model = ParallelCoordinatesModel(
                energy_model=EnergyModel(1 / 3, 1 / 3, 1 / 3))
            comparison = model.compare_orderings(data, labels)
            layout = model.layout(data, labels)
            rows.append({
                "dataset": name,
                "order_approx_seconds": comparison["mst"]["seconds"],
                "order_exact_seconds": comparison["exact"]["seconds"],
                "crossings_approx": comparison["mst"]["crossings"],
                "crossings_exact": comparison["exact"]["crossings"],
                "converge_seconds": layout.energy_seconds,
                "iterations": layout.max_energy_iterations,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record("table_5_2_timing", rows)

    for row in rows:
        # The MST approximation is much cheaper than exhaustive search and
        # within its guaranteed factor of 2 on crossing cost.
        assert row["order_approx_seconds"] <= row["order_exact_seconds"]
        assert row["crossings_approx"] <= 2 * row["crossings_exact"] + 1e-9
        # Energy reduction converges quickly (Table 5.2 reports single-digit
        # to low-double-digit iterations).
        assert 1 <= row["iterations"] <= 200
        assert row["converge_seconds"] < 30.0
